//! Offline, deterministic subset of [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest that its property tests use:
//!
//! - the [`proptest!`] macro (with the `#![proptest_config(..)]` header),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`prop_oneof!`] over boxed strategies,
//! - integer / float range strategies, tuple strategies, [`strategy::Just`],
//! - `prop_map` / `prop_filter` combinators,
//! - [`collection::vec`] and [`collection::btree_set`],
//! - [`bool::weighted`],
//! - string-from-regex strategies for the simple pattern subset
//!   (`.`, `[a-e]`, `{m,n}`, `?`, `*`, `+`) that the tests use.
//!
//! Two deliberate departures from real proptest, both in the direction the
//! repo wants (a *deterministic* test harness):
//!
//! 1. **No shrinking.** A failing case panics with the sampled inputs via
//!    the normal assertion message; there is no minimization pass.
//! 2. **Fixed seeding.** Every test derives its RNG seed from its fully
//!    qualified name (FNV-1a of `module_path!()::name`) plus the case
//!    index, so `cargo test` explores the identical case sequence on every
//!    run, machine, and CI shard.

pub mod test_runner {
    /// Configuration mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG (xoshiro256++ via the vendored `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: usize) -> usize {
            use rand::Rng;
            self.inner.gen_range(0..bound)
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            use rand::Rng;
            self.inner.gen()
        }
    }

    /// Stable 64-bit fingerprint of a test's fully qualified name (FNV-1a),
    /// used as the base RNG seed so runs are reproducible everywhere.
    pub fn fingerprint(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values, mirroring `proptest::strategy::Strategy`
    /// minus shrinking (`sample` replaces `new_tree`).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence: whence.into(),
                predicate,
            }
        }

        fn prop_flat_map<O, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { source: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;

        fn sample(&self, rng: &mut TestRng) -> O::Value {
            (self.map)(self.source.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        source: S,
        whence: String,
        predicate: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            // Rejection sampling with a fixed 65 536-candidate cap (real
            // proptest's config knob for this is not mirrored): pathological
            // filters abort instead of spinning forever.
            for _ in 0..65_536 {
                let candidate = self.source.sample(rng);
                if (self.predicate)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter rejected 65536 candidates: {}", self.whence);
        }
    }

    /// Uniform choice among boxed alternatives — the engine behind
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (start as i128 + off) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + (rng.unit_f64() as $t) * (end - start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&str` strategies are regex patterns producing `String`s, as in real
    /// proptest. Only the simple subset used by this workspace's tests is
    /// supported; unsupported syntax panics with a clear message.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

/// Tiny regex-subset sampler backing the `&str` strategy.
///
/// Grammar: a sequence of atoms, each optionally followed by one
/// quantifier. Atoms: a literal character, `.` (printable ASCII), or a
/// character class `[a-z0-9_]` (ranges + singletons, no negation).
/// Quantifiers: `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 reps).
pub mod string {
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Any,
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in pattern {pattern:?}"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(
                        i + 1 < chars.len(),
                        "dangling escape in pattern {pattern:?}"
                    );
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    assert!(
                        !matches!(c, '(' | ')' | '|' | '^' | '$'),
                        "unsupported regex syntax {c:?} in pattern {pattern:?} \
                         (vendored proptest supports literals, '.', classes, and quantifiers)"
                    );
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i)
                            .unwrap_or_else(|| panic!("unterminated {{..}} in {pattern:?}"));
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad {m,n} lower bound"),
                                hi.trim().parse().expect("bad {m,n} upper bound"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad {n} count");
                                (n, n)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            // Printable ASCII, like real proptest's default for '.' minus
            // the exotic unicode planes (the tests only need variety).
            Atom::Any => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap(),
            Atom::Class(ranges) => {
                let total: usize = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as usize) - (*lo as usize) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as usize) - (*lo as usize) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap();
                    }
                    pick -= span;
                }
                unreachable!("class pick out of bounds")
            }
        }
    }

    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let reps = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..reps {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification accepted by [`vec()`] and [`btree_set()`], mirroring
    /// `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max - self.min + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> std::collections::BTreeSet<S::Value> {
            // As in real proptest, duplicates may collapse below the target
            // size; that is fine for set-typed properties.
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` of up to `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Weighted {
        probability: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.probability
        }
    }

    /// `true` with the given probability, mirroring `proptest::bool::weighted`.
    pub fn weighted(probability: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability {probability} outside [0,1]"
        );
        Weighted { probability }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The main property-test macro. Supports the same surface the workspace
/// uses: an optional `#![proptest_config(..)]` header followed by one or
/// more `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::fingerprint(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion inside a property: here a plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..2_000 {
            let v = Strategy::sample(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(1i32..=4), &mut rng);
            assert!((1..=4).contains(&w));
            let f = Strategy::sample(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_set_sizes() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            let v = Strategy::sample(&crate::collection::vec(0u8..4, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            let s = Strategy::sample(&crate::collection::btree_set(0u8..200, 5), &mut rng);
            assert!(s.len() <= 5);
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let a = Strategy::sample(&"[a-e]{1,3}", &mut rng);
            assert!((1..=3).contains(&a.chars().count()));
            assert!(a.chars().all(|c| ('a'..='e').contains(&c)));
            let b = Strategy::sample(&".{0,24}", &mut rng);
            assert!(b.chars().count() <= 24);
            let c = Strategy::sample(&"x[0-9]?y+", &mut rng);
            assert!(c.starts_with('x'));
        }
    }

    #[test]
    fn oneof_map_filter_compose() {
        let strat = prop_oneof![
            (0usize..4, 0usize..4).prop_map(|(a, b)| a + b),
            (10usize..12).prop_map(|x| x),
        ];
        let even = (0u32..100).prop_filter("even only", |v| v % 2 == 0);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..500 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v <= 11);
            assert_eq!(Strategy::sample(&even, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn fixed_seed_reproduces_samples() {
        let strat = crate::collection::vec(0u64..1000, 16);
        let a = Strategy::sample(&strat, &mut TestRng::from_seed(99));
        let b = Strategy::sample(&strat, &mut TestRng::from_seed(99));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0u32..10, 1..8), flag in crate::bool::weighted(0.5)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
