//! Offline stand-in for `serde_derive`.
//!
//! The build environment cannot reach crates.io, and nothing in this
//! workspace actually serializes today — the `#[derive(Serialize,
//! Deserialize)]` annotations on `dc-types` declare *intent* for a future
//! persistence layer. These derives therefore accept the full attribute
//! syntax (including `#[serde(...)]` helper attributes) and expand to
//! nothing, which keeps the type definitions source-compatible with the
//! real serde when it becomes available.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
