//! Offline stand-in for `serde`.
//!
//! See `vendor/serde_derive` for the rationale. This crate exists so that
//! `use serde::{Deserialize, Serialize};` resolves: the names import both
//! the (no-op) derive macros and marker traits of the same name, exactly
//! as with the real crate. No serialization machinery is provided — when
//! real persistence lands, swap this vendored path dependency for the
//! crates.io `serde` and the annotated types compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// does not implement it).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods; the no-op
/// derive does not implement it).
pub trait DeserializeMarker {}
