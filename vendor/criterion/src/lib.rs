//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this crate provides the
//! small macro + builder surface the `dc-bench` targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — backed by a simple median-of-samples wall-clock
//! timer instead of criterion's full statistical machinery. Reported
//! numbers are honest medians but carry no confidence intervals; swap the
//! vendored path dependency for the real crate when the registry is
//! reachable.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code (`criterion::black_box`).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Builder: number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Builder: soft cap on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// No-op mirror of criterion's CLI-argument hook.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for source compatibility; the shim's single warm-up call
    /// per `iter` ignores the requested duration.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.settings, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings,
        }
    }

    /// No-op mirror of criterion's end-of-run summary.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks with its own settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for source compatibility; see [`Criterion::warm_up_time`].
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&full, self.settings, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; `iter` times the routine.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up call, then `sample_size` timed samples or until the
        // measurement-time budget runs out, whichever comes first (always
        // taking at least one sample).
        black_box(routine());
        let budget = Instant::now();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.settings.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark<F>(id: &str, settings: Settings, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<50} (no samples — routine never called iter)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<50} median {} (min {}, max {}, n={})",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: both the simple form and the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls >= 2, "warm-up + at least one sample");
    }

    #[test]
    fn group_inherits_and_overrides_settings() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0usize;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
