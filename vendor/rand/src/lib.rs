//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *exact* slice of the `rand` 0.8 API that the
//! DynamicC crates use: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a deliberate,
//! documented choice so every stream is fully deterministic for a given
//! seed across platforms and releases. The streams do **not** bit-match
//! the real `rand` crate (which uses ChaCha12 for `StdRng`); nothing in
//! this workspace depends on the concrete stream, only on determinism.

/// A source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled "uniformly" from an RNG, mirroring the role of
/// `rand::distributions::Standard`. Floats sample from `[0, 1)`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = u128::from(rng.next_u64());
                // Lemire-style widening multiply: uniform enough for tests,
                // branch-free, and deterministic.
                let off = ((r * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = u128::from(rng.next_u64());
                let off = ((r * span) >> 64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            use super::SampleRange;
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            use super::SampleRange;
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut StdRng::seed_from_u64(0)).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut StdRng::seed_from_u64(0)), Some(&42));
    }
}
