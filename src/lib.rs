//! # dynamicc
//!
//! A from-scratch Rust reproduction of **DynamicC** — *"Efficient Dynamic
//! Clustering: Capturing Patterns from Historical Cluster Evolution"*
//! (EDBT 2022).
//!
//! DynamicC keeps a clustering fresh while the underlying database is
//! continuously modified: instead of re-running an expensive batch
//! clustering algorithm after every batch of adds / removes / updates, it
//! *learns the patterns of cluster evolution* from the batch algorithm's
//! historical decisions and then predicts — and cheaply verifies — which
//! clusters should merge or split in reaction to new changes.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | objects, records, datasets, operations, clusterings |
//! | [`telemetry`] | counters, gauges, latency histograms, span timers |
//! | [`similarity`] | similarity measures, blocking, the sparse similarity graph |
//! | [`storage`] | durability: write-ahead log, atomic snapshots, crash recovery |
//! | [`objective`] | correlation / k-means / DB-index / density objectives with delta evaluation |
//! | [`batch`] | hill-climbing, DBSCAN, Lloyd's k-means batch algorithms |
//! | [`ml`] | logistic regression, linear SVM, decision tree, metrics, θ selection |
//! | [`evolution`] | evolution traces, cross-round derivation, features, negative sampling |
//! | [`core`] | **DynamicC itself**: training driver, merge/split/full algorithms |
//! | [`baselines`] | the Naive and Greedy incremental baselines |
//! | [`datagen`] | synthetic stand-ins for the paper's datasets + dynamic workloads |
//! | [`eval`] | pair-counting F1, purity, inverse purity |
//!
//! ## Quick start
//!
//! ```
//! use dynamicc::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Synthesize a small record-linkage dataset and a dynamic workload.
//! let full = FebrlLikeGenerator { originals: 40, duplicates_per_original: 1.5,
//!                                 ..FebrlLikeGenerator::default() }.generate();
//! let workload = DynamicWorkload::generate(&full, WorkloadConfig {
//!     snapshots: 3, ..WorkloadConfig::default() });
//!
//! // 2. Build the similarity graph and the batch reference for the initial data.
//! let mut graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &workload.initial);
//! let objective = Arc::new(DbIndexObjective);
//! let batch = HillClimbing::with_objective(objective.clone());
//! let initial = batch.cluster(&graph).clustering;
//!
//! // 3. Train DynamicC by observing the batch algorithm on the first snapshots...
//! let mut dynamicc = DynamicC::with_objective(objective);
//! let (train, serve) = workload.snapshots.split_at(2);
//! let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
//! let mut previous = report.final_clustering(&initial);
//!
//! // 4. ...then let DynamicC answer the next round instead of the batch algorithm.
//! graph.apply_batch(&serve[0].batch);
//! let clustering = dynamicc.recluster(&graph, &previous, &serve[0].batch);
//! assert!(clustering.object_count() > previous.object_count());
//! previous = clustering;
//! assert!(previous.cluster_count() > 0);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub use dc_baselines as baselines;
pub use dc_batch as batch;
pub use dc_core as core;
pub use dc_datagen as datagen;
pub use dc_eval as eval;
pub use dc_evolution as evolution;
pub use dc_ml as ml;
pub use dc_objective as objective;
pub use dc_similarity as similarity;
pub use dc_storage as storage;
pub use dc_telemetry as telemetry;
pub use dc_types as types;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dc_baselines::{Greedy, GreedyConfig, IncrementalClusterer, Naive, NaiveConfig};
    pub use dc_batch::{
        BatchClusterer, BatchOutcome, Dbscan, DbscanConfig, HillClimbing, HillClimbingConfig,
        KMeans, KMeansConfig,
    };
    pub use dc_core::{
        train_on_workload, AdaptiveBatcher, DurabilityOptions, DurableEngine, DynamicC,
        DynamicCConfig, Engine, PipelineError, PipelineOptions, PipelineReport, PipelinedEngine,
        RecoveryReport, RefineReport, RoundReport, ShardConfigError, ShardedDurableEngine,
        ShardedEngine, ShardedRecoveryReport, ShardedRoundReport, StorageError, TrainingReport,
    };
    pub use dc_datagen::{
        ground_truth, AccessLikeGenerator, CoraLikeGenerator, DuplicateDistribution,
        DynamicWorkload, FebrlLikeGenerator, MusicLikeGenerator, RoadLikeGenerator, WorkloadConfig,
    };
    pub use dc_eval::{quality_report, QualityReport};
    pub use dc_ml::{BinaryClassifier, ModelKind};
    pub use dc_objective::{
        CorrelationObjective, DbIndexObjective, DensityObjective, KMeansObjective,
        ObjectiveFunction, SlowPathObjective,
    };
    pub use dc_similarity::{
        ClusterAggregates, GraphConfig, ShardRouter, SimilarityGraph, SimilarityMeasure,
    };
    pub use dc_types::{
        Clustering, Dataset, ObjectId, Operation, OperationBatch, Record, RecordBuilder, Snapshot,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable_together() {
        let record = RecordBuilder::new().text("name", "smoke test").build();
        let mut dataset = Dataset::new();
        let id = dataset.insert(record);
        let graph = SimilarityGraph::build(GraphConfig::textual_jaccard(0.5), &dataset);
        assert!(graph.contains(id));
        let clustering = Clustering::singletons([id]);
        assert_eq!(quality_report(&clustering, &clustering).f1, 1.0);
    }
}
