//! Density-based clustering of a growing 3D road network.
//!
//! The paper's largest dataset is the 3D Road Network; its clustering task
//! is density-based (DBSCAN).  DBSCAN has no objective function, so DynamicC
//! verifies its proposed changes with the density-consistency score instead
//! (§7.2.1): previously established core points must keep their neighbours
//! in one cluster.  This example streams new road segments in and compares
//! DynamicC's maintenance against re-running DBSCAN.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use dynamicc::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let full = RoadLikeGenerator {
        roads: 30,
        points_per_road: 30,
        ..RoadLikeGenerator::default()
    }
    .generate();
    let workload = DynamicWorkload::generate(
        &full,
        WorkloadConfig {
            initial_fraction: 0.3,
            snapshots: 6,
            ..WorkloadConfig::default()
        },
    );
    println!(
        "road network: {} elevation-annotated points along {} roads",
        full.len(),
        30
    );

    let min_pts = 3;
    let objective = Arc::new(DensityObjective::new(min_pts));
    let dbscan = Dbscan::new(DbscanConfig { min_pts });
    let mut graph = SimilarityGraph::build(
        GraphConfig::numeric_euclidean(0.6, 1.5, 3, 0.25),
        &workload.initial,
    );
    let initial = dbscan.cluster(&graph).clustering;
    println!(
        "initial DBSCAN clustering: {} clusters",
        initial.cluster_count()
    );

    let mut dynamicc = DynamicC::with_objective(objective);
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &dbscan);
    let mut previous = report.final_clustering(&initial);

    println!("\nround  points   DBSCAN(ms)   DynamicC(ms)   F1 vs DBSCAN");
    for snapshot in serve {
        graph.apply_batch(&snapshot.batch);

        let t = Instant::now();
        let reference = dbscan.recluster(&graph, &previous).clustering;
        let dbscan_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let clustering = dynamicc.recluster(&graph, &previous, &snapshot.batch);
        let dynamicc_ms = t.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>5} {:>7} {:>11.1} {:>13.1} {:>14.3}",
            snapshot.index,
            clustering.object_count(),
            dbscan_ms,
            dynamicc_ms,
            quality_report(&clustering, &reference).f1,
        );
        previous = clustering;
    }
    println!("\nDynamicC stats: {:?}", dynamicc.stats());
}
