//! Sharded parallel serving over blocking-key routing.
//!
//! The serving loop is embarrassingly partitionable: records that could be
//! similar share a blocking key, so routing objects to shards by that key
//! yields N independent engines that serve each round's sub-batches in
//! parallel.  This example trains DynamicC on the Febrl fixture, partitions
//! the trained state across 4 shards, serves the remaining rounds through
//! the [`ShardedEngine`], and then demonstrates the durable variant:
//! one WAL + snapshot directory per shard, killed and reopened mid-stream.
//!
//! ```text
//! cargo run --release --example sharded_serving
//! ```

use dynamicc::datagen::fixtures::small_febrl_workload;
use dynamicc::prelude::*;
use std::sync::Arc;

const N_SHARDS: usize = 4;

fn main() {
    let workload = small_febrl_workload();
    let objective = Arc::new(DbIndexObjective);
    let graph_config = || GraphConfig::textual_febrl(0.6);

    // Train once; the trained models are cloned into every shard.
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    println!(
        "trained on {} rounds; partitioning {} objects across {N_SHARDS} shards",
        train.len(),
        graph.object_count()
    );

    // ---- in-memory sharded serving ----
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let mut engine = ShardedEngine::new(router, graph.clone(), previous.clone(), dynamicc.clone())
        .expect("batch clustering fits the shard-0 namespace");
    println!(
        "refinement recovered {} cross-shard edges; shard sizes: {:?}",
        engine.cross_shard_edges_recovered(),
        engine
            .shards()
            .iter()
            .map(|s| s.graph().object_count())
            .collect::<Vec<_>>()
    );
    println!("\nround  ops  objects  clusters  merges  splits  builds");
    for snapshot in serve {
        let r = engine.apply_round(&snapshot.batch);
        println!(
            "{:>5} {:>4} {:>8} {:>9} {:>7} {:>7} {:>7}",
            r.merged.round,
            r.merged.operations,
            r.merged.objects,
            r.merged.clusters,
            r.merged.merges_applied,
            r.merged.splits_applied,
            r.merged.full_aggregate_builds,
        );
        assert_eq!(
            r.merged.full_aggregate_builds, 0,
            "steady-state rounds must stay on the incremental path"
        );
    }
    let merged = engine.merged_clustering();
    merged
        .check_invariants()
        .expect("merged partition is valid");
    println!(
        "merged view: {} objects in {} clusters ({} merges total)",
        merged.object_count(),
        merged.cluster_count(),
        engine.stats().merges_applied
    );

    // ---- durable sharded serving with a kill/reopen cycle ----
    let dir = std::env::temp_dir().join(format!("sharded-serving-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };

    // Process 1: fresh open, serve one round, die without warning.
    {
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let (graph, previous) = (graph.clone(), previous.clone());
        let (mut durable, recovery) = ShardedDurableEngine::open(
            &dir,
            router,
            graph.config().clone(),
            dynamicc.clone(),
            options,
            move || (graph, previous),
        )
        .expect("open sharded durable engine");
        println!(
            "\nprocess 1: recovered={} ({} shard directories created)",
            recovery.recovered,
            durable.shard_count()
        );
        let r = durable.apply_round(&serve[0].batch).expect("serve round");
        println!(
            "served round {} durably across {} shards; killed without a checkpoint",
            r.merged.round,
            durable.shard_count()
        );
        // Dropped here: the crash.
    }

    // Process 2: reopen, recover every shard to the committed round, finish.
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let (mut durable, recovery) = ShardedDurableEngine::open(
        &dir,
        router,
        graph.config().clone(),
        dynamicc,
        options,
        || unreachable!("recovery must not need the bootstrap state"),
    )
    .expect("reopen sharded durable engine");
    println!(
        "process 2: recovered={} — committed round {}, replayed {} shard-round(s), \
         rolled back {}",
        recovery.recovered,
        recovery.committed_round,
        recovery.replayed_rounds,
        recovery.rolled_back_rounds
    );
    for snapshot in &serve[1..] {
        durable.apply_round(&snapshot.batch).expect("serve round");
    }
    let final_round = durable.checkpoint().expect("final checkpoint");
    let durable_merged = durable.merged_clustering();
    println!(
        "finished at round {final_round}: {} objects in {} clusters",
        durable_merged.object_count(),
        durable_merged.cluster_count()
    );

    // The durable run (with its crash) and the in-memory run agree exactly.
    assert_eq!(durable_merged.cluster_ids(), merged.cluster_ids());
    assert_eq!(durable.stats(), engine.stats());
    println!("durable run is bit-identical to the in-memory sharded run");
    let _ = std::fs::remove_dir_all(&dir);
}
