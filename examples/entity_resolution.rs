//! Entity resolution (record linkage) on a Cora-like citation stream.
//!
//! This is the paper's flagship workload: DB-index clustering over textual
//! records, where duplicates of the same publication keep arriving and the
//! clustering must stay fresh.  The example trains DynamicC by observing the
//! hill-climbing batch algorithm for a few rounds and then compares three
//! dynamic methods (Naive, Greedy, DynamicC) on the remaining rounds.
//!
//! ```text
//! cargo run --release --example entity_resolution
//! ```

use dynamicc::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A Cora-like dataset: ~120 publications, each cited (with noise) several
    // times, arriving over 6 snapshots.
    let full = CoraLikeGenerator {
        entities: 80,
        duplicates_per_entity: 5.0,
        ..CoraLikeGenerator::default()
    }
    .generate();
    let workload = DynamicWorkload::generate(
        &full,
        WorkloadConfig {
            initial_fraction: 0.2,
            snapshots: 6,
            ..WorkloadConfig::default()
        },
    );
    println!(
        "dataset: {} citation records of {} publications, {} snapshots",
        full.len(),
        ground_truth(&full).cluster_count(),
        workload.snapshots.len()
    );

    let objective = Arc::new(DbIndexObjective);
    let batch = HillClimbing::with_objective(objective.clone());
    let mut graph = SimilarityGraph::build(GraphConfig::textual_jaccard(0.5), &workload.initial);
    let initial = batch.cluster(&graph).clustering;

    // Train DynamicC on the first three rounds.
    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(3);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    println!(
        "observed {} training rounds ({} merge / {} split examples buffered)",
        report.rounds.len(),
        dynamicc.models().buffered_examples().0,
        dynamicc.models().buffered_examples().1,
    );

    // Serve the remaining rounds with each dynamic method, comparing against
    // a fresh batch run per round.
    let mut naive = Naive::new(NaiveConfig {
        join_threshold: 0.4,
    });
    let mut greedy = Greedy::with_objective(objective.clone());
    let mut previous = report.final_clustering(&initial);

    println!("\nround  objects   batch(ms)  naive(ms) greedy(ms)  dynC(ms)   F1(naive) F1(greedy) F1(dynC)");
    for snapshot in serve {
        graph.apply_batch(&snapshot.batch);

        let t = Instant::now();
        let reference = batch.recluster(&graph, &previous).clustering;
        let batch_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let naive_result = naive.recluster(&graph, &previous, &snapshot.batch);
        let naive_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let greedy_result = greedy.recluster(&graph, &previous, &snapshot.batch);
        let greedy_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let dync_result = dynamicc.recluster(&graph, &previous, &snapshot.batch);
        let dync_ms = t.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:>5} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>9.1} {:>11.3} {:>10.3} {:>8.3}",
            snapshot.index,
            reference.object_count(),
            batch_ms,
            naive_ms,
            greedy_ms,
            dync_ms,
            quality_report(&naive_result, &reference).f1,
            quality_report(&greedy_result, &reference).f1,
            quality_report(&dync_result, &reference).f1,
        );
        previous = reference;
    }
    println!("\nDynamicC runtime statistics: {:?}", dynamicc.stats());
}
