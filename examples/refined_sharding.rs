//! Cross-shard refinement: sharded serving without the quality gap.
//!
//! Plain sharding drops every similarity edge whose endpoints route to
//! different shards, so the merged clustering silently under-merges.  The
//! refinement layer (on by default in [`ShardedEngine`]) recovers those
//! boundary pairs and repairs the merged clustering with the same trained
//! merge/split passes the unsharded engine runs — making the refined
//! clustering *pair-for-pair identical* to the unsharded one.
//!
//! This example trains DynamicC on the Febrl fixture under exact token
//! blocking, then serves the remaining rounds three ways side by side —
//! unsharded (the reference), raw 4-shard (the lossy mode), and refined
//! 4-shard — comparing pair F1 after every round.  It finishes with the
//! durable variant: a kill/reopen mid-stream must reproduce the refined
//! clustering bit-for-bit (the refine WAL + snapshot replay).
//!
//! ```text
//! cargo run --release --example refined_sharding
//! ```

use dynamicc::datagen::fixtures::small_febrl_workload;
use dynamicc::eval::pair_counts;
use dynamicc::prelude::*;
use dynamicc::similarity::TokenBlocking;
use std::sync::Arc;

const N_SHARDS: usize = 4;

/// Febrl under exact token blocking (no stop-word cutoff), so every shard
/// count sees the same candidate semantics.
fn graph_config() -> GraphConfig {
    GraphConfig::new(
        Box::new(dynamicc::similarity::CompositeMeasure::febrl_default()),
        Box::new(TokenBlocking::new(0)),
        0.6,
    )
}

fn main() {
    let workload = small_febrl_workload();
    let objective = Arc::new(DbIndexObjective);

    // Train once; the trained models are cloned into every engine.
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    println!(
        "trained on {} rounds; serving {} rounds over {} objects",
        train.len(),
        serve.len(),
        graph.object_count()
    );

    // ---- unsharded reference vs raw vs refined sharding ----
    let mut reference = Engine::new(graph.clone(), previous.clone(), dynamicc.clone());
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let mut refined = ShardedEngine::new(router, graph.clone(), previous.clone(), dynamicc.clone())
        .expect("valid shard config");
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let mut raw = ShardedEngine::new_raw(router, graph.clone(), previous.clone(), dynamicc.clone())
        .expect("valid shard config");

    println!("\nround  raw F1   refined F1  recovered edges  repair merges");
    for snapshot in serve {
        reference.apply_round(&snapshot.batch);
        let r = refined.apply_round(&snapshot.batch);
        raw.apply_round(&snapshot.batch);
        let raw_quality = pair_counts(&raw.merged_clustering(), reference.clustering());
        let refined_quality = pair_counts(&refined.refined_clustering(), reference.clustering());
        let refine = r.refine.expect("multi-shard rounds refine");
        println!(
            "{:>5}  {:.5}  {:>10.5}  {:>15}  {:>13}",
            r.merged.round,
            raw_quality.f1(),
            refined_quality.f1(),
            refine.cross_edges_recovered,
            refine.merges_applied,
        );
        assert_eq!(
            (
                refined_quality.together_result_only,
                refined_quality.together_reference_only
            ),
            (0, 0),
            "refined pair sets must be bit-equal to the unsharded engine's"
        );
    }
    println!("refined sharding matches the unsharded engine pair-for-pair");

    // ---- durable refined sharding with a kill/reopen cycle ----
    let dir = std::env::temp_dir().join(format!("refined-sharding-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };

    // Process 1: fresh open, serve one round, die without warning.
    {
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let (graph, previous) = (graph.clone(), previous.clone());
        let (mut durable, recovery) = ShardedDurableEngine::open(
            &dir,
            router,
            graph.config().clone(),
            dynamicc.clone(),
            options,
            move || (graph, previous),
        )
        .expect("open sharded durable engine");
        assert!(!recovery.recovered);
        durable.apply_round(&serve[0].batch).expect("serve round");
        println!(
            "\nprocess 1: served 1 round durably ({} cross-shard edges recovered); killed",
            durable.cross_shard_edges_recovered()
        );
        // Dropped here: the crash.
    }

    // Process 2: reopen — the refine snapshot + WAL replay must reproduce
    // the refined view bit-for-bit — then finish the workload.
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let (mut durable, recovery) = ShardedDurableEngine::open(
        &dir,
        router,
        graph.config().clone(),
        dynamicc,
        options,
        || unreachable!("recovery must not need the bootstrap state"),
    )
    .expect("reopen sharded durable engine");
    println!(
        "process 2: recovered to round {} (replayed {} shard-rounds, {} refine rounds)",
        recovery.committed_round, recovery.replayed_rounds, recovery.refine_replayed_rounds
    );
    for snapshot in &serve[1..] {
        durable.apply_round(&snapshot.batch).expect("serve round");
    }
    durable.checkpoint().expect("final checkpoint");

    // The durable run (with its crash) reproduces the in-memory refined
    // clustering exactly — same cluster ids, same members.
    let durable_refined = durable.refined_clustering();
    let in_memory_refined = refined.refined_clustering();
    assert_eq!(
        durable_refined.cluster_ids(),
        in_memory_refined.cluster_ids()
    );
    assert_eq!(durable.stats(), refined.stats());
    println!("durable refined run is bit-identical to the in-memory refined run");
    let _ = std::fs::remove_dir_all(&dir);
}
