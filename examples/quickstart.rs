//! Quickstart: the paper's Figure 1/2 motivating example, end to end.
//!
//! Five objects are already clustered; two new objects arrive; DynamicC's
//! merge/split machinery (verified by the correlation objective) reacts
//! without re-running the batch algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dynamicc::prelude::*;
use dynamicc::similarity::fixtures;
use std::sync::Arc;

fn main() {
    // The similarity graph of Figure 2: r1–r2–r3 pairwise similar at 0.9,
    // r4–r5 at 0.8, r5–r6 at 0.7, r1–r7 at 1.0.
    let graph = fixtures::figure2_graph();
    let old_clustering = fixtures::figure1_old_clustering();
    println!(
        "old clustering (Figure 1): {} clusters over {} objects",
        old_clustering.cluster_count(),
        old_clustering.object_count()
    );

    // The objective of Example 4.1.
    let objective = Arc::new(CorrelationObjective);
    println!(
        "objective of the all-singletons clustering: {:.2} (paper: 5.2)",
        objective.evaluate(&graph, &Clustering::singletons((1..=7).map(ObjectId::new)))
    );

    // Objects r6 and r7 arrive.
    let mut batch = OperationBatch::new();
    for id in [6u64, 7] {
        batch.push(Operation::Add {
            id: ObjectId::new(id),
            record: fixtures::fixture_record(id),
        });
    }

    // An untrained DynamicC still behaves soundly: its models flag candidate
    // clusters liberally and the objective verification keeps only changes
    // that genuinely improve the clustering.
    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let new_clustering = dynamicc.recluster(&graph, &old_clustering, &batch);

    println!("\nnew clustering after r6, r7 arrive:");
    for (cid, cluster) in new_clustering.iter() {
        let members: Vec<String> = cluster.iter().map(|o| o.to_string()).collect();
        println!("  {cid}: {{{}}}", members.join(", "));
    }
    println!(
        "objective: {:.2}   (old clustering extended with singletons: {:.2})",
        objective.evaluate(&graph, &new_clustering),
        {
            let mut extended = old_clustering.clone();
            extended.create_cluster([ObjectId::new(6)]).unwrap();
            extended.create_cluster([ObjectId::new(7)]).unwrap();
            objective.evaluate(&graph, &extended)
        }
    );
    println!("\nDynamicC stats: {:?}", dynamicc.stats());
}
