//! Durable serving with kill / reopen recovery.
//!
//! The production deployment the ROADMAP aims at cannot afford to lose its
//! serving state on restart.  This example runs the `dc-storage`-backed
//! [`DurableEngine`]: open a state directory, serve a few fixture rounds
//! (each durably logged before it is applied), checkpoint, "kill" the
//! process by dropping the engine mid-stream, and reopen — recovery loads
//! the snapshot, replays the WAL tail, and resumes exactly where the dead
//! engine stopped, without re-serving a single checkpointed round.
//!
//! ```text
//! cargo run --release --example durable_serving
//! ```

use dynamicc::datagen::fixtures::small_febrl_workload;
use dynamicc::prelude::*;
use std::sync::Arc;

fn main() {
    let workload = small_febrl_workload();
    let objective = Arc::new(DbIndexObjective);
    let graph_config = || GraphConfig::textual_febrl(0.6);

    // Train DynamicC by observing the batch algorithm on the first rounds —
    // the trained models are a construction-time input of the durable
    // engine, like the graph config (training is deterministic, so every
    // process start reconstructs the identical models).
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    println!(
        "trained on {} rounds; serving {} rounds durably",
        train.len(),
        serve.len()
    );

    let dir = std::env::temp_dir().join(format!("durable-serving-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };

    // ---- process 1: fresh open, serve two rounds, die without warning ----
    {
        let (mut engine, recovery) =
            DurableEngine::open(&dir, graph_config(), dynamicc.clone(), options, move || {
                (graph, previous)
            })
            .expect("open durable engine");
        println!(
            "\nprocess 1: recovered={} (fresh state directory)",
            recovery.recovered
        );
        println!("round  ops  objects  clusters  merges  splits  score");
        for snapshot in &serve[..2] {
            let r = engine.apply_round(&snapshot.batch).expect("serve round");
            println!(
                "{:>5} {:>4} {:>8} {:>9} {:>7} {:>7} {:>7.3}",
                r.round,
                r.operations,
                r.objects,
                r.clusters,
                r.merges_applied,
                r.splits_applied,
                r.score
            );
        }
        println!(
            "killed after round {} ({} round(s) since the last checkpoint)",
            engine.rounds_served(),
            engine.rounds_since_checkpoint()
        );
        // Dropped here without any shutdown hook: this is the crash.
    }

    // ---- process 2: reopen, recover, finish the workload ----
    let (mut engine, recovery) =
        DurableEngine::open(&dir, graph_config(), dynamicc, options, || {
            unreachable!("recovery must not need the bootstrap state")
        })
        .expect("reopen durable engine");
    println!(
        "\nprocess 2: recovered={} — snapshot round {}, replayed {} WAL round(s), torn tail: {}",
        recovery.recovered,
        recovery.snapshot_round,
        recovery.replayed_rounds,
        recovery.dropped_torn_tail
    );
    println!(
        "resumed at round {} with {} objects in {} clusters",
        engine.rounds_served(),
        engine.clustering().object_count(),
        engine.clustering().cluster_count()
    );
    println!("\nround  ops  objects  clusters  merges  splits  score");
    for snapshot in &serve[2..] {
        let r = engine.apply_round(&snapshot.batch).expect("serve round");
        println!(
            "{:>5} {:>4} {:>8} {:>9} {:>7} {:>7} {:>7.3}",
            r.round,
            r.operations,
            r.objects,
            r.clusters,
            r.merges_applied,
            r.splits_applied,
            r.score
        );
    }
    let final_round = engine.checkpoint().expect("final checkpoint");
    println!(
        "\ncheckpointed at round {final_round}; durable artifacts: {:?}",
        engine
            .artifact_paths()
            .expect("list artifacts")
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
    );
    println!(
        "cumulative stats: {} merges, {} splits, {} objective evaluations",
        engine.stats().merges_applied,
        engine.stats().splits_applied,
        engine.stats().objective_evaluations
    );
    let _ = std::fs::remove_dir_all(&dir);
}
