//! Pipelined ingestion over the sharded durable engine.
//!
//! The synchronous serving loop commits one round per call: route, log to
//! every shard's WAL plus the refine WAL (N+1 fsyncs), apply, refine, and
//! only then accept the next batch.  The pipelined front-end turns that
//! into a stream: callers `submit` operations into a bounded admission
//! queue, a coordinator thread forms batches adaptively, group-commits each
//! round with a **single** fsync of the refine WAL (the group-commit log),
//! and overlaps round R's shard apply with round R−1's cross-shard
//! refinement on a worker thread.
//!
//! This example trains DynamicC on the Febrl fixture, streams the remaining
//! rounds through a [`PipelinedEngine`] with flush barriers (so the round
//! boundaries match the synchronous reference exactly), kills the pipelined
//! directory mid-stream, reopens it, and asserts the drained + recovered
//! state is bit-identical to a synchronous [`ShardedDurableEngine`] that
//! served the same rounds.
//!
//! ```text
//! cargo run --release --example pipelined_serving
//! ```

use dynamicc::datagen::fixtures::small_febrl_workload;
use dynamicc::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const N_SHARDS: usize = 4;

fn main() {
    let workload = small_febrl_workload();
    let objective = Arc::new(DbIndexObjective);
    let graph_config = || GraphConfig::textual_febrl(0.6);

    // Train once; both serving paths start from clones of this state.
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    let rounds: Vec<&OperationBatch> = serve
        .iter()
        .map(|s| &s.batch)
        .filter(|b| !b.is_empty())
        .collect();
    println!(
        "trained on {} rounds; streaming {} rounds ({} ops) through the pipeline",
        train.len(),
        rounds.len(),
        rounds.iter().map(|b| b.len()).sum::<usize>()
    );

    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };
    // Flush barriers: an effectively unbounded batch target plus a long
    // formation deadline makes each submit+flush segment exactly one round,
    // so the pipelined run is comparable round-for-round to the
    // synchronous reference below.
    let pipeline_options = PipelineOptions {
        max_batch_delay: Duration::from_secs(30),
        record_batches: true,
        ..PipelineOptions::fixed(1_000_000)
    };

    let dir = std::env::temp_dir().join(format!("pipelined-serving-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- process 1: pipelined serving, killed mid-stream ----
    let mid = rounds.len() / 2;
    {
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let (graph, previous) = (graph.clone(), previous.clone());
        let (engine, recovery) = ShardedDurableEngine::open(
            &dir,
            router,
            graph.config().clone(),
            dynamicc.clone(),
            options,
            move || (graph, previous),
        )
        .expect("open sharded durable engine");
        assert!(!recovery.recovered);
        let pipe = PipelinedEngine::start(engine, pipeline_options.clone());
        for batch in &rounds[..mid] {
            for op in batch.iter() {
                pipe.submit(op.clone()).expect("submit");
            }
            pipe.flush().expect("flush");
        }
        println!(
            "process 1: group-committed {mid} rounds ({} ops admitted), killed mid-stream",
            pipe.submitted_ops()
        );
        pipe.kill(); // The crash: in-flight work is abandoned, commits stay.
    }

    // ---- process 2: reopen, resume the stream, drain cleanly ----
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let (engine, recovery) = ShardedDurableEngine::open(
        &dir,
        router,
        graph.config().clone(),
        dynamicc.clone(),
        options,
        || unreachable!("recovery must not need the bootstrap state"),
    )
    .expect("reopen sharded durable engine");
    println!(
        "process 2: recovered={} — committed round {}, rolled back {}, healed {}",
        recovery.recovered,
        recovery.committed_round,
        recovery.rolled_back_rounds,
        recovery.healed_rounds
    );
    assert_eq!(
        recovery.committed_round, mid as u64,
        "every flushed round survived"
    );
    let pipe = PipelinedEngine::start(engine, pipeline_options);
    for batch in &rounds[mid..] {
        for op in batch.iter() {
            pipe.submit(op.clone()).expect("submit");
        }
        pipe.flush().expect("flush");
    }
    let (pipelined, report) = pipe.close().expect("clean drain");
    println!(
        "drained: {} rounds / {} ops committed, {} overlap stalls, max queue depth {}",
        report.rounds_committed,
        report.ops_committed,
        report.overlap_stalls,
        report.max_queue_depth
    );
    assert_eq!(
        report.recorded_batches.as_deref().map(|r| r.len()),
        Some(rounds.len() - mid),
        "one pipelined round per flush barrier"
    );

    // ---- synchronous reference over the same rounds ----
    let sync_dir =
        std::env::temp_dir().join(format!("pipelined-serving-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sync_dir);
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let (graph_clone, previous_clone) = (graph.clone(), previous.clone());
    let (mut reference, _) = ShardedDurableEngine::open(
        &sync_dir,
        router,
        graph.config().clone(),
        dynamicc,
        options,
        move || (graph_clone, previous_clone),
    )
    .expect("open reference engine");
    for batch in &rounds {
        reference.apply_round(batch).expect("reference round");
    }

    // The pipelined run — with its mid-stream kill — is bit-identical.
    let merged = pipelined.merged_clustering();
    let reference_merged = reference.merged_clustering();
    assert_eq!(merged.cluster_ids(), reference_merged.cluster_ids());
    assert_eq!(merged.id_watermark(), reference_merged.id_watermark());
    assert_eq!(
        pipelined.refined_clustering().cluster_ids(),
        reference.refined_clustering().cluster_ids()
    );
    assert_eq!(pipelined.stats(), reference.stats());
    println!(
        "pipelined run is bit-identical to the synchronous engine: {} objects in {} clusters",
        merged.object_count(),
        merged.cluster_count()
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&sync_dir);
}
