//! High-velocity IoT-style numeric stream clustered with the k-means
//! objective.
//!
//! The introduction of the paper motivates DynamicC with Internet-of-Things
//! workloads: sensors continuously report feature vectors, and the grouping
//! must track the stream without re-clustering from scratch.  Here an
//! Access-like Gaussian mixture plays the role of the sensor fleet; the
//! batch algorithm is hill-climbing over the k-means objective with fixed k,
//! and DynamicC absorbs each batch of new readings.
//!
//! ```text
//! cargo run --release --example iot_sensor_stream
//! ```

use dynamicc::batch::HillClimbingConfig;
use dynamicc::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let clusters = 12;
    let full = AccessLikeGenerator {
        clusters,
        points_per_cluster: 40,
        dims: 4,
        ..AccessLikeGenerator::default()
    }
    .generate();
    let workload = DynamicWorkload::generate(
        &full,
        WorkloadConfig {
            initial_fraction: 0.3,
            snapshots: 6,
            add_fraction: 0.2,
            update_fraction: 0.05,
            ..WorkloadConfig::default()
        },
    );
    println!(
        "sensor fleet: {} readings from {} device groups",
        full.len(),
        clusters
    );

    let objective = Arc::new(KMeansObjective);
    let batch = HillClimbing::new(
        objective.clone(),
        HillClimbingConfig {
            fixed_k: Some(clusters),
            ..HillClimbingConfig::default()
        },
    );
    let mut graph = SimilarityGraph::build(
        GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
        &workload.initial,
    );
    let initial = batch.cluster(&graph).clustering;
    println!(
        "initial clustering: {} clusters, k-means cost {:.1}",
        initial.cluster_count(),
        objective.evaluate(&graph, &initial)
    );

    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let mut previous = report.final_clustering(&initial);

    println!("\nround  readings   dynC(ms)   k-means cost (DynamicC)   cost (batch)");
    for snapshot in serve {
        graph.apply_batch(&snapshot.batch);
        let t = Instant::now();
        let clustering = dynamicc.recluster(&graph, &previous, &snapshot.batch);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let batch_result = batch.recluster(&graph, &previous).clustering;
        println!(
            "{:>5} {:>9} {:>10.1} {:>25.1} {:>14.1}",
            snapshot.index,
            clustering.object_count(),
            ms,
            objective.evaluate(&graph, &clustering),
            objective.evaluate(&graph, &batch_result),
        );
        previous = clustering;
    }
    println!(
        "\ncohesion of the final clustering: {:.3}",
        dynamicc.mean_cohesion(&graph, &previous)
    );
}
