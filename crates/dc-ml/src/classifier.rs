//! The [`BinaryClassifier`] trait and the [`ModelKind`] factory.

use crate::logistic::{LogisticConfig, LogisticRegression};
use crate::svm::{LinearSvm, SvmConfig};
use crate::tree::{DecisionTree, TreeConfig};

/// A trainable binary classifier producing calibrated positive-class
/// probabilities.
///
/// DynamicC uses two instances of such a model — one for merge decisions, one
/// for split decisions — and thresholds the probability with a θ chosen for
/// near-perfect recall (§5.4).
pub trait BinaryClassifier: Send + Sync + CloneClassifier {
    /// Fit the model on a feature matrix and parallel boolean labels.
    ///
    /// Implementations must tolerate degenerate inputs (empty data or a
    /// single class); in those cases they fall back to predicting the
    /// majority-class probability.
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[bool]);

    /// Probability that `x` belongs to the positive class, in `[0, 1]`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Hard prediction at a given probability threshold.
    fn predict(&self, x: &[f64], threshold: f64) -> bool {
        self.predict_proba(x) >= threshold
    }

    /// Probabilities for a batch of inputs.
    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Human-readable model name.
    fn name(&self) -> &'static str;

    /// Whether the model has been fitted on any data yet.
    fn is_fitted(&self) -> bool;
}

/// Object-safe cloning for boxed classifiers, blanket-implemented for every
/// `Clone` model, so trained model pairs (and whole trained systems built on
/// them) can be snapshotted cheaply.
pub trait CloneClassifier {
    /// Clone `self` into a new boxed trait object.
    fn clone_classifier(&self) -> Box<dyn BinaryClassifier>;
}

impl<T: BinaryClassifier + Clone + 'static> CloneClassifier for T {
    fn clone_classifier(&self) -> Box<dyn BinaryClassifier> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn BinaryClassifier> {
    fn clone(&self) -> Self {
        self.clone_classifier()
    }
}

/// Which model family to instantiate (Table 4 compares all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// L2-regularized logistic regression (the paper's default model).
    #[default]
    LogisticRegression,
    /// Linear SVM with Platt-style calibration.
    LinearSvm,
    /// CART decision tree with Gini impurity.
    DecisionTree,
}

impl ModelKind {
    /// Instantiate a model of this kind with its default configuration.
    pub fn build(self) -> Box<dyn BinaryClassifier> {
        match self {
            ModelKind::LogisticRegression => {
                Box::new(LogisticRegression::new(LogisticConfig::default()))
            }
            ModelKind::LinearSvm => Box::new(LinearSvm::new(SvmConfig::default())),
            ModelKind::DecisionTree => Box::new(DecisionTree::new(TreeConfig::default())),
        }
    }

    /// All model kinds, in the order Table 4 reports them.
    pub fn all() -> [ModelKind; 3] {
        [
            ModelKind::LogisticRegression,
            ModelKind::LinearSvm,
            ModelKind::DecisionTree,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::LogisticRegression => write!(f, "Logistic Regression"),
            ModelKind::LinearSvm => write!(f, "SVM"),
            ModelKind::DecisionTree => write!(f, "Decision Tree"),
        }
    }
}

/// A linearly separable two-blob toy problem used by the classifier tests of
/// every model module: positives around `(2, 2, …)`, negatives around
/// `(−2, −2, …)`, with deterministic jitter.
#[cfg(test)]
pub(crate) fn separable_problem(n_per_class: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut xs = Vec::with_capacity(2 * n_per_class);
    let mut ys = Vec::with_capacity(2 * n_per_class);
    for i in 0..n_per_class {
        // Deterministic pseudo-jitter in [-0.5, 0.5).
        let jitter = |k: usize| ((i * 31 + k * 17) % 100) as f64 / 100.0 - 0.5;
        xs.push((0..dim).map(|d| 2.0 + jitter(d)).collect());
        ys.push(true);
        xs.push((0..dim).map(|d| -2.0 + jitter(d + 7)).collect());
        ys.push(false);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_builds_every_family() {
        for kind in ModelKind::all() {
            let model = kind.build();
            assert!(!model.is_fitted());
            // Unfitted models produce a neutral probability.
            let p = model.predict_proba(&[0.0, 0.0, 0.0]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn every_model_learns_a_separable_problem() {
        let (xs, ys) = separable_problem(60, 3);
        for kind in ModelKind::all() {
            let mut model = kind.build();
            model.fit(&xs, &ys);
            assert!(model.is_fitted());
            let correct = xs
                .iter()
                .zip(&ys)
                .filter(|(x, &y)| model.predict(x, 0.5) == y)
                .count();
            let accuracy = correct as f64 / xs.len() as f64;
            assert!(
                accuracy > 0.95,
                "{} reached only {accuracy} training accuracy",
                model.name()
            );
        }
    }

    #[test]
    fn batch_prediction_matches_single_prediction() {
        let (xs, ys) = separable_problem(20, 2);
        let mut model = ModelKind::LogisticRegression.build();
        model.fit(&xs, &ys);
        let batch = model.predict_proba_batch(&xs);
        for (x, p) in xs.iter().zip(batch) {
            assert_eq!(model.predict_proba(x), p);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            ModelKind::LogisticRegression.to_string(),
            "Logistic Regression"
        );
        assert_eq!(ModelKind::LinearSvm.to_string(), "SVM");
        assert_eq!(ModelKind::DecisionTree.to_string(), "Decision Tree");
        assert_eq!(ModelKind::default(), ModelKind::LogisticRegression);
    }
}
