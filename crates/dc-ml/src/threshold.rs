//! Recall-first decision-threshold selection (§5.4).
//!
//! DynamicC does not tune its classifiers for accuracy.  A missed positive
//! (a cluster that should have merged or split but was predicted stable)
//! silently degrades clustering quality, while a false positive merely costs
//! one objective-function evaluation during verification.  The paper's rule
//! is therefore: set the threshold `θ` to the *minimum* predicted probability
//! among the positive training examples, which yields 100% recall on the
//! training data; the trade-off between efficiency (how many clusters must be
//! verified) and recall can then be explored by scaling θ (Figure 4).

use crate::classifier::BinaryClassifier;
use crate::metrics::ConfusionMatrix;

/// The default threshold used when there are no positive examples to
/// calibrate against.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// Lower bound applied to the selected threshold so that a single extreme
/// outlier cannot force θ to 0 and turn every cluster into a candidate.
pub const MIN_THRESHOLD: f64 = 0.01;

/// Choose θ as the minimum predicted probability over the positive training
/// examples (clamped to `[MIN_THRESHOLD, 1]`), so that every positive example
/// in `xs`/`ys` is recalled at θ.
pub fn recall_first_threshold(model: &dyn BinaryClassifier, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
    let mut min_positive: Option<f64> = None;
    for (x, &y) in xs.iter().zip(ys) {
        if y {
            let p = model.predict_proba(x);
            min_positive = Some(match min_positive {
                Some(m) => m.min(p),
                None => p,
            });
        }
    }
    match min_positive {
        Some(p) => p.clamp(MIN_THRESHOLD, 1.0),
        None => DEFAULT_THRESHOLD,
    }
}

/// Evaluate a model on labeled data at a specific threshold.
pub fn evaluate_at_threshold(
    model: &dyn BinaryClassifier,
    xs: &[Vec<f64>],
    ys: &[bool],
    threshold: f64,
) -> ConfusionMatrix {
    let predicted: Vec<bool> = xs.iter().map(|x| model.predict(x, threshold)).collect();
    ConfusionMatrix::from_predictions(&predicted, ys)
}

/// The efficiency/recall trade-off of Figure 4: for each candidate θ, how
/// many examples would be flagged positive (and therefore need objective
/// verification) and what recall is achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdTradeoff {
    /// The threshold evaluated.
    pub theta: f64,
    /// Number of examples predicted positive at this threshold.
    pub flagged: usize,
    /// Recall over the actual positives at this threshold.
    pub recall: f64,
    /// Accuracy at this threshold.
    pub accuracy: f64,
}

/// Sweep a set of thresholds and report the trade-off at each (used by the
/// ablation benchmarks).
pub fn threshold_sweep(
    model: &dyn BinaryClassifier,
    xs: &[Vec<f64>],
    ys: &[bool],
    thetas: &[f64],
) -> Vec<ThresholdTradeoff> {
    thetas
        .iter()
        .map(|&theta| {
            let m = evaluate_at_threshold(model, xs, ys, theta);
            ThresholdTradeoff {
                theta,
                flagged: m.true_positives + m.false_positives,
                recall: m.recall(),
                accuracy: m.accuracy(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{separable_problem, ModelKind};

    #[test]
    fn threshold_achieves_full_training_recall() {
        let (xs, ys) = separable_problem(50, 3);
        let mut model = ModelKind::LogisticRegression.build();
        model.fit(&xs, &ys);
        let theta = recall_first_threshold(model.as_ref(), &xs, &ys);
        let m = evaluate_at_threshold(model.as_ref(), &xs, &ys, theta);
        assert_eq!(m.recall(), 1.0);
        assert!((MIN_THRESHOLD..=1.0).contains(&theta));
    }

    #[test]
    fn threshold_is_below_every_positive_probability() {
        let (xs, ys) = separable_problem(30, 2);
        let mut model = ModelKind::DecisionTree.build();
        model.fit(&xs, &ys);
        let theta = recall_first_threshold(model.as_ref(), &xs, &ys);
        for (x, &y) in xs.iter().zip(&ys) {
            if y {
                assert!(model.predict_proba(x) >= theta);
            }
        }
    }

    #[test]
    fn no_positives_falls_back_to_default() {
        let (xs, _) = separable_problem(10, 2);
        let ys = vec![false; xs.len()];
        let mut model = ModelKind::LogisticRegression.build();
        model.fit(&xs, &ys);
        assert_eq!(
            recall_first_threshold(model.as_ref(), &xs, &ys),
            DEFAULT_THRESHOLD
        );
    }

    #[test]
    fn lower_threshold_flags_more_and_never_lowers_recall() {
        let (xs, ys) = separable_problem(60, 3);
        let mut model = ModelKind::LogisticRegression.build();
        model.fit(&xs, &ys);
        let sweep = threshold_sweep(model.as_ref(), &xs, &ys, &[0.9, 0.5, 0.1, 0.01]);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].flagged >= pair[0].flagged,
                "lower θ must flag at least as many"
            );
            assert!(pair[1].recall >= pair[0].recall - 1e-12);
        }
        // At the most permissive threshold everything positive is caught.
        assert_eq!(sweep.last().unwrap().recall, 1.0);
    }

    #[test]
    fn evaluate_at_threshold_matches_manual_confusion() {
        let (xs, ys) = separable_problem(20, 2);
        let mut model = ModelKind::LinearSvm.build();
        model.fit(&xs, &ys);
        let m = evaluate_at_threshold(model.as_ref(), &xs, &ys, 0.5);
        assert_eq!(m.total(), xs.len());
    }
}
