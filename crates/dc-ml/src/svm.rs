//! Linear support-vector machine with probability calibration.
//!
//! Table 4 of the paper compares an SVM against logistic regression and a
//! decision tree.  This implementation trains a linear SVM by stochastic
//! subgradient descent on the L2-regularized hinge loss (Pegasos-style) and
//! then fits a one-dimensional logistic ("Platt scaling") on the decision
//! values so that [`BinaryClassifier::predict_proba`] returns calibrated
//! probabilities, which the θ-threshold machinery of §5.4 requires.

use crate::classifier::BinaryClassifier;
use crate::data::StandardScaler;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// RNG seed used to shuffle examples between epochs.
    pub seed: u64,
    /// Gradient-descent steps for the Platt calibration stage.
    pub calibration_steps: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-3,
            epochs: 60,
            seed: 0xd00d,
            calibration_steps: 200,
        }
    }
}

/// Linear SVM classifier with Platt-calibrated probabilities.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    config: SvmConfig,
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
    /// Platt scaling parameters: `P(y=1 | d) = sigmoid(a·d + b)`.
    platt_a: f64,
    platt_b: f64,
    fitted: bool,
    prior: f64,
}

impl LinearSvm {
    /// Create an untrained SVM.
    pub fn new(config: SvmConfig) -> Self {
        LinearSvm {
            config,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
            bias: 0.0,
            platt_a: 1.0,
            platt_b: 0.0,
            fitted: false,
            prior: 0.5,
        }
    }

    /// Raw (uncalibrated) decision value `w·x + b` in standardized space.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        let z = self.scaler.transform(x);
        z.iter()
            .zip(&self.weights)
            .map(|(xi, wi)| xi * wi)
            .sum::<f64>()
            + self.bias
    }

    fn sigmoid(z: f64) -> f64 {
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Fit the 1-D logistic mapping decision values to probabilities.
    fn fit_platt(&mut self, decisions: &[f64], ys: &[bool]) {
        let mut a = 1.0;
        let mut b = 0.0;
        let n = decisions.len() as f64;
        let lr = 0.1;
        for _ in 0..self.config.calibration_steps {
            let mut grad_a = 0.0;
            let mut grad_b = 0.0;
            for (&d, &y) in decisions.iter().zip(ys) {
                let p = Self::sigmoid(a * d + b);
                let err = p - if y { 1.0 } else { 0.0 };
                grad_a += err * d;
                grad_b += err;
            }
            a -= lr * grad_a / n;
            b -= lr * grad_b / n;
        }
        self.platt_a = a;
        self.platt_b = b;
    }
}

impl BinaryClassifier for LinearSvm {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[bool]) {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        if xs.is_empty() {
            self.fitted = false;
            self.prior = 0.5;
            return;
        }
        let positives = ys.iter().filter(|&&y| y).count();
        self.prior = positives as f64 / ys.len() as f64;
        if positives == 0 || positives == ys.len() {
            self.weights = vec![0.0; xs[0].len()];
            self.bias = 0.0;
            self.fitted = true;
            return;
        }

        self.scaler = StandardScaler::fit(xs);
        let z = self.scaler.transform_all(xs);
        let dim = z[0].len();
        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..z.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut t = 1.0f64;
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let eta = 1.0 / (self.config.lambda * t);
                t += 1.0;
                let x = &z[i];
                let y = if ys[i] { 1.0 } else { -1.0 };
                let margin = y * (x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>() + b);
                // Regularization shrink.
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * self.config.lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y * 0.1;
                }
            }
        }
        self.weights = w;
        self.bias = b;
        self.fitted = true;

        let decisions: Vec<f64> = xs.iter().map(|x| self.decision_value(x)).collect();
        self.fit_platt(&decisions, ys);
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if !self.fitted || self.weights.iter().all(|&w| w == 0.0) {
            return self.prior;
        }
        Self::sigmoid(self.platt_a * self.decision_value(x) + self.platt_b)
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::separable_problem;
    use crate::metrics::ConfusionMatrix;

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = separable_problem(80, 3);
        let mut model = LinearSvm::new(SvmConfig::default());
        model.fit(&xs, &ys);
        let preds: Vec<bool> = xs.iter().map(|x| model.predict(x, 0.5)).collect();
        let m = ConfusionMatrix::from_predictions(&preds, &ys);
        assert!(m.accuracy() > 0.97, "accuracy = {}", m.accuracy());
    }

    #[test]
    fn calibrated_probabilities_track_the_margin() {
        let (xs, ys) = separable_problem(60, 2);
        let mut model = LinearSvm::new(SvmConfig::default());
        model.fit(&xs, &ys);
        let deep_neg = model.predict_proba(&[-4.0, -4.0]);
        let deep_pos = model.predict_proba(&[4.0, 4.0]);
        assert!(deep_neg < 0.2, "deep negative got p = {deep_neg}");
        assert!(deep_pos > 0.8, "deep positive got p = {deep_pos}");
        assert!(model.decision_value(&[4.0, 4.0]) > model.decision_value(&[-4.0, -4.0]));
    }

    #[test]
    fn unfitted_and_degenerate_cases() {
        let model = LinearSvm::new(SvmConfig::default());
        assert_eq!(model.predict_proba(&[0.0]), 0.5);
        assert!(!model.is_fitted());
        assert_eq!(model.name(), "linear-svm");

        let mut model = LinearSvm::new(SvmConfig::default());
        model.fit(&[], &[]);
        assert_eq!(model.predict_proba(&[0.0]), 0.5);

        let mut model = LinearSvm::new(SvmConfig::default());
        model.fit(&[vec![1.0], vec![2.0]], &[true, true]);
        assert_eq!(model.predict_proba(&[0.0]), 1.0);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = separable_problem(40, 2);
        let mut a = LinearSvm::new(SvmConfig::default());
        let mut b = LinearSvm::new(SvmConfig::default());
        a.fit(&xs, &ys);
        b.fit(&xs, &ys);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.predict_proba(&[1.0, 1.0]), b.predict_proba(&[1.0, 1.0]));
    }
}
