//! Classification metrics: confusion matrix, accuracy, precision, recall, F1.
//!
//! These are the model-quality measures used throughout §5.4 and the ML
//! evaluation of §7.3 (Tables 4 and 5, Figure 3).  They are *classifier*
//! metrics over cluster-change predictions, distinct from the
//! *clustering-quality* metrics (pair-counting F1, purity, …) that live in
//! `dc-eval`.

/// Counts of the four prediction outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Positive examples predicted positive.
    pub true_positives: usize,
    /// Negative examples predicted positive.
    pub false_positives: usize,
    /// Negative examples predicted negative.
    pub true_negatives: usize,
    /// Positive examples predicted negative.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Build a confusion matrix from parallel prediction / truth slices.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut m = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, false) => m.true_negatives += 1,
                (false, true) => m.false_negatives += 1,
            }
        }
        m
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of correct predictions.  1.0 on an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Of the examples predicted positive, the fraction that are positive.
    /// Defined as 1.0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Of the actual positives, the fraction that were found.  Defined as
    /// 1.0 when there are no positive examples.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 1.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge counts from another matrix (e.g. across folds or rounds).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// The 2×2 heat-map layout of Figure 3: rows are actual (0, 1), columns
    /// predicted (0, 1).
    pub fn heatmap(&self) -> [[usize; 2]; 2] {
        [
            [self.true_negatives, self.false_positives],
            [self.false_negatives, self.true_positives],
        ]
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "            pred=0  pred=1")?;
        writeln!(
            f,
            "actual=0  {:>8} {:>7}",
            self.true_negatives, self.false_positives
        )?;
        write!(
            f,
            "actual=1  {:>8} {:>7}",
            self.false_negatives, self.true_positives
        )
    }
}

/// A bundle of the derived metrics, convenient for experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationReport {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// Positive predictive value.
    pub precision: f64,
    /// True positive rate.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl From<&ConfusionMatrix> for ClassificationReport {
    fn from(m: &ConfusionMatrix) -> Self {
        ClassificationReport {
            accuracy: m.accuracy(),
            precision: m.precision(),
            recall: m.recall(),
            f1: m.f1(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figure 3 / §5.4: 144 clusters, 8 TN, 15 FP,
    /// 1 FN, 120 TP ⇒ accuracy 0.889, precision 0.889, recall 0.992.
    #[test]
    fn figure3_worked_example() {
        let m = ConfusionMatrix {
            true_negatives: 8,
            false_positives: 15,
            false_negatives: 1,
            true_positives: 120,
        };
        assert_eq!(m.total(), 144);
        assert!((m.accuracy() - 128.0 / 144.0).abs() < 1e-9);
        assert!((m.precision() - 120.0 / 135.0).abs() < 1e-9);
        assert!((m.recall() - 120.0 / 121.0).abs() < 1e-9);
        assert_eq!(m.heatmap(), [[8, 15], [1, 120]]);
    }

    #[test]
    fn from_predictions_counts_each_outcome() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let m = ConfusionMatrix::from_predictions(&predicted, &actual);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.false_negatives, 1);
    }

    #[test]
    fn degenerate_cases() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.accuracy(), 1.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);

        let all_wrong = ConfusionMatrix {
            false_positives: 3,
            false_negatives: 2,
            ..Default::default()
        };
        assert_eq!(all_wrong.accuracy(), 0.0);
        assert_eq!(all_wrong.precision(), 0.0);
        assert_eq!(all_wrong.recall(), 0.0);
        assert_eq!(all_wrong.f1(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::from_predictions(&[true], &[true]);
        let b = ConfusionMatrix::from_predictions(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.false_negatives, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn report_derives_all_metrics() {
        let m = ConfusionMatrix {
            true_positives: 8,
            false_positives: 2,
            true_negatives: 85,
            false_negatives: 5,
        };
        let r = ClassificationReport::from(&m);
        assert!((r.accuracy - 0.93).abs() < 1e-9);
        assert!((r.precision - 0.8).abs() < 1e-9);
        assert!((r.recall - 8.0 / 13.0).abs() < 1e-9);
        assert!(r.f1 > 0.0 && r.f1 < 1.0);
    }

    #[test]
    fn display_contains_counts() {
        let m = ConfusionMatrix {
            true_positives: 4,
            false_positives: 3,
            true_negatives: 2,
            false_negatives: 1,
        };
        let s = m.to_string();
        assert!(s.contains('4') && s.contains('3') && s.contains('2') && s.contains('1'));
    }

    #[test]
    #[should_panic]
    fn from_predictions_rejects_mismatched_lengths() {
        ConfusionMatrix::from_predictions(&[true], &[]);
    }
}
