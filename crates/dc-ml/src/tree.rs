//! CART decision tree with Gini impurity.
//!
//! The third model family of Table 4.  Trees are grown greedily: at every
//! node the split (feature, threshold) with the largest Gini-impurity
//! reduction is chosen, candidate thresholds being midpoints between
//! consecutive distinct feature values (capped per feature to keep training
//! linear in practice).  Leaves store the positive-class fraction of their
//! training examples, which is what [`BinaryClassifier::predict_proba`]
//! returns — a coarse but usable probability for the θ-threshold machinery.

use crate::classifier::BinaryClassifier;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of examples required to attempt a split.
    pub min_samples_split: usize,
    /// Maximum number of candidate thresholds evaluated per feature.
    pub max_thresholds_per_feature: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 4,
            max_thresholds_per_feature: 32,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        positive_fraction: f64,
    },
    Internal {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART decision-tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    root: Option<Node>,
    prior: f64,
}

impl DecisionTree {
    /// Create an untrained tree.
    pub fn new(config: TreeConfig) -> Self {
        assert!(config.max_depth >= 1, "max_depth must be at least 1");
        assert!(
            config.min_samples_split >= 2,
            "min_samples_split must be at least 2"
        );
        DecisionTree {
            config,
            root: None,
            prior: 0.5,
        }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Internal { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// Depth of the fitted tree (0 for a single leaf, 0 before fitting).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        self.root.as_ref().map_or(0, depth)
    }

    fn gini(pos: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let p = pos as f64 / total as f64;
        2.0 * p * (1.0 - p)
    }

    fn build(&self, xs: &[Vec<f64>], ys: &[bool], indices: &[usize], depth: usize) -> Node {
        let total = indices.len();
        let pos = indices.iter().filter(|&&i| ys[i]).count();
        let positive_fraction = if total == 0 {
            self.prior
        } else {
            pos as f64 / total as f64
        };

        let pure = pos == 0 || pos == total;
        if pure || depth >= self.config.max_depth || total < self.config.min_samples_split {
            return Node::Leaf { positive_fraction };
        }

        let dim = xs[indices[0]].len();
        let parent_impurity = Self::gini(pos, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

        // `feature` indexes a column across many rows of `xs`, so there is
        // no single slice to iterate (clippy only sees the row access).
        #[allow(clippy::needless_range_loop)]
        for feature in 0..dim {
            let mut values: Vec<f64> = indices.iter().map(|&i| xs[i][feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints, subsampled if there are many.
            let step = ((values.len() - 1) as f64
                / self.config.max_thresholds_per_feature.max(1) as f64)
                .ceil() as usize;
            let step = step.max(1);
            let mut k = 0;
            while k + 1 < values.len() {
                let threshold = (values[k] + values[k + 1]) / 2.0;
                let mut left_total = 0;
                let mut left_pos = 0;
                for &i in indices {
                    if xs[i][feature] <= threshold {
                        left_total += 1;
                        if ys[i] {
                            left_pos += 1;
                        }
                    }
                }
                let right_total = total - left_total;
                let right_pos = pos - left_pos;
                if left_total > 0 && right_total > 0 {
                    let weighted = (left_total as f64 / total as f64)
                        * Self::gini(left_pos, left_total)
                        + (right_total as f64 / total as f64) * Self::gini(right_pos, right_total);
                    let gain = parent_impurity - weighted;
                    if best.is_none_or(|(_, _, g)| gain > g + 1e-12) {
                        best = Some((feature, threshold, gain));
                    }
                }
                k += step;
            }
        }

        match best {
            Some((feature, threshold, gain)) if gain > 1e-9 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| xs[i][feature] <= threshold);
                let left = self.build(xs, ys, &left_idx, depth + 1);
                let right = self.build(xs, ys, &right_idx, depth + 1);
                Node::Internal {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf { positive_fraction },
        }
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree::new(TreeConfig::default())
    }
}

impl BinaryClassifier for DecisionTree {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[bool]) {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        if xs.is_empty() {
            self.root = None;
            self.prior = 0.5;
            return;
        }
        self.prior = ys.iter().filter(|&&y| y).count() as f64 / ys.len() as f64;
        let indices: Vec<usize> = (0..xs.len()).collect();
        self.root = Some(self.build(xs, ys, &indices, 0));
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        let Some(mut node) = self.root.as_ref() else {
            return self.prior;
        };
        loop {
            match node {
                Node::Leaf { positive_fraction } => return *positive_fraction,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = x.get(*feature).copied().unwrap_or(0.0);
                    node = if value <= *threshold { left } else { right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }

    fn is_fitted(&self) -> bool {
        self.root.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::separable_problem;
    use crate::metrics::ConfusionMatrix;

    #[test]
    fn learns_separable_data_almost_perfectly() {
        let (xs, ys) = separable_problem(60, 3);
        let mut tree = DecisionTree::default();
        tree.fit(&xs, &ys);
        let preds: Vec<bool> = xs.iter().map(|x| tree.predict(x, 0.5)).collect();
        let m = ConfusionMatrix::from_predictions(&preds, &ys);
        // Threshold subsampling may cost a single boundary example.
        assert!(m.accuracy() > 0.98, "accuracy = {}", m.accuracy());
        assert!(tree.is_fitted());
        assert!(tree.node_count() >= 3);
    }

    #[test]
    fn learns_an_axis_aligned_conjunction() {
        // Positive iff (x > 0) AND (y > 0) — not linearly decidable with a
        // single axis-aligned cut, so the greedy tree must reach depth ≥ 2.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f64 / 10.0 - 1.0 + 0.05;
                let y = j as f64 / 10.0 - 1.0 + 0.05;
                xs.push(vec![x, y]);
                ys.push(x > 0.0 && y > 0.0);
            }
        }
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 4,
            ..TreeConfig::default()
        });
        tree.fit(&xs, &ys);
        let preds: Vec<bool> = xs.iter().map(|x| tree.predict(x, 0.5)).collect();
        let m = ConfusionMatrix::from_predictions(&preds, &ys);
        assert!(m.accuracy() > 0.95, "accuracy = {}", m.accuracy());
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let (xs, ys) = separable_problem(50, 2);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        });
        tree.fit(&xs, &ys);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pure_and_tiny_inputs_become_leaves() {
        let mut tree = DecisionTree::default();
        tree.fit(&[vec![1.0], vec![2.0]], &[true, true]);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[5.0]), 1.0);

        let mut tree = DecisionTree::default();
        tree.fit(&[vec![1.0]], &[false]);
        assert_eq!(tree.predict_proba(&[1.0]), 0.0);
    }

    #[test]
    fn unfitted_tree_predicts_neutral_prior() {
        let tree = DecisionTree::default();
        assert_eq!(tree.predict_proba(&[1.0, 2.0]), 0.5);
        assert!(!tree.is_fitted());
        assert_eq!(tree.node_count(), 0);
        assert_eq!(tree.name(), "decision-tree");
    }

    #[test]
    fn empty_training_data_is_tolerated() {
        let mut tree = DecisionTree::default();
        tree.fit(&[], &[]);
        assert!(!tree.is_fitted());
        assert_eq!(tree.predict_proba(&[0.0]), 0.5);
    }

    #[test]
    fn missing_feature_values_fall_back_to_zero() {
        let (xs, ys) = separable_problem(30, 3);
        let mut tree = DecisionTree::default();
        tree.fit(&xs, &ys);
        // Passing a shorter vector must not panic.
        let p = tree.predict_proba(&[2.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    #[should_panic]
    fn invalid_config_is_rejected() {
        DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
    }
}
