//! # dc-ml
//!
//! From-scratch binary classifiers and classification metrics for DynamicC.
//!
//! The paper trains small, fast models — logistic regression (the default),
//! a linear SVM, and a decision tree (Table 4) — on 3–4 dimensional cluster
//! feature vectors and then manipulates the decision threshold `θ` so that
//! *recall* over "clusters that ought to change" is (near) 100% while
//! precision stays as high as possible (§5.4).  False positives are cheap
//! because DynamicC verifies every proposed change against the clustering
//! objective; false negatives are expensive because a missed merge/split
//! silently degrades clustering quality.
//!
//! This crate deliberately depends on nothing beyond `rand`: the models are
//! implemented from first principles (the repro hint for this paper notes
//! that Rust ML crates are thin, and the baselines must be rebuilt by hand
//! anyway), which also keeps them exactly as small and inspectable as the
//! paper's argument requires — DynamicC's merge algorithm reads the learned
//! coefficients to rank candidate partners cheaply (§6.2).
//!
//! Modules:
//!
//! * [`classifier`] — the [`BinaryClassifier`] trait and [`ModelKind`]
//!   factory.
//! * [`logistic`] — L2-regularized logistic regression trained by
//!   full-batch gradient descent.
//! * [`svm`] — linear SVM trained by hinge-loss subgradient descent with a
//!   Platt-style probability calibration.
//! * [`tree`] — CART decision tree with Gini impurity.
//! * [`data`] — feature standardization and deterministic train/test
//!   splitting.
//! * [`metrics`] — confusion matrices, accuracy, precision, recall, F1.
//! * [`threshold`] — the recall-first θ selection rule of §5.4.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod classifier;
pub mod data;
pub mod logistic;
pub mod metrics;
pub mod svm;
pub mod threshold;
pub mod tree;

pub use classifier::{BinaryClassifier, ModelKind};
pub use data::{train_test_split, StandardScaler};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use metrics::{ClassificationReport, ConfusionMatrix};
pub use svm::{LinearSvm, SvmConfig};
pub use threshold::{evaluate_at_threshold, recall_first_threshold};
pub use tree::{DecisionTree, TreeConfig};
