//! Feature standardization and dataset splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-feature standardization (`z = (x − mean) / std`).
///
/// Fitted on training data and applied to every later input; features with
/// zero variance are passed through centred but unscaled.  All classifiers in
/// this crate standardize internally so that callers can feed raw cluster
/// features (whose size component is unbounded) without worrying about
/// scaling.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit a scaler to a feature matrix (rows = examples).
    pub fn fit(xs: &[Vec<f64>]) -> Self {
        if xs.is_empty() {
            return StandardScaler::default();
        }
        let dim = xs[0].len();
        let n = xs.len() as f64;
        let mut means = vec![0.0; dim];
        for x in xs {
            for (i, &v) in x.iter().enumerate() {
                means[i] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for x in xs {
            for (i, &v) in x.iter().enumerate() {
                let d = v - means[i];
                vars[i] += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Number of features the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardize one feature vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(i, &v)| {
                let mean = self.means.get(i).copied().unwrap_or(0.0);
                let std = self.stds.get(i).copied().unwrap_or(1.0);
                (v - mean) / std
            })
            .collect()
    }

    /// Standardize a whole matrix.
    pub fn transform_all(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

/// `(train_xs, train_ys, test_xs, test_ys)` as produced by
/// [`train_test_split`].
pub type TrainTestSplit = (Vec<Vec<f64>>, Vec<bool>, Vec<Vec<f64>>, Vec<bool>);

/// Deterministically shuffle and split `(xs, ys)` into
/// `(train_xs, train_ys, test_xs, test_ys)` with `train_fraction` of the
/// examples in the training part.
pub fn train_test_split(
    xs: &[Vec<f64>],
    ys: &[bool],
    train_fraction: f64,
    seed: u64,
) -> TrainTestSplit {
    assert_eq!(xs.len(), ys.len(), "features and labels must align");
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction must be in [0, 1]"
    );
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let n_train = ((xs.len() as f64) * train_fraction).round() as usize;
    let mut train_xs = Vec::with_capacity(n_train);
    let mut train_ys = Vec::with_capacity(n_train);
    let mut test_xs = Vec::with_capacity(xs.len() - n_train);
    let mut test_ys = Vec::with_capacity(xs.len() - n_train);
    for (rank, &i) in order.iter().enumerate() {
        if rank < n_train {
            train_xs.push(xs[i].clone());
            train_ys.push(ys[i]);
        } else {
            test_xs.push(xs[i].clone());
            test_ys.push(ys[i]);
        }
    }
    (train_xs, train_ys, test_xs, test_ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_standardizes_to_zero_mean_unit_variance() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let scaler = StandardScaler::fit(&xs);
        let z = scaler.transform_all(&xs);
        for dim in 0..2 {
            let mean: f64 = z.iter().map(|r| r[dim]).sum::<f64>() / z.len() as f64;
            let var: f64 = z.iter().map(|r| (r[dim] - mean).powi(2)).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
        assert_eq!(scaler.dim(), 2);
    }

    #[test]
    fn scaler_handles_constant_features() {
        let xs = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&xs);
        let z = scaler.transform(&[5.0]);
        assert_eq!(z, vec![0.0]);
        let z = scaler.transform(&[7.0]);
        assert_eq!(z, vec![2.0]);
    }

    #[test]
    fn scaler_on_empty_input_is_identity() {
        let scaler = StandardScaler::fit(&[]);
        assert_eq!(scaler.transform(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(scaler.dim(), 0);
    }

    #[test]
    fn split_respects_fraction_and_partition() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let (trx, tr_y, tex, te_y) = train_test_split(&xs, &ys, 0.8, 1);
        assert_eq!(trx.len(), 80);
        assert_eq!(tex.len(), 20);
        assert_eq!(tr_y.len(), 80);
        assert_eq!(te_y.len(), 20);
        // Every original example appears exactly once.
        let mut seen: Vec<f64> = trx.iter().chain(&tex).map(|v| v[0]).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![true; 20];
        let a = train_test_split(&xs, &ys, 0.5, 7);
        let b = train_test_split(&xs, &ys, 0.5, 7);
        assert_eq!(a.0, b.0);
        let c = train_test_split(&xs, &ys, 0.5, 8);
        assert_ne!(a.0, c.0);
    }

    #[test]
    #[should_panic]
    fn split_rejects_mismatched_lengths() {
        train_test_split(&[vec![1.0]], &[], 0.5, 0);
    }
}
