//! L2-regularized logistic regression trained by full-batch gradient descent.
//!
//! This is the paper's default model: it is tiny (the feature vectors have
//! 3–4 dimensions), trains in well under a second even on tens of thousands
//! of examples (§7.3 reports < 1 s for 20K samples), and its coefficients
//! are directly interpretable — the merge algorithm of §6.2 exploits the
//! learned weights to rank candidate merge partners cheaply.

use crate::classifier::BinaryClassifier;
use crate::data::StandardScaler;

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch gradient-descent epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            learning_rate: 0.5,
            epochs: 300,
            l2: 1e-4,
        }
    }
}

/// Logistic-regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    config: LogisticConfig,
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
    /// Fallback probability used before fitting or for single-class data.
    prior: f64,
}

impl LogisticRegression {
    /// Create an untrained model.
    pub fn new(config: LogisticConfig) -> Self {
        LogisticRegression {
            config,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
            prior: 0.5,
        }
    }

    /// The learned weights in *standardized* feature space.  Empty before
    /// fitting.  Exposed so callers (e.g. DynamicC's merge candidate ranking)
    /// can inspect which features dominate the decision.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    fn sigmoid(z: f64) -> f64 {
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }
}

impl BinaryClassifier for LogisticRegression {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[bool]) {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        let positives = ys.iter().filter(|&&y| y).count();
        if xs.is_empty() {
            self.fitted = false;
            self.prior = 0.5;
            return;
        }
        self.prior = positives as f64 / ys.len() as f64;
        if positives == 0 || positives == ys.len() {
            // Single-class data: predict the prior, which is 0 or 1.
            self.weights = vec![0.0; xs[0].len()];
            self.bias = 0.0;
            self.fitted = true;
            // Degenerate fit: mark fitted but rely on the prior.
            return;
        }

        self.scaler = StandardScaler::fit(xs);
        let z = self.scaler.transform_all(xs);
        let dim = z[0].len();
        let n = z.len() as f64;
        let mut w = vec![0.0; dim];
        let mut b = 0.0;

        for _ in 0..self.config.epochs {
            let mut grad_w = vec![0.0; dim];
            let mut grad_b = 0.0;
            for (x, &y) in z.iter().zip(ys) {
                let pred = Self::sigmoid(x.iter().zip(&w).map(|(xi, wi)| xi * wi).sum::<f64>() + b);
                let err = pred - if y { 1.0 } else { 0.0 };
                for (g, xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi;
                }
                grad_b += err;
            }
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi -= self.config.learning_rate * (g / n + self.config.l2 * *wi);
            }
            b -= self.config.learning_rate * grad_b / n;
        }

        self.weights = w;
        self.bias = b;
        self.fitted = true;
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if !self.fitted || self.weights.iter().all(|&w| w == 0.0) {
            return self.prior;
        }
        let z = self.scaler.transform(x);
        let score = z
            .iter()
            .zip(&self.weights)
            .map(|(xi, wi)| xi * wi)
            .sum::<f64>()
            + self.bias;
        Self::sigmoid(score)
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::separable_problem;
    use crate::metrics::ConfusionMatrix;

    #[test]
    fn learns_separable_data_with_high_accuracy() {
        let (xs, ys) = separable_problem(80, 4);
        let mut model = LogisticRegression::new(LogisticConfig::default());
        model.fit(&xs, &ys);
        let preds: Vec<bool> = xs.iter().map(|x| model.predict(x, 0.5)).collect();
        let m = ConfusionMatrix::from_predictions(&preds, &ys);
        assert!(m.accuracy() > 0.98);
        assert!(model.is_fitted());
        assert_eq!(model.weights().len(), 4);
    }

    #[test]
    fn probabilities_are_monotone_along_the_separating_direction() {
        let (xs, ys) = separable_problem(50, 2);
        let mut model = LogisticRegression::new(LogisticConfig::default());
        model.fit(&xs, &ys);
        let p_neg = model.predict_proba(&[-3.0, -3.0]);
        let p_mid = model.predict_proba(&[0.0, 0.0]);
        let p_pos = model.predict_proba(&[3.0, 3.0]);
        assert!(p_neg < p_mid && p_mid < p_pos);
        assert!(p_neg < 0.1 && p_pos > 0.9);
    }

    #[test]
    fn unfitted_model_predicts_neutral_prior() {
        let model = LogisticRegression::new(LogisticConfig::default());
        assert_eq!(model.predict_proba(&[1.0, 2.0]), 0.5);
        assert!(!model.is_fitted());
        assert_eq!(model.name(), "logistic-regression");
    }

    #[test]
    fn single_class_data_predicts_the_prior() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![3.0, 4.0]];
        let mut model = LogisticRegression::new(LogisticConfig::default());
        model.fit(&xs, &[true, true, true]);
        assert_eq!(model.predict_proba(&[0.0, 0.0]), 1.0);
        let mut model = LogisticRegression::new(LogisticConfig::default());
        model.fit(&xs, &[false, false, false]);
        assert_eq!(model.predict_proba(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn empty_training_data_is_tolerated() {
        let mut model = LogisticRegression::new(LogisticConfig::default());
        model.fit(&[], &[]);
        assert!(!model.is_fitted());
        assert_eq!(model.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn weights_identify_the_informative_feature() {
        // Only the first feature is informative; the second is constant.
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 5.0])
            .collect();
        let ys: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let mut model = LogisticRegression::new(LogisticConfig::default());
        model.fit(&xs, &ys);
        assert!(model.weights()[0].abs() > model.weights()[1].abs() * 10.0);
    }

    #[test]
    fn sigmoid_is_numerically_stable_at_extremes() {
        assert!(LogisticRegression::sigmoid(1000.0) <= 1.0);
        assert!(LogisticRegression::sigmoid(-1000.0) >= 0.0);
        assert!((LogisticRegression::sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
