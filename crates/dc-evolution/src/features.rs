//! Feature extraction for the DynamicC ML model (§5.1, §5.2).
//!
//! Features describe *global characteristics of one cluster* and are
//! independent of the underlying batch algorithm:
//!
//! | feature | meaning | merge model | split model |
//! |---|---|---|---|
//! | `f1` | average intra-cluster similarity | ✓ | ✓ |
//! | `f2` | maximal average inter-cluster similarity to any other cluster | ✓ | ✓ |
//! | `f3` | cluster size | ✓ | ✓ |
//! | `f4` | size of the cluster attaining the maximum in `f2` | ✓ | — |
//!
//! The merge model therefore consumes 4-dimensional inputs and the split
//! model 3-dimensional inputs; the label (`f5` in the paper's notation) is
//! carried separately as a boolean.
//!
//! [`RoundExamples::extract`] converts one round of observed evolution — the
//! similarity graph, the *working clustering* produced by initial processing
//! (old clustering + new singletons − removed objects), and the derived
//! [`EvolutionTrace`] — into positive examples (clusters that merged or
//! split) and negative candidates (clusters that stayed unchanged), already
//! partitioned into "active" and "inactive" clusters for the negative
//! sampler of §5.3.

use crate::ops::{find_cluster_with_members, EvolutionStep, EvolutionTrace};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Dimensionality of merge-model feature vectors.
pub const MERGE_FEATURE_DIM: usize = 4;
/// Dimensionality of split-model feature vectors.
pub const SPLIT_FEATURE_DIM: usize = 3;

/// A feature vector with its binary label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    /// The feature values.
    pub features: Vec<f64>,
    /// `true` for a positive (merge/split happened) example.
    pub label: bool,
}

impl LabeledExample {
    /// Create a labeled example.
    pub fn new(features: Vec<f64>, label: bool) -> Self {
        LabeledExample { features, label }
    }
}

/// Merge-model features `(f1, f2, f3, f4)` of an existing cluster, read off
/// the maintained aggregates (no graph edges are walked).
pub fn merge_features(agg: &ClusterAggregates, cid: ClusterId) -> [f64; MERGE_FEATURE_DIM] {
    let f1 = agg.intra_avg(cid);
    let (f2, f4) = match agg.max_inter_avg(cid) {
        Some((other, avg)) => (avg, agg.cluster_size(other) as f64),
        None => (0.0, 0.0),
    };
    let f3 = agg.cluster_size(cid) as f64;
    [f1, f2, f3, f4]
}

/// Split-model features `(f1, f2, f3)` of an existing cluster.
pub fn split_features(agg: &ClusterAggregates, cid: ClusterId) -> [f64; SPLIT_FEATURE_DIM] {
    let m = merge_features(agg, cid);
    [m[0], m[1], m[2]]
}

/// Merge-model features of a *hypothetical* cluster given by an explicit
/// member set (used by the merge algorithm to score the stability of the
/// cluster that a candidate merge would produce, §6.2).
///
/// The hypothetical cluster's neighbours are every existing cluster that is
/// not (partially) absorbed into the member set.
pub fn merge_features_of_members(
    graph: &SimilarityGraph,
    clustering: &Clustering,
    members: &BTreeSet<ObjectId>,
) -> [f64; MERGE_FEATURE_DIM] {
    let n = members.len();
    // Intra average.
    let f1 = if n <= 1 {
        1.0
    } else {
        let mut intra = 0.0;
        for &a in members {
            for (b, sim) in graph.neighbors(a) {
                if b > a && members.contains(&b) {
                    intra += sim;
                }
            }
        }
        intra / (n * (n - 1) / 2) as f64
    };
    // Max average inter similarity against existing clusters outside the set.
    let mut sums: BTreeMap<ClusterId, f64> = BTreeMap::new();
    for &a in members {
        for (b, sim) in graph.neighbors(a) {
            if members.contains(&b) {
                continue;
            }
            if let Some(cid) = clustering.cluster_of(b) {
                *sums.entry(cid).or_insert(0.0) += sim;
            }
        }
    }
    let mut f2 = 0.0;
    let mut f4 = 0.0;
    for (cid, sum) in sums {
        // Ignore clusters that overlap the hypothetical member set (they are
        // being consumed by the merge under consideration).
        let cluster = clustering.cluster(cid).expect("live cluster id");
        let outside = cluster.iter().filter(|o| !members.contains(o)).count();
        if outside == 0 {
            continue;
        }
        let avg = sum / (n * outside) as f64;
        if avg > f2 {
            f2 = avg;
            f4 = outside as f64;
        }
    }
    [f1, f2, n as f64, f4]
}

/// The labeled examples and negative candidates observed in one round.
#[derive(Debug, Clone, Default)]
pub struct RoundExamples {
    /// Feature vectors of clusters that participated in a merge evolution.
    pub merge_positives: Vec<Vec<f64>>,
    /// Feature vectors of clusters that were split.
    pub split_positives: Vec<Vec<f64>>,
    /// Merge-model feature vectors of unchanged *active* clusters.
    pub merge_negatives_active: Vec<Vec<f64>>,
    /// Merge-model feature vectors of unchanged *inactive* clusters.
    pub merge_negatives_inactive: Vec<Vec<f64>>,
    /// Split-model feature vectors of unchanged *active* clusters.
    pub split_negatives_active: Vec<Vec<f64>>,
    /// Split-model feature vectors of unchanged *inactive* clusters.
    pub split_negatives_inactive: Vec<Vec<f64>>,
}

impl RoundExamples {
    /// Extract the examples of one round.
    ///
    /// * `graph` — similarity graph after this round's operations;
    /// * `working` — the clustering produced by initial processing (§6.1),
    ///   i.e. the state in which the clusters named by the trace exist;
    /// * `trace` — the derived evolution steps of this round (§4.3).
    pub fn extract(graph: &SimilarityGraph, working: &Clustering, trace: &EvolutionTrace) -> Self {
        let agg = ClusterAggregates::new(graph, working);
        let mut merge_positive_ids: BTreeSet<ClusterId> = BTreeSet::new();
        let mut split_positive_ids: BTreeSet<ClusterId> = BTreeSet::new();

        for step in trace.iter() {
            match step {
                EvolutionStep::Merge { left, right } => {
                    // Every working cluster that is wholly absorbed into the
                    // merged result participated in a merge evolution.  This
                    // covers the sides named by the step *and* pre-existing
                    // clusters that receive several new members at once
                    // (whose exact "other side" never exists as one working
                    // cluster).
                    let result: BTreeSet<ObjectId> = left.union(right).copied().collect();
                    for &o in &result {
                        let Some(cid) = working.cluster_of(o) else {
                            continue;
                        };
                        let cluster = working.cluster(cid).expect("live cluster id");
                        if cluster.len() < result.len() && cluster.members().is_subset(&result) {
                            merge_positive_ids.insert(cid);
                        }
                    }
                }
                EvolutionStep::Split { original, .. } => {
                    if let Some(cid) = find_cluster_with_members(working, original) {
                        split_positive_ids.insert(cid);
                    }
                }
            }
        }

        let mut out = RoundExamples::default();
        for cid in working.cluster_ids() {
            let is_merge_pos = merge_positive_ids.contains(&cid);
            let is_split_pos = split_positive_ids.contains(&cid);
            let mf = merge_features(&agg, cid).to_vec();
            let sf = split_features(&agg, cid).to_vec();
            let active = !agg.neighbour_clusters(cid).is_empty();

            if is_merge_pos {
                out.merge_positives.push(mf);
            } else if active {
                out.merge_negatives_active.push(mf);
            } else {
                out.merge_negatives_inactive.push(mf);
            }

            if is_split_pos {
                out.split_positives.push(sf);
            } else if active {
                out.split_negatives_active.push(sf);
            } else {
                out.split_negatives_inactive.push(sf);
            }
        }
        out
    }

    /// Total number of positive examples (merge + split).
    pub fn positive_count(&self) -> usize {
        self.merge_positives.len() + self.split_positives.len()
    }

    /// Total number of negative candidates (merge + split, active + inactive).
    pub fn negative_candidate_count(&self) -> usize {
        self.merge_negatives_active.len()
            + self.merge_negatives_inactive.len()
            + self.split_negatives_active.len()
            + self.split_negatives_inactive.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::derive_transformation;
    use dc_similarity::fixtures::{figure1_old_clustering, figure2_clustering, figure2_graph};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// The working clustering of the Figure 1→2 round: the old clustering
    /// plus the two new objects as singletons.
    fn working_clustering() -> Clustering {
        let mut working = figure1_old_clustering();
        working.create_cluster([oid(6)]).unwrap();
        working.create_cluster([oid(7)]).unwrap();
        working
    }

    #[test]
    fn merge_features_of_figure_clusters() {
        let graph = figure2_graph();
        let working = working_clustering();
        let agg = ClusterAggregates::new(&graph, &working);

        let c1 = working.cluster_of(oid(1)).unwrap();
        let f = merge_features(&agg, c1);
        // C1 = {1,2,3}: intra avg 0.9; its strongest neighbour is the
        // singleton {7} through the r1–r7 edge (avg 1.0 / 3).
        assert!((f[0] - 0.9).abs() < 1e-9);
        assert!((f[1] - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(f[2], 3.0);
        assert_eq!(f[3], 1.0);

        let c7 = working.cluster_of(oid(7)).unwrap();
        let f7 = merge_features(&agg, c7);
        assert_eq!(f7[0], 1.0, "singletons are maximally cohesive");
        assert!((f7[1] - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(f7[2], 1.0);
        assert_eq!(f7[3], 3.0);
    }

    #[test]
    fn split_features_are_a_prefix_of_merge_features() {
        let graph = figure2_graph();
        let working = working_clustering();
        let agg = ClusterAggregates::new(&graph, &working);
        for cid in working.cluster_ids() {
            let m = merge_features(&agg, cid);
            let s = split_features(&agg, cid);
            assert_eq!(&m[..3], &s[..]);
        }
    }

    #[test]
    fn isolated_cluster_has_zero_inter_features() {
        let graph = figure2_graph();
        let clustering =
            Clustering::from_groups([vec![oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c45 = clustering.cluster_of(oid(4)).unwrap();
        let f = merge_features(&agg, c45);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[3], 0.0);
    }

    #[test]
    fn hypothetical_member_features_match_actual_cluster_when_it_exists() {
        let graph = figure2_graph();
        let working = working_clustering();
        let agg = ClusterAggregates::new(&graph, &working);
        let c1 = working.cluster_of(oid(1)).unwrap();
        let from_cluster = merge_features(&agg, c1);
        let members: BTreeSet<ObjectId> = [oid(1), oid(2), oid(3)].into_iter().collect();
        let from_members = merge_features_of_members(&graph, &working, &members);
        for i in 0..MERGE_FEATURE_DIM {
            assert!(
                (from_cluster[i] - from_members[i]).abs() < 1e-9,
                "feature {i}"
            );
        }
    }

    #[test]
    fn hypothetical_merged_cluster_features() {
        // Merging {7} into C1 = {1,2,3}: the new cluster has 4 members, its
        // intra average drops (edges 3×0.9 + 1×1.0 over 6 pairs), and it has
        // no remaining neighbours (r6 only connects to r5 in C2... which it
        // does, via the 0.7 edge? No: r5–r6 edge exists, but neither 5 nor 6
        // is in the hypothetical set, so C2 and {6} are still neighbours of
        // nothing in the set).  The hypothetical set {1,2,3,7} touches no
        // outside cluster, so f2 = f4 = 0.
        let graph = figure2_graph();
        let working = working_clustering();
        let members: BTreeSet<ObjectId> = [oid(1), oid(2), oid(3), oid(7)].into_iter().collect();
        let f = merge_features_of_members(&graph, &working, &members);
        assert!((f[0] - (3.0 * 0.9 + 1.0) / 6.0).abs() < 1e-9);
        assert_eq!(f[1], 0.0);
        assert_eq!(f[2], 4.0);
        assert_eq!(f[3], 0.0);
    }

    #[test]
    fn round_extraction_labels_figure_example_clusters() {
        let graph = figure2_graph();
        let old = figure1_old_clustering();
        let new = figure2_clustering();
        let working = working_clustering();
        let trace = derive_transformation(&old, &new, &[oid(6), oid(7)]);
        let examples = RoundExamples::extract(&graph, &working, &trace);

        // Positive merges: the singletons {6} and {7} (their Phase-1 merges
        // name them exactly), plus C2 = {4,5} (the right side of r6's merge).
        // C1 = {1,2,3} is a positive split.
        assert_eq!(examples.split_positives.len(), 1);
        assert!(examples.merge_positives.len() >= 2);
        assert_eq!(
            examples.positive_count(),
            examples.merge_positives.len() + examples.split_positives.len()
        );
        // Every cluster of the working clustering appears exactly once per
        // model.
        let merge_total = examples.merge_positives.len()
            + examples.merge_negatives_active.len()
            + examples.merge_negatives_inactive.len();
        assert_eq!(merge_total, working.cluster_count());
        let split_total = examples.split_positives.len()
            + examples.split_negatives_active.len()
            + examples.split_negatives_inactive.len();
        assert_eq!(split_total, working.cluster_count());
        // Feature dimensionalities.
        for f in examples
            .merge_positives
            .iter()
            .chain(&examples.merge_negatives_active)
            .chain(&examples.merge_negatives_inactive)
        {
            assert_eq!(f.len(), MERGE_FEATURE_DIM);
        }
        for f in examples
            .split_positives
            .iter()
            .chain(&examples.split_negatives_active)
            .chain(&examples.split_negatives_inactive)
        {
            assert_eq!(f.len(), SPLIT_FEATURE_DIM);
        }
    }

    #[test]
    fn empty_trace_yields_only_negatives() {
        let graph = figure2_graph();
        let working = working_clustering();
        let examples = RoundExamples::extract(&graph, &working, &EvolutionTrace::new());
        assert_eq!(examples.positive_count(), 0);
        assert_eq!(
            examples.negative_candidate_count(),
            2 * working.cluster_count()
        );
    }

    #[test]
    fn labeled_example_holds_features_and_label() {
        let e = LabeledExample::new(vec![0.1, 0.2], true);
        assert_eq!(e.features.len(), 2);
        assert!(e.label);
    }
}
