//! Negative sampling and the bounded training buffer (§5.3).
//!
//! Positive examples are the clusters observed to merge or split.  Negative
//! examples are sampled from the (much larger) set of unchanged clusters:
//!
//! * "active" clusters — clusters connected to other clusters in the
//!   similarity graph — are sampled with higher weight (0.7 vs 0.3 by
//!   default) because the batch algorithm examines them more often;
//! * the number of negatives is balanced to the number of positives;
//! * old examples are retired once the training buffer exceeds its capacity,
//!   because stale evolution patterns lose relevance in a dynamic workload.

use crate::features::LabeledExample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration of the negative sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Probability mass assigned to the active-cluster pool.
    pub active_weight: f64,
    /// Probability mass assigned to the inactive-cluster pool.
    pub inactive_weight: f64,
    /// Seed for the internal RNG (sampling is fully deterministic per seed).
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        // The weights used in the paper's experiments (§5.3).
        SamplerConfig {
            active_weight: 0.7,
            inactive_weight: 0.3,
            seed: 0x5eed_cafe,
        }
    }
}

/// Weighted sampler over active / inactive negative candidate pools.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    config: SamplerConfig,
    rng: StdRng,
}

impl NegativeSampler {
    /// Create a sampler with the given configuration.
    pub fn new(config: SamplerConfig) -> Self {
        assert!(config.active_weight >= 0.0 && config.inactive_weight >= 0.0);
        assert!(
            config.active_weight + config.inactive_weight > 0.0,
            "at least one pool must have positive weight"
        );
        let rng = StdRng::seed_from_u64(config.seed);
        NegativeSampler { config, rng }
    }

    /// Sample (without replacement) up to `count` negative feature vectors
    /// from the two pools, preferring the active pool with probability
    /// `active_weight / (active_weight + inactive_weight)` per draw.
    pub fn sample(
        &mut self,
        active: &[Vec<f64>],
        inactive: &[Vec<f64>],
        count: usize,
    ) -> Vec<Vec<f64>> {
        let mut active_pool: Vec<&Vec<f64>> = active.iter().collect();
        let mut inactive_pool: Vec<&Vec<f64>> = inactive.iter().collect();
        let p_active =
            self.config.active_weight / (self.config.active_weight + self.config.inactive_weight);
        let mut out = Vec::with_capacity(count.min(active.len() + inactive.len()));
        while out.len() < count && (!active_pool.is_empty() || !inactive_pool.is_empty()) {
            let use_active = if active_pool.is_empty() {
                false
            } else if inactive_pool.is_empty() {
                true
            } else {
                self.rng.gen::<f64>() < p_active
            };
            let pool = if use_active {
                &mut active_pool
            } else {
                &mut inactive_pool
            };
            let idx = self.rng.gen_range(0..pool.len());
            out.push(pool.swap_remove(idx).clone());
        }
        out
    }
}

/// A bounded FIFO buffer of labeled training examples.
///
/// When the buffer exceeds its capacity the oldest examples are dropped — the
/// paper removes old samples "when the size of training data becomes too
/// large" because stale patterns stop being representative.
#[derive(Debug, Clone)]
pub struct TrainingBuffer {
    capacity: usize,
    examples: VecDeque<LabeledExample>,
}

impl TrainingBuffer {
    /// Create a buffer that retains at most `capacity` examples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TrainingBuffer {
            capacity,
            examples: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Number of stored examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of positive examples currently stored.
    pub fn positive_count(&self) -> usize {
        self.examples.iter().filter(|e| e.label).count()
    }

    /// Append one example, evicting the oldest if the buffer is full.
    pub fn push(&mut self, example: LabeledExample) {
        if self.examples.len() == self.capacity {
            self.examples.pop_front();
        }
        self.examples.push_back(example);
    }

    /// Append many examples.
    pub fn extend<I: IntoIterator<Item = LabeledExample>>(&mut self, examples: I) {
        for e in examples {
            self.push(e);
        }
    }

    /// Iterate over the stored examples (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &LabeledExample> {
        self.examples.iter()
    }

    /// Materialize the buffer as parallel `(features, labels)` vectors in the
    /// layout the classifiers in `dc-ml` consume.
    pub fn to_matrix(&self) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::with_capacity(self.examples.len());
        let mut ys = Vec::with_capacity(self.examples.len());
        for e in &self.examples {
            xs.push(e.features.clone());
            ys.push(e.label);
        }
        (xs, ys)
    }

    /// Remove every stored example.
    pub fn clear(&mut self) {
        self.examples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize, tag: f64) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![tag, i as f64]).collect()
    }

    #[test]
    fn sampler_balances_to_requested_count() {
        let mut s = NegativeSampler::new(SamplerConfig::default());
        let out = s.sample(&vecs(10, 1.0), &vecs(10, 2.0), 6);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn sampler_is_without_replacement() {
        let mut s = NegativeSampler::new(SamplerConfig::default());
        let active = vecs(5, 1.0);
        let inactive = vecs(5, 2.0);
        let out = s.sample(&active, &inactive, 10);
        assert_eq!(out.len(), 10);
        let mut sorted = out.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates drawn");
    }

    #[test]
    fn sampler_caps_at_pool_size() {
        let mut s = NegativeSampler::new(SamplerConfig::default());
        let out = s.sample(&vecs(2, 1.0), &vecs(1, 2.0), 10);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn sampler_prefers_active_pool() {
        let mut s = NegativeSampler::new(SamplerConfig {
            active_weight: 0.7,
            inactive_weight: 0.3,
            seed: 42,
        });
        // Draw many single samples from large pools and count provenance via
        // the tag in the first coordinate.
        let active = vecs(1000, 1.0);
        let inactive = vecs(1000, 2.0);
        let draws = s.sample(&active, &inactive, 600);
        let from_active = draws.iter().filter(|v| v[0] == 1.0).count() as f64;
        let fraction = from_active / draws.len() as f64;
        assert!(
            (0.6..0.8).contains(&fraction),
            "active fraction {fraction} not near 0.7"
        );
    }

    #[test]
    fn sampler_falls_back_when_one_pool_is_empty() {
        let mut s = NegativeSampler::new(SamplerConfig::default());
        let out = s.sample(&[], &vecs(4, 2.0), 3);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v[0] == 2.0));
        let out = s.sample(&vecs(4, 1.0), &[], 3);
        assert!(out.iter().all(|v| v[0] == 1.0));
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let config = SamplerConfig {
            seed: 7,
            ..SamplerConfig::default()
        };
        let mut a = NegativeSampler::new(config);
        let mut b = NegativeSampler::new(config);
        let active = vecs(20, 1.0);
        let inactive = vecs(20, 2.0);
        assert_eq!(
            a.sample(&active, &inactive, 10),
            b.sample(&active, &inactive, 10)
        );
    }

    #[test]
    #[should_panic]
    fn sampler_rejects_zero_total_weight() {
        NegativeSampler::new(SamplerConfig {
            active_weight: 0.0,
            inactive_weight: 0.0,
            seed: 0,
        });
    }

    #[test]
    fn buffer_evicts_oldest_when_full() {
        let mut buf = TrainingBuffer::new(3);
        for i in 0..5 {
            buf.push(LabeledExample::new(vec![i as f64], i % 2 == 0));
        }
        assert_eq!(buf.len(), 3);
        let firsts: Vec<f64> = buf.iter().map(|e| e.features[0]).collect();
        assert_eq!(firsts, vec![2.0, 3.0, 4.0]);
        assert_eq!(buf.capacity(), 3);
    }

    #[test]
    fn buffer_matrix_layout() {
        let mut buf = TrainingBuffer::new(10);
        buf.extend([
            LabeledExample::new(vec![1.0, 2.0], true),
            LabeledExample::new(vec![3.0, 4.0], false),
        ]);
        let (xs, ys) = buf.to_matrix();
        assert_eq!(xs, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(ys, vec![true, false]);
        assert_eq!(buf.positive_count(), 1);
        assert!(!buf.is_empty());
    }

    #[test]
    fn buffer_clear() {
        let mut buf = TrainingBuffer::new(2);
        buf.push(LabeledExample::new(vec![1.0], true));
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic]
    fn buffer_rejects_zero_capacity() {
        TrainingBuffer::new(0);
    }
}
