//! # dc-evolution
//!
//! Monitoring and representing *cluster evolution* — the historical signal
//! that DynamicC's machine-learning model is trained on.
//!
//! The DynamicC paper (§4–§5) builds its training data in four stages, each
//! of which is a module here:
//!
//! * [`ops`] — the evolution vocabulary: a change to a clustering is a
//!   sequence of **merge** and **split** steps, each involving exactly two
//!   clusters (§4.1 shows this is sufficient; moves are split + merge).
//!   [`ops::EvolutionTrace`] is an ordered list of such steps and can be
//!   replayed onto a clustering, which is how the tests validate that a
//!   derived trace really transforms the old clustering into the new one.
//! * [`transform`] — the cross-round derivation of §4.3: given the previous
//!   clustering, the new clustering produced by a batch run, and the set of
//!   objects touched in this round, produce a *small* list of merge/split
//!   steps that explains the difference (Phase 1 handles the touched
//!   objects, Phase 2 reconciles the old clusters, exactly as in
//!   Example 4.2).
//! * [`features`] — the feature vectors of §5.1/§5.2: average intra-cluster
//!   similarity, maximal average inter-cluster similarity, cluster size, and
//!   (for the merge model) the size of the most-attractive neighbour
//!   cluster; plus the conversion of an evolution trace into labeled merge
//!   and split examples.
//! * [`sampling`] — negative sampling (§5.3): unchanged clusters are
//!   candidate negatives, "active" clusters (those connected to other
//!   clusters in the similarity graph) are sampled with higher weight, the
//!   negative count is balanced against the positives, and a bounded
//!   training buffer retires the oldest examples.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod features;
pub mod ops;
pub mod sampling;
pub mod transform;

pub use features::{
    merge_features, merge_features_of_members, split_features, LabeledExample, RoundExamples,
    MERGE_FEATURE_DIM, SPLIT_FEATURE_DIM,
};
pub use ops::{EvolutionKind, EvolutionStep, EvolutionTrace};
pub use sampling::{NegativeSampler, SamplerConfig, TrainingBuffer};
pub use transform::derive_transformation;
