//! Evolution operations and traces (§4.1, §4.2).
//!
//! Every change a batch clustering algorithm makes to a clustering can be
//! expressed as a sequence of two-cluster **merge** steps and one-cluster
//! **split** steps.  A step stores the *member sets* of the clusters it
//! involves (not cluster ids): cluster ids are only meaningful inside one
//! clustering instance, while member sets stay meaningful across rounds,
//! which is what cross-round derivation and training need.

use dc_types::{Clustering, ObjectId, TypeError};
use std::collections::BTreeSet;

/// The two evolution operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvolutionKind {
    /// Two clusters become one.
    Merge,
    /// One cluster becomes two.
    Split,
}

impl std::fmt::Display for EvolutionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvolutionKind::Merge => write!(f, "merge"),
            EvolutionKind::Split => write!(f, "split"),
        }
    }
}

/// One evolution step involving at most two clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvolutionStep {
    /// Clusters `left` and `right` merge into `left ∪ right`.
    Merge {
        /// Members of the first cluster.
        left: BTreeSet<ObjectId>,
        /// Members of the second cluster.
        right: BTreeSet<ObjectId>,
    },
    /// Cluster `original` splits into `part` and `original ∖ part`.
    Split {
        /// Members of the cluster before the split.
        original: BTreeSet<ObjectId>,
        /// Members that leave to form a new cluster.
        part: BTreeSet<ObjectId>,
    },
}

impl EvolutionStep {
    /// Build a merge step from two member collections.
    pub fn merge<L, R>(left: L, right: R) -> Self
    where
        L: IntoIterator<Item = ObjectId>,
        R: IntoIterator<Item = ObjectId>,
    {
        EvolutionStep::Merge {
            left: left.into_iter().collect(),
            right: right.into_iter().collect(),
        }
    }

    /// Build a split step from the original members and the departing part.
    pub fn split<O, P>(original: O, part: P) -> Self
    where
        O: IntoIterator<Item = ObjectId>,
        P: IntoIterator<Item = ObjectId>,
    {
        EvolutionStep::Split {
            original: original.into_iter().collect(),
            part: part.into_iter().collect(),
        }
    }

    /// The kind of this step.
    pub fn kind(&self) -> EvolutionKind {
        match self {
            EvolutionStep::Merge { .. } => EvolutionKind::Merge,
            EvolutionStep::Split { .. } => EvolutionKind::Split,
        }
    }

    /// The members of the cluster(s) this step produces.
    ///
    /// For a merge this is the union of the two sides; for a split these are
    /// the two resulting member sets.
    pub fn results(&self) -> Vec<BTreeSet<ObjectId>> {
        match self {
            EvolutionStep::Merge { left, right } => {
                vec![left.union(right).copied().collect()]
            }
            EvolutionStep::Split { original, part } => {
                let rest: BTreeSet<ObjectId> = original.difference(part).copied().collect();
                vec![part.clone(), rest]
            }
        }
    }

    /// The member sets of the cluster(s) this step consumes.
    pub fn inputs(&self) -> Vec<BTreeSet<ObjectId>> {
        match self {
            EvolutionStep::Merge { left, right } => vec![left.clone(), right.clone()],
            EvolutionStep::Split { original, .. } => vec![original.clone()],
        }
    }

    /// Whether the step is structurally valid: merge sides are disjoint and
    /// non-empty; split part is a non-empty strict subset of the original.
    pub fn is_valid(&self) -> bool {
        match self {
            EvolutionStep::Merge { left, right } => {
                !left.is_empty() && !right.is_empty() && left.is_disjoint(right)
            }
            EvolutionStep::Split { original, part } => {
                !part.is_empty() && part.len() < original.len() && part.is_subset(original)
            }
        }
    }

    /// Apply the step to a clustering.  The clustering must currently contain
    /// clusters with exactly the member sets the step consumes.
    pub fn apply_to(&self, clustering: &mut Clustering) -> Result<(), TypeError> {
        match self {
            EvolutionStep::Merge { left, right } => {
                let a = find_cluster_with_members(clustering, left).ok_or_else(|| {
                    TypeError::InvariantViolation("merge: left cluster not found".into())
                })?;
                let b = find_cluster_with_members(clustering, right).ok_or_else(|| {
                    TypeError::InvariantViolation("merge: right cluster not found".into())
                })?;
                clustering.merge(a, b)?;
                Ok(())
            }
            EvolutionStep::Split { original, part } => {
                let cid = find_cluster_with_members(clustering, original).ok_or_else(|| {
                    TypeError::InvariantViolation("split: original cluster not found".into())
                })?;
                clustering.split(cid, part)?;
                Ok(())
            }
        }
    }
}

/// Find the cluster whose member set equals `members` exactly.
pub fn find_cluster_with_members(
    clustering: &Clustering,
    members: &BTreeSet<ObjectId>,
) -> Option<dc_types::ClusterId> {
    let first = members.iter().next()?;
    let cid = clustering.cluster_of(*first)?;
    let cluster = clustering.cluster(cid)?;
    if cluster.members() == members {
        Some(cid)
    } else {
        None
    }
}

/// An ordered list of evolution steps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvolutionTrace {
    steps: Vec<EvolutionStep>,
}

impl EvolutionTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a trace from a vector of steps.
    pub fn from_steps(steps: Vec<EvolutionStep>) -> Self {
        EvolutionTrace { steps }
    }

    /// Append a step.
    pub fn push(&mut self, step: EvolutionStep) {
        self.steps.push(step);
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[EvolutionStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of merge steps.
    pub fn merge_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.kind() == EvolutionKind::Merge)
            .count()
    }

    /// Number of split steps.
    pub fn split_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.kind() == EvolutionKind::Split)
            .count()
    }

    /// Append every step of another trace.
    pub fn extend(&mut self, other: EvolutionTrace) {
        self.steps.extend(other.steps);
    }

    /// Iterate over the steps.
    pub fn iter(&self) -> impl Iterator<Item = &EvolutionStep> {
        self.steps.iter()
    }
}

impl IntoIterator for EvolutionTrace {
    type Item = EvolutionStep;
    type IntoIter = std::vec::IntoIter<EvolutionStep>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn set(ids: &[u64]) -> BTreeSet<ObjectId> {
        ids.iter().map(|&i| oid(i)).collect()
    }

    #[test]
    fn step_constructors_and_kind() {
        let m = EvolutionStep::merge(set(&[1]), set(&[2, 3]));
        let s = EvolutionStep::split(set(&[1, 2, 3]), set(&[1]));
        assert_eq!(m.kind(), EvolutionKind::Merge);
        assert_eq!(s.kind(), EvolutionKind::Split);
        assert_eq!(EvolutionKind::Merge.to_string(), "merge");
        assert_eq!(EvolutionKind::Split.to_string(), "split");
    }

    #[test]
    fn merge_results_and_inputs() {
        let m = EvolutionStep::merge(set(&[1]), set(&[2, 3]));
        assert_eq!(m.results(), vec![set(&[1, 2, 3])]);
        assert_eq!(m.inputs(), vec![set(&[1]), set(&[2, 3])]);
    }

    #[test]
    fn split_results_and_inputs() {
        let s = EvolutionStep::split(set(&[1, 2, 3]), set(&[1]));
        assert_eq!(s.results(), vec![set(&[1]), set(&[2, 3])]);
        assert_eq!(s.inputs(), vec![set(&[1, 2, 3])]);
    }

    #[test]
    fn validity_checks() {
        assert!(EvolutionStep::merge(set(&[1]), set(&[2])).is_valid());
        assert!(!EvolutionStep::merge(set(&[1]), set(&[1, 2])).is_valid());
        assert!(!EvolutionStep::merge(set(&[]), set(&[2])).is_valid());
        assert!(EvolutionStep::split(set(&[1, 2]), set(&[1])).is_valid());
        assert!(!EvolutionStep::split(set(&[1, 2]), set(&[1, 2])).is_valid());
        assert!(!EvolutionStep::split(set(&[1, 2]), set(&[])).is_valid());
        assert!(!EvolutionStep::split(set(&[1, 2]), set(&[3])).is_valid());
    }

    #[test]
    fn apply_merge_to_clustering() {
        let mut c = Clustering::from_groups([vec![oid(1)], vec![oid(2), oid(3)]]).unwrap();
        EvolutionStep::merge(set(&[1]), set(&[2, 3]))
            .apply_to(&mut c)
            .unwrap();
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(3)));
    }

    #[test]
    fn apply_split_to_clustering() {
        let mut c = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        EvolutionStep::split(set(&[1, 2, 3]), set(&[1]))
            .apply_to(&mut c)
            .unwrap();
        assert_eq!(c.cluster_count(), 2);
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(2)));
    }

    #[test]
    fn apply_fails_when_cluster_is_missing() {
        let mut c = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        // {1} is not a cluster (it is part of {1,2}).
        let err = EvolutionStep::merge(set(&[1]), set(&[2]))
            .apply_to(&mut c)
            .unwrap_err();
        assert!(matches!(err, TypeError::InvariantViolation(_)));
    }

    #[test]
    fn find_cluster_with_members_exact_match_only() {
        let c = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        assert!(find_cluster_with_members(&c, &set(&[1, 2])).is_some());
        assert!(find_cluster_with_members(&c, &set(&[1])).is_none());
        assert!(find_cluster_with_members(&c, &set(&[])).is_none());
        assert!(find_cluster_with_members(&c, &set(&[99])).is_none());
    }

    #[test]
    fn trace_counts_and_replay() {
        let mut trace = EvolutionTrace::new();
        trace.push(EvolutionStep::merge(set(&[1]), set(&[2])));
        trace.push(EvolutionStep::merge(set(&[1, 2]), set(&[3])));
        trace.push(EvolutionStep::split(set(&[1, 2, 3]), set(&[3])));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.merge_count(), 2);
        assert_eq!(trace.split_count(), 1);
        assert!(!trace.is_empty());

        let mut c = Clustering::singletons([oid(1), oid(2), oid(3)]);
        for step in trace.iter() {
            step.apply_to(&mut c).unwrap();
        }
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(2)));
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(3)));
    }

    #[test]
    fn trace_extend_appends_steps() {
        let mut a = EvolutionTrace::from_steps(vec![EvolutionStep::merge(set(&[1]), set(&[2]))]);
        let b = EvolutionTrace::from_steps(vec![EvolutionStep::split(set(&[1, 2]), set(&[1]))]);
        a.extend(b);
        assert_eq!(a.len(), 2);
        let kinds: Vec<EvolutionKind> = a.into_iter().map(|s| s.kind()).collect();
        assert_eq!(kinds, vec![EvolutionKind::Merge, EvolutionKind::Split]);
    }
}
