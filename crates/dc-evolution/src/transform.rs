//! Cross-round transformation derivation (§4.3).
//!
//! When objects are added, removed, or updated, the batch algorithm is run
//! again and produces a *new* clustering.  Training must not learn the whole
//! from-scratch construction of the new clustering — only the *difference*
//! between the old clustering and the new one.  [`derive_transformation`]
//! produces a small list of merge/split steps explaining that difference,
//! following the two phases of the paper:
//!
//! * **Phase 1** — for every object touched in this round (only its latest
//!   change counts) that is present in the new clustering and does not end
//!   up alone, emit a merge step that joins the object to the rest of its
//!   final cluster.
//! * **Phase 2** — reconcile the old clusters: for every cluster referenced
//!   by a Phase-1 change (and every new cluster made of pre-existing
//!   objects) that does not exist exactly in the old clustering, split each
//!   overlapping old cluster into "the part that goes there" and "the rest",
//!   then merge the intersection pieces one by one (`n − 1` merges).
//!
//! The derived steps are *not* ordered for replay — the paper notes that
//! ordering is unnecessary because the model trains on each change
//! independently — but every individual step is structurally valid and the
//! tests check that the derivation reproduces Example 4.2 exactly.

use crate::ops::{EvolutionStep, EvolutionTrace};
use dc_types::{Clustering, ObjectId};
use std::collections::BTreeSet;

/// Derive the merge/split steps that explain the evolution from
/// `old_clustering` to `new_clustering`, given the ids touched (added,
/// removed, or updated) in this round.
pub fn derive_transformation(
    old_clustering: &Clustering,
    new_clustering: &Clustering,
    touched: &[ObjectId],
) -> EvolutionTrace {
    let mut trace = EvolutionTrace::new();
    let mut emitted: BTreeSet<EvolutionStepKey> = BTreeSet::new();
    let touched_set: BTreeSet<ObjectId> = touched.iter().copied().collect();

    // Objects that existed before this round and still exist: the "old
    // objects" of Phase 2.
    let old_objects: BTreeSet<ObjectId> = old_clustering
        .object_ids()
        .into_iter()
        .filter(|o| new_clustering.contains_object(*o) && !touched_set.contains(o))
        .collect();

    // ------------------------------------------------------------------
    // Phase 1: changes relevant to the touched objects.
    // ------------------------------------------------------------------
    // Targets that Phase 2 must reconcile: the "other side" of each Phase-1
    // merge, restricted to old objects.
    let mut phase2_targets: Vec<BTreeSet<ObjectId>> = Vec::new();

    for &o in &touched_set {
        let Some(cid) = new_clustering.cluster_of(o) else {
            // Removed object: its effect is visible only through the old
            // clusters it left behind, which Phase 2 reconciles below.
            continue;
        };
        let final_cluster = new_clustering
            .cluster(cid)
            .expect("cluster_of returned a live id");
        if final_cluster.len() <= 1 {
            // The object ends up alone: no merge evolution to learn.
            continue;
        }
        let rest: BTreeSet<ObjectId> = final_cluster.iter().filter(|&m| m != o).collect();
        let left: BTreeSet<ObjectId> = [o].into_iter().collect();
        let step = EvolutionStep::Merge {
            left: left.clone(),
            right: rest.clone(),
        };
        if emitted.insert(EvolutionStepKey::of(&step)) {
            trace.push(step);
        }
        // The rest of the final cluster, restricted to old objects, must be
        // explainable from the old clustering.
        let rest_old: BTreeSet<ObjectId> = rest
            .iter()
            .copied()
            .filter(|m| old_objects.contains(m))
            .collect();
        if !rest_old.is_empty() {
            phase2_targets.push(rest_old);
        }
    }

    // New clusters that consist purely of old objects can also have changed
    // (e.g. an old cluster split because one of its members was removed or
    // updated away).  Add them as Phase-2 targets too.
    for (_, cluster) in new_clustering.iter() {
        let members_old: BTreeSet<ObjectId> =
            cluster.iter().filter(|m| old_objects.contains(m)).collect();
        if members_old.is_empty() {
            continue;
        }
        phase2_targets.push(members_old);
    }

    // ------------------------------------------------------------------
    // Phase 2: reconcile the old clusters against each target member set.
    // ------------------------------------------------------------------
    for target in phase2_targets {
        if exists_in(old_clustering, &target) {
            // The target already exists exactly in the old clustering (like
            // {r4, r5} = C2 in Example 4.2): nothing to derive.
            continue;
        }
        // Old clusters overlapping the target.
        let mut overlapping: Vec<(BTreeSet<ObjectId>, BTreeSet<ObjectId>)> = Vec::new();
        let mut seen_clusters: BTreeSet<dc_types::ClusterId> = BTreeSet::new();
        for &o in &target {
            let Some(cid) = old_clustering.cluster_of(o) else {
                continue;
            };
            if !seen_clusters.insert(cid) {
                continue;
            }
            let old_members: BTreeSet<ObjectId> = old_clustering
                .cluster(cid)
                .expect("live cluster id")
                .iter()
                .collect();
            let intersection: BTreeSet<ObjectId> =
                old_members.intersection(&target).copied().collect();
            overlapping.push((old_members, intersection));
        }

        // Split each overlapping old cluster into (∩ target) and (rest),
        // unless the cluster is entirely contained in the target.
        let mut pieces: Vec<BTreeSet<ObjectId>> = Vec::new();
        for (old_members, intersection) in overlapping {
            if intersection.is_empty() {
                continue;
            }
            if intersection.len() < old_members.len() {
                let step = EvolutionStep::Split {
                    original: old_members,
                    part: intersection.clone(),
                };
                if emitted.insert(EvolutionStepKey::of(&step)) {
                    trace.push(step);
                }
            }
            pieces.push(intersection);
        }

        // Merge the intersection pieces one by one (n − 1 merges).
        if pieces.len() >= 2 {
            let mut accumulated = pieces[0].clone();
            for piece in pieces.into_iter().skip(1) {
                let step = EvolutionStep::Merge {
                    left: accumulated.clone(),
                    right: piece.clone(),
                };
                if emitted.insert(EvolutionStepKey::of(&step)) {
                    trace.push(step);
                }
                accumulated.extend(piece);
            }
        }
    }

    trace
}

/// Whether a cluster with exactly these members exists in the clustering.
fn exists_in(clustering: &Clustering, members: &BTreeSet<ObjectId>) -> bool {
    crate::ops::find_cluster_with_members(clustering, members).is_some()
}

/// Canonical, order-independent key of a step for deduplication.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct EvolutionStepKey {
    kind: u8,
    a: Vec<ObjectId>,
    b: Vec<ObjectId>,
}

impl EvolutionStepKey {
    fn of(step: &EvolutionStep) -> Self {
        match step {
            EvolutionStep::Merge { left, right } => {
                let mut a: Vec<ObjectId> = left.iter().copied().collect();
                let mut b: Vec<ObjectId> = right.iter().copied().collect();
                // Merges are symmetric.
                if b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                EvolutionStepKey { kind: 0, a, b }
            }
            EvolutionStep::Split { original, part } => {
                // A split is identified by the unordered pair of resulting
                // sides: splitting {1,2,3} "at {1}" and "at {2,3}" is the
                // same structural change.
                let rest: Vec<ObjectId> = original.difference(part).copied().collect();
                let part: Vec<ObjectId> = part.iter().copied().collect();
                let (a, b) = if part <= rest {
                    (part, rest)
                } else {
                    (rest, part)
                };
                EvolutionStepKey { kind: 1, a, b }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::EvolutionKind;
    use dc_similarity::fixtures::{figure1_old_clustering, figure2_clustering};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn set(ids: &[u64]) -> BTreeSet<ObjectId> {
        ids.iter().map(|&i| oid(i)).collect()
    }

    /// Example 4.2: the derivation from Figure 1's old clustering to
    /// Figure 2's new clustering must produce exactly the three changes of
    /// the paper (modulo merge-side orientation and ordering):
    ///   1. r7 merges with r1 (forming C'3),
    ///   2. r6 merges with {r4, r5} (forming C'2),
    ///   3. C1 splits into {r1} and {r2, r3}.
    #[test]
    fn example_4_2_is_reproduced() {
        let old = figure1_old_clustering();
        let new = figure2_clustering();
        let trace = derive_transformation(&old, &new, &[oid(6), oid(7)]);

        assert_eq!(trace.merge_count(), 2, "trace = {:?}", trace.steps());
        assert_eq!(trace.split_count(), 1, "trace = {:?}", trace.steps());

        let has_merge = |a: &BTreeSet<ObjectId>, b: &BTreeSet<ObjectId>| {
            trace.iter().any(|s| match s {
                EvolutionStep::Merge { left, right } => {
                    (left == a && right == b) || (left == b && right == a)
                }
                _ => false,
            })
        };
        assert!(has_merge(&set(&[7]), &set(&[1])), "change 1 missing");
        assert!(has_merge(&set(&[6]), &set(&[4, 5])), "change 2 missing");
        assert!(
            trace.iter().any(|s| matches!(
                s,
                EvolutionStep::Split { original, part }
                    if *original == set(&[1, 2, 3]) && (*part == set(&[1]) || *part == set(&[2, 3]))
            )),
            "change 3 missing"
        );
        for step in trace.iter() {
            assert!(step.is_valid(), "invalid step: {step:?}");
        }
    }

    #[test]
    fn unchanged_clustering_produces_no_steps() {
        let old = figure1_old_clustering();
        let trace = derive_transformation(&old, &old, &[]);
        assert!(trace.is_empty());
    }

    #[test]
    fn added_singleton_produces_no_steps() {
        // A new object that ends up in its own cluster is not an evolution.
        let old = figure1_old_clustering();
        let mut new = old.clone();
        new.create_cluster([oid(10)]).unwrap();
        let trace = derive_transformation(&old, &new, &[oid(10)]);
        assert!(trace.is_empty());
    }

    #[test]
    fn added_object_joining_existing_cluster_produces_one_merge() {
        let old = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        let new = Clustering::from_groups([vec![oid(1), oid(2), oid(10)], vec![oid(3)]]).unwrap();
        let trace = derive_transformation(&old, &new, &[oid(10)]);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.steps()[0].kind(), EvolutionKind::Merge);
        assert_eq!(
            trace.steps()[0],
            EvolutionStep::merge(set(&[10]), set(&[1, 2]))
        );
    }

    #[test]
    fn removal_that_splits_a_cluster_produces_split_steps() {
        // Old: {1,2,3} where 2 bridged 1 and 3; removing 2 makes the batch
        // algorithm split the survivors into {1} and {3}.
        let old = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        let new = Clustering::from_groups([vec![oid(1)], vec![oid(3)]]).unwrap();
        let trace = derive_transformation(&old, &new, &[oid(2)]);
        assert!(trace.split_count() >= 1, "trace = {:?}", trace.steps());
        assert_eq!(trace.merge_count(), 0);
        for step in trace.iter() {
            assert!(step.is_valid());
        }
    }

    #[test]
    fn merge_of_two_old_clusters_triggered_by_update() {
        // Updating object 3 makes it similar to cluster {1,2}; the batch
        // result merges the two old clusters.
        let old = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let new = Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let trace = derive_transformation(&old, &new, &[oid(3)]);
        // Phase 1: {3} merges with {1,2,4}.  Phase 2: {1,2,4} does not exist
        // in the old clustering, so C_old(3,4) splits into {4}/{3} and the
        // pieces {1,2} and {4} merge.
        assert!(trace.merge_count() >= 1);
        assert!(trace
            .iter()
            .any(|s| matches!(s, EvolutionStep::Merge { left, .. } if *left == set(&[3]))));
        for step in trace.iter() {
            assert!(step.is_valid());
        }
    }

    #[test]
    fn old_cluster_reshuffle_without_touched_objects_is_detected() {
        // Even when no touched object is involved, a new cluster made of old
        // objects that does not match any old cluster must be explained.
        let old = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let new = Clustering::from_groups([vec![oid(1), oid(3)], vec![oid(2), oid(4)]]).unwrap();
        let trace = derive_transformation(&old, &new, &[]);
        assert!(trace.split_count() >= 2);
        assert!(trace.merge_count() >= 1);
        for step in trace.iter() {
            assert!(step.is_valid());
        }
    }

    #[test]
    fn steps_are_deduplicated() {
        // Two touched objects joining the same final cluster reference the
        // same Phase-2 target; the split of the old cluster must appear once.
        let old = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        let new = Clustering::from_groups([vec![oid(1), oid(10), oid(11)], vec![oid(2), oid(3)]])
            .unwrap();
        let trace = derive_transformation(&old, &new, &[oid(10), oid(11)]);
        let split_steps: Vec<&EvolutionStep> = trace
            .iter()
            .filter(|s| s.kind() == EvolutionKind::Split)
            .collect();
        assert_eq!(split_steps.len(), 1, "trace = {:?}", trace.steps());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random old/new partitions over a small universe: every derived step
    /// must be structurally valid, and the trace must be empty when nothing
    /// changed.
    fn partition_strategy(n: u64, groups: u64) -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(0..groups, n as usize)
    }

    fn clustering_from(assignment: &[u64], present: &[bool]) -> Clustering {
        let mut groups: std::collections::BTreeMap<u64, Vec<ObjectId>> =
            std::collections::BTreeMap::new();
        for (i, (&g, &p)) in assignment.iter().zip(present).enumerate() {
            if p {
                groups
                    .entry(g)
                    .or_default()
                    .push(ObjectId::new(i as u64 + 1));
            }
        }
        Clustering::from_groups(groups.into_values().filter(|v| !v.is_empty())).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn derived_steps_are_always_valid(
            old_assign in partition_strategy(10, 4),
            new_assign in partition_strategy(10, 4),
            presence in proptest::collection::vec(proptest::bool::weighted(0.8), 10),
        ) {
            let all_present = vec![true; 10];
            let old = clustering_from(&old_assign, &all_present);
            let new = clustering_from(&new_assign, &presence);
            // Touched: objects that disappeared (removed) — a conservative
            // under-approximation that still must yield valid steps.
            let touched: Vec<ObjectId> = (0..10u64)
                .filter(|&i| !presence[i as usize])
                .map(|i| ObjectId::new(i + 1))
                .collect();
            let trace = derive_transformation(&old, &new, &touched);
            for step in trace.iter() {
                prop_assert!(step.is_valid(), "invalid step {:?}", step);
            }
        }

        #[test]
        fn identical_clusterings_need_no_steps(assign in partition_strategy(8, 3)) {
            let present = vec![true; 8];
            let c = clustering_from(&assign, &present);
            let trace = derive_transformation(&c, &c, &[]);
            prop_assert!(trace.is_empty());
        }
    }
}
