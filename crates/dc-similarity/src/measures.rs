//! Pairwise similarity measures over [`Record`]s.
//!
//! Table 1 of the paper associates each dataset with a similarity (or
//! distance) measure: Jaccard for Cora, cosine trigram similarity for
//! MusicBrainz, Euclidean distance for Amazon Access and 3D Road Network, and
//! Levenshtein + Jaccard for the Febrl synthetic dataset.  Each of those is
//! implemented here behind the [`SimilarityMeasure`] trait; all return values
//! lie in `[0, 1]`, with `1` meaning identical.

use crate::text;
use dc_types::Record;

/// A symmetric pairwise similarity in `[0, 1]`.
pub trait SimilarityMeasure: Send + Sync + CloneMeasure {
    /// Similarity between two records; must be symmetric and in `[0, 1]`.
    fn similarity(&self, a: &Record, b: &Record) -> f64;

    /// Human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// Defines an object-safe clone helper trait (`$helper::$method`) for a
/// boxed `dyn $object_trait`, blanket-implements it for every `Clone`
/// implementor, and makes `Box<dyn $object_trait>` itself `Clone`.  The
/// object trait must list `$helper` as a supertrait.
macro_rules! clone_boxed_trait {
    ($(#[$meta:meta])* $helper:ident :: $method:ident for $object_trait:ident) => {
        $(#[$meta])*
        pub trait $helper {
            /// Clone `self` into a new boxed trait object.
            fn $method(&self) -> Box<dyn $object_trait>;
        }

        impl<T: $object_trait + Clone + 'static> $helper for T {
            fn $method(&self) -> Box<dyn $object_trait> {
                Box::new(self.clone())
            }
        }

        impl Clone for Box<dyn $object_trait> {
            fn clone(&self) -> Self {
                self.$method()
            }
        }
    };
}
pub(crate) use clone_boxed_trait;

clone_boxed_trait! {
    /// Object-safe cloning for boxed measures, blanket-implemented for every
    /// `Clone` measure, so `Box<dyn SimilarityMeasure>` (and with it
    /// [`crate::GraphConfig`] / [`crate::SimilarityGraph`]) is `Clone`.
    CloneMeasure::clone_measure for SimilarityMeasure
}

/// Jaccard similarity over the records' lowercase token sets (Cora).
#[derive(Debug, Clone, Copy, Default)]
pub struct JaccardSimilarity;

impl SimilarityMeasure for JaccardSimilarity {
    fn similarity(&self, a: &Record, b: &Record) -> f64 {
        let ta = text::token_set(&a.full_text());
        let tb = text::token_set(&b.full_text());
        if ta.is_empty() && tb.is_empty() {
            // Two records without any text are only "identical" if neither has
            // a numeric payload either; otherwise they carry no evidence.
            return 0.0;
        }
        text::jaccard(&ta, &tb)
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Cosine similarity over character trigram bags (MusicBrainz).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrigramCosine;

impl SimilarityMeasure for TrigramCosine {
    fn similarity(&self, a: &Record, b: &Record) -> f64 {
        let fa = a.full_text();
        let fb = b.full_text();
        if fa.is_empty() && fb.is_empty() {
            return 0.0;
        }
        text::cosine_of_bags(&text::trigrams(&fa), &text::trigrams(&fb))
    }

    fn name(&self) -> &'static str {
        "trigram-cosine"
    }
}

/// Normalized Levenshtein similarity over the concatenated text (Febrl).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizedLevenshtein;

impl SimilarityMeasure for NormalizedLevenshtein {
    fn similarity(&self, a: &Record, b: &Record) -> f64 {
        let fa = a.full_text();
        let fb = b.full_text();
        if fa.is_empty() && fb.is_empty() {
            return 0.0;
        }
        text::normalized_levenshtein_similarity(&fa, &fb)
    }

    fn name(&self) -> &'static str {
        "normalized-levenshtein"
    }
}

/// Similarity derived from Euclidean distance between the records' numeric
/// feature vectors (Amazon Access, 3D Road Network):
/// `sim(a, b) = exp(−‖a − b‖ / scale)`.
///
/// The `scale` parameter controls how fast similarity decays with distance;
/// it should be chosen on the order of the typical intra-cluster distance of
/// the dataset (the generators in `dc-datagen` report a suitable value).
#[derive(Debug, Clone, Copy)]
pub struct EuclideanSimilarity {
    /// Distance at which similarity has decayed to `1/e`.
    pub scale: f64,
}

impl EuclideanSimilarity {
    /// Create a Euclidean similarity with the given decay scale.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        EuclideanSimilarity { scale }
    }

    /// Euclidean distance between two vectors, treating missing trailing
    /// dimensions as zero.
    pub fn distance(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().max(b.len());
        let mut sum = 0.0;
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            let d = x - y;
            sum += d * d;
        }
        sum.sqrt()
    }
}

impl Default for EuclideanSimilarity {
    fn default() -> Self {
        EuclideanSimilarity { scale: 1.0 }
    }
}

impl SimilarityMeasure for EuclideanSimilarity {
    fn similarity(&self, a: &Record, b: &Record) -> f64 {
        if a.vector().is_empty() && b.vector().is_empty() {
            return 0.0;
        }
        (-Self::distance(a.vector(), b.vector()) / self.scale).exp()
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Weighted combination of several measures (the synthetic Febrl dataset uses
/// "Levenshtein and Jaccard" in Table 1).
///
/// Weights are normalized internally, so `CompositeMeasure::new(vec![(m1, 1.0),
/// (m2, 1.0)])` averages the two components.
#[derive(Clone)]
pub struct CompositeMeasure {
    components: Vec<(Box<dyn SimilarityMeasure>, f64)>,
}

impl CompositeMeasure {
    /// Create a composite from `(measure, weight)` pairs.  Panics if no
    /// component is given or all weights are zero.
    pub fn new(components: Vec<(Box<dyn SimilarityMeasure>, f64)>) -> Self {
        assert!(
            !components.is_empty(),
            "composite needs at least one component"
        );
        let total: f64 = components.iter().map(|(_, w)| *w).sum();
        assert!(
            total > 0.0,
            "composite weights must sum to a positive value"
        );
        CompositeMeasure { components }
    }

    /// The standard Febrl-style combination: 50% normalized Levenshtein, 50%
    /// token Jaccard.
    pub fn febrl_default() -> Self {
        CompositeMeasure::new(vec![
            (Box::new(NormalizedLevenshtein), 0.5),
            (Box::new(JaccardSimilarity), 0.5),
        ])
    }
}

impl SimilarityMeasure for CompositeMeasure {
    fn similarity(&self, a: &Record, b: &Record) -> f64 {
        let total: f64 = self.components.iter().map(|(_, w)| *w).sum();
        self.components
            .iter()
            .map(|(m, w)| w * m.similarity(a, b))
            .sum::<f64>()
            / total
    }

    fn name(&self) -> &'static str {
        "composite"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_types::RecordBuilder;

    fn textual(s: &str) -> Record {
        RecordBuilder::new().text("text", s).build()
    }

    fn numeric(v: Vec<f64>) -> Record {
        RecordBuilder::new().vector(v).build()
    }

    #[test]
    fn jaccard_measure_matches_token_overlap() {
        let m = JaccardSimilarity;
        let a = textual("dynamic clustering systems");
        let b = textual("dynamic clustering methods");
        let s = m.similarity(&a, &b);
        assert!((s - 0.5).abs() < 1e-12, "got {s}");
        assert_eq!(m.similarity(&a, &a), 1.0);
        assert_eq!(m.similarity(&textual(""), &textual("")), 0.0);
        assert_eq!(m.name(), "jaccard");
    }

    #[test]
    fn trigram_cosine_rewards_shared_substrings() {
        let m = TrigramCosine;
        let a = textual("the beatles abbey road");
        let b = textual("the beatles abbey roas");
        let c = textual("completely different band");
        assert!(m.similarity(&a, &b) > 0.8);
        assert!(m.similarity(&a, &c) < m.similarity(&a, &b));
        assert!((m.similarity(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_levenshtein_measure() {
        let m = NormalizedLevenshtein;
        let a = textual("jonathan smith");
        let b = textual("jonathon smith");
        assert!(m.similarity(&a, &b) > 0.9);
        assert_eq!(m.similarity(&a, &a), 1.0);
    }

    #[test]
    fn euclidean_similarity_decays_with_distance() {
        let m = EuclideanSimilarity::new(1.0);
        let a = numeric(vec![0.0, 0.0]);
        let b = numeric(vec![0.0, 0.0]);
        let c = numeric(vec![3.0, 4.0]);
        assert!((m.similarity(&a, &b) - 1.0).abs() < 1e-12);
        assert!((m.similarity(&a, &c) - (-5.0f64).exp()).abs() < 1e-12);
        // Larger scale ⇒ slower decay ⇒ higher similarity.
        let wide = EuclideanSimilarity::new(10.0);
        assert!(wide.similarity(&a, &c) > m.similarity(&a, &c));
    }

    #[test]
    fn euclidean_distance_handles_length_mismatch() {
        assert!((EuclideanSimilarity::distance(&[1.0, 2.0], &[1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(EuclideanSimilarity::distance(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn euclidean_rejects_non_positive_scale() {
        EuclideanSimilarity::new(0.0);
    }

    #[test]
    fn composite_averages_components() {
        let m = CompositeMeasure::febrl_default();
        let a = textual("maria garcia");
        let b = textual("maria garcia");
        assert!((m.similarity(&a, &b) - 1.0).abs() < 1e-12);
        let lev = NormalizedLevenshtein.similarity(&a, &textual("mario garcia"));
        let jac = JaccardSimilarity.similarity(&a, &textual("mario garcia"));
        let combo = m.similarity(&a, &textual("mario garcia"));
        assert!((combo - 0.5 * (lev + jac)).abs() < 1e-12);
        assert_eq!(m.name(), "composite");
    }

    #[test]
    #[should_panic]
    fn composite_rejects_empty_component_list() {
        CompositeMeasure::new(vec![]);
    }

    #[test]
    fn all_measures_are_symmetric_on_samples() {
        let measures: Vec<Box<dyn SimilarityMeasure>> = vec![
            Box::new(JaccardSimilarity),
            Box::new(TrigramCosine),
            Box::new(NormalizedLevenshtein),
            Box::new(EuclideanSimilarity::new(2.0)),
        ];
        let records = vec![
            textual("alpha beta gamma"),
            textual("alpha delta"),
            numeric(vec![1.0, 2.0, 3.0]),
            numeric(vec![1.5, 2.5, 2.0]),
        ];
        for m in &measures {
            for a in &records {
                for b in &records {
                    let s1 = m.similarity(a, b);
                    let s2 = m.similarity(b, a);
                    assert!((s1 - s2).abs() < 1e-12, "{} not symmetric", m.name());
                    assert!((0.0..=1.0 + 1e-12).contains(&s1));
                }
            }
        }
    }
}
