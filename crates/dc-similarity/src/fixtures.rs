//! Small, fully controlled similarity graphs for tests, examples, and the
//! paper's running examples.
//!
//! Many components of the workspace — objectives, evolution extraction, the
//! merge/split algorithms — are most naturally tested against graphs whose
//! edge weights are chosen *exactly*.  [`graph_from_edges`] builds such a
//! graph, and [`figure1_graph`] / [`figure2_clustering`] reproduce the
//! motivating example of the paper (Figures 1 and 2) so that tests can check
//! against the numbers worked out in Example 4.1 and Example 4.2.

use crate::blocking::ExhaustiveBlocking;
use crate::graph::{GraphConfig, SimilarityGraph};
use crate::measures::SimilarityMeasure;
use dc_types::{Clustering, ObjectId, Record, RecordBuilder};
use std::collections::BTreeMap;

/// A similarity measure backed by an explicit edge table.
///
/// Records built by [`graph_from_edges`] carry their numeric id in an `id`
/// field; the measure looks the (unordered) pair up in the table and returns
/// the stored weight, or 0 when the pair is absent.
#[derive(Debug, Clone, Default)]
pub struct EdgeTableMeasure {
    table: BTreeMap<(u64, u64), f64>,
}

impl EdgeTableMeasure {
    /// Build a measure from `(a, b, similarity)` triples.
    pub fn from_edges(edges: &[(u64, u64, f64)]) -> Self {
        let mut table = BTreeMap::new();
        for &(a, b, s) in edges {
            let key = if a <= b { (a, b) } else { (b, a) };
            table.insert(key, s);
        }
        EdgeTableMeasure { table }
    }

    fn id_of(record: &Record) -> Option<u64> {
        record
            .field("id")
            .and_then(|f| f.as_number())
            .map(|x| x as u64)
    }
}

impl SimilarityMeasure for EdgeTableMeasure {
    fn similarity(&self, a: &Record, b: &Record) -> f64 {
        let (Some(ia), Some(ib)) = (Self::id_of(a), Self::id_of(b)) else {
            return 0.0;
        };
        if ia == ib {
            return 1.0;
        }
        let key = if ia <= ib { (ia, ib) } else { (ib, ia) };
        self.table.get(&key).copied().unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "edge-table"
    }
}

/// The record used for object `id` in a fixture graph.
pub fn fixture_record(id: u64) -> Record {
    RecordBuilder::new().number("id", id as f64).build()
}

/// Build a similarity graph over objects `1..=n_objects` with exactly the
/// given weighted edges (and no others).  Edges with weight 0 are dropped.
pub fn graph_from_edges(n_objects: u64, edges: &[(u64, u64, f64)]) -> SimilarityGraph {
    let measure = EdgeTableMeasure::from_edges(edges);
    let config = GraphConfig::new(Box::new(measure), Box::new(ExhaustiveBlocking::new()), 0.0);
    let mut graph = SimilarityGraph::empty(config);
    for id in 1..=n_objects {
        graph.add_object(ObjectId::new(id), fixture_record(id));
    }
    graph
}

/// The edge set of the paper's motivating example (Figures 1 and 2):
/// `r1–r2–r3` pairwise similar at 0.9, `r4–r5` at 0.8, `r5–r6` at 0.7, and
/// `r1–r7` at 1.0, giving `F(L1) = 0.9·3 + 0.8 + 0.7 + 1 = 5.2` under the
/// correlation objective when every object is a singleton (Example 4.1).
pub fn figure1_edges() -> Vec<(u64, u64, f64)> {
    vec![
        (1, 2, 0.9),
        (1, 3, 0.9),
        (2, 3, 0.9),
        (4, 5, 0.8),
        (5, 6, 0.7),
        (1, 7, 1.0),
    ]
}

/// The similarity graph of the motivating example over the *seven* objects of
/// Figure 2 (i.e. after `r6` and `r7` have arrived).
pub fn figure2_graph() -> SimilarityGraph {
    graph_from_edges(7, &figure1_edges())
}

/// The similarity graph of the "old clustering" stage of Figure 1: only the
/// first five objects exist.
pub fn figure1_graph() -> SimilarityGraph {
    graph_from_edges(5, &figure1_edges())
}

/// The "old clustering" of Figure 1: `C1 = {r1, r2, r3}`, `C2 = {r4, r5}`.
pub fn figure1_old_clustering() -> Clustering {
    Clustering::from_groups([
        vec![ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)],
        vec![ObjectId::new(4), ObjectId::new(5)],
    ])
    .expect("groups are disjoint and non-empty")
}

/// The "new clustering" of Figures 1 and 2 after `r6`, `r7` arrive:
/// `C'1 = {r2, r3}`, `C'2 = {r4, r5, r6}`, `C'3 = {r1, r7}`.
pub fn figure2_clustering() -> Clustering {
    Clustering::from_groups([
        vec![ObjectId::new(2), ObjectId::new(3)],
        vec![ObjectId::new(4), ObjectId::new(5), ObjectId::new(6)],
        vec![ObjectId::new(1), ObjectId::new(7)],
    ])
    .expect("groups are disjoint and non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_table_measure_lookup() {
        let m = EdgeTableMeasure::from_edges(&[(1, 2, 0.5)]);
        let a = fixture_record(1);
        let b = fixture_record(2);
        let c = fixture_record(3);
        assert_eq!(m.similarity(&a, &b), 0.5);
        assert_eq!(m.similarity(&b, &a), 0.5);
        assert_eq!(m.similarity(&a, &c), 0.0);
        assert_eq!(m.similarity(&a, &a), 1.0);
        assert_eq!(m.name(), "edge-table");
    }

    #[test]
    fn graph_from_edges_builds_expected_topology() {
        let g = figure2_graph();
        assert_eq!(g.object_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.similarity(ObjectId::new(1), ObjectId::new(7)), 1.0);
        assert_eq!(g.similarity(ObjectId::new(4), ObjectId::new(5)), 0.8);
        assert_eq!(g.similarity(ObjectId::new(3), ObjectId::new(4)), 0.0);
    }

    #[test]
    fn figure_clusterings_cover_the_right_objects() {
        let old = figure1_old_clustering();
        assert_eq!(old.cluster_count(), 2);
        assert_eq!(old.object_count(), 5);
        let new = figure2_clustering();
        assert_eq!(new.cluster_count(), 3);
        assert_eq!(new.object_count(), 7);
    }
}
