//! # dc-similarity
//!
//! The similarity substrate of the DynamicC reproduction.
//!
//! Every clustering algorithm in the workspace — the batch algorithms, the
//! incremental baselines, and DynamicC itself — consumes pairwise object
//! similarities through a single structure, the sparse [`SimilarityGraph`].
//! This crate provides:
//!
//! * [`measures`] — the similarity measures used by the paper's datasets
//!   (Table 1): Jaccard over tokens, cosine similarity over character
//!   trigrams, normalized Levenshtein, and a Euclidean-distance-derived
//!   similarity for numeric records, plus a weighted composite.
//! * [`text`] — tokenization, character n-grams, and edit distance.
//! * [`blocking`] — sub-quadratic candidate-pair generation (token blocking
//!   for textual data, grid blocking for numeric data) so that building the
//!   similarity graph does not require all `n·(n−1)/2` comparisons.
//! * [`graph`] — the sparse [`SimilarityGraph`] with incremental maintenance
//!   under add / remove / update operations.
//! * [`aggregates`] — the cluster-level quantities the paper's features and
//!   objectives are built from: average intra-cluster similarity, average
//!   inter-cluster similarity between cluster pairs, maximal inter-cluster
//!   similarity, and per-object cohesion weights.  The aggregates are an
//!   owned, materialized structure maintained *incrementally* (O(degree)
//!   per merge / split / move / workload operation) so the serving hot path
//!   never rebuilds them per candidate.
//! * [`router`] — the deterministic [`ShardRouter`] mapping records to
//!   shards via the blocking layer's canonical routing keys, so sharded
//!   serving partitions the objects the same way blocking groups them.
//! * [`boundary`] — the [`BoundaryIndex`] over each record's *full* block-key
//!   set, answering which cross-shard candidate pairs the per-shard graphs
//!   cannot see; the substrate of the cross-shard refinement pass.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod aggregates;
pub mod blocking;
pub mod boundary;
pub mod fixtures;
pub mod graph;
pub mod measures;
pub mod persist;
pub mod router;
pub mod text;

pub use aggregates::{full_build_count, BuildCounter, ClusterAggregates, FULL_BUILDS_COUNTER};
pub use blocking::{BlockingStrategy, GridBlocking, TokenBlocking};
pub use boundary::BoundaryIndex;
pub use graph::{GraphConfig, SimilarityGraph};
pub use measures::{
    CompositeMeasure, EuclideanSimilarity, JaccardSimilarity, NormalizedLevenshtein,
    SimilarityMeasure, TrigramCosine,
};
pub use persist::{AggregatesState, GraphState};
pub use router::{RoutedBatch, ShardRouter};
