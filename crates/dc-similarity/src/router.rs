//! Deterministic shard routing over blocking keys.
//!
//! The serving loop is embarrassingly partitionable: a shard is an
//! independent `Engine` over a subset of the objects, and a round is one
//! `apply_round` call per shard.  What makes the partition *useful* is that
//! objects likely to be similar should land in the same shard — which is
//! exactly the grouping the blocking layer already computes.  The
//! [`ShardRouter`] therefore derives each record's shard from the blocking
//! strategy's canonical routing key
//! ([`BlockingStrategy::shard_key`](crate::BlockingStrategy::shard_key)):
//! token-blocked records route by their smallest token, grid-blocked records
//! by their grid cell, so routing and blocking agree on what "close" means.
//!
//! Routing invariants (property-tested in `tests/router_props.rs`):
//!
//! * **total** — every record routes, and the result is `< n_shards`;
//! * **stable** — the router holds no mutable state, so the same record
//!   routes to the same shard on every call, regardless of what was added,
//!   updated, or removed before;
//! * **sticky per object** — [`ShardRouter::split_batch`] keeps every
//!   operation on a live object in the shard that owns the object, so an
//!   object lives in exactly one shard at all times and sub-batches are a
//!   permutation-free partition of the input batch.
//!
//! With a single shard every operation routes to shard 0 verbatim, which is
//! what makes a one-shard sharded engine bit-identical to an unsharded one.

use crate::blocking::BlockingStrategy;
use crate::boundary::BoundaryIndex;
use crate::graph::GraphConfig;
use dc_types::{ObjectId, Operation, OperationBatch, Record, MAX_SHARDS};
use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the workspace's dependency-free routing hash.
/// Stable across platforms and runs (no per-process seeding).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The fallback routing key used by blocking strategies without a natural
/// key of their own (e.g. exhaustive blocking): a content hash over the
/// record's text and the exact bits of its vector.
pub fn content_shard_key(record: &Record) -> u64 {
    let mut bytes = record.full_text().into_bytes();
    for &x in record.vector() {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

/// A deterministic, stateless record-to-shard routing function.
pub struct ShardRouter {
    n_shards: usize,
    blocking: Box<dyn BlockingStrategy>,
}

impl Clone for ShardRouter {
    fn clone(&self) -> Self {
        ShardRouter {
            n_shards: self.n_shards,
            blocking: self.blocking.clone_blocking(),
        }
    }
}

impl ShardRouter {
    /// Create a router over `n_shards` shards that derives routing keys from
    /// the given blocking strategy (an unused private copy; the router never
    /// indexes into it).
    pub fn new(n_shards: usize, blocking: Box<dyn BlockingStrategy>) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&n_shards),
            "shard count must be in 1..={MAX_SHARDS}, got {n_shards}"
        );
        let mut blocking = blocking;
        blocking.reset();
        ShardRouter { n_shards, blocking }
    }

    /// Create a router whose routing keys agree with the blocking strategy
    /// of a graph configuration.
    pub fn for_config(n_shards: usize, config: &GraphConfig) -> Self {
        ShardRouter::new(n_shards, config.blocking.clone_blocking())
    }

    /// Number of shards this router distributes over.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Route a record to its shard (total and stable; always `< n_shards`).
    pub fn route(&self, record: &Record) -> usize {
        (self.blocking.shard_key(record) % self.n_shards as u64) as usize
    }

    /// Route an operation on an object whose record is unknown (a remove of
    /// an id that is not currently assigned anywhere): a deterministic hash
    /// of the id.  Whatever shard receives it treats it as a no-op, but the
    /// choice must still be a pure function so replays split identically.
    pub fn route_id(&self, id: ObjectId) -> usize {
        (fnv1a(&id.raw().to_le_bytes()) % self.n_shards as u64) as usize
    }

    /// Split a batch into one sub-batch per shard, maintaining the
    /// object-to-shard assignment as the batch is walked in order:
    ///
    /// * operations on an **assigned** object go to the shard that owns it
    ///   (updates never migrate an object — the owning shard re-places it
    ///   internally, exactly like the unsharded engine treats an update);
    /// * an `Add` of an unassigned id routes by the record's blocking key
    ///   and claims the assignment; an `Update` of an unassigned id is an
    ///   add in disguise (§3.1) and does the same;
    /// * a `Remove` of an assigned id goes to the owning shard and releases
    ///   the assignment; a remove of an unknown id routes by id hash (a
    ///   no-op wherever it lands).
    ///
    /// Each operation is forwarded verbatim to exactly one sub-batch, and
    /// sub-batches preserve the input order, so the sub-batches form a
    /// permutation-free partition of the input.  With one shard, sub-batch 0
    /// *is* the input batch.
    pub fn split_batch(
        &self,
        batch: &OperationBatch,
        assignment: &mut BTreeMap<ObjectId, usize>,
    ) -> Vec<OperationBatch> {
        self.route_batch(batch, assignment).sub_batches
    }

    /// [`ShardRouter::split_batch`] plus the *per-operation routing report*:
    /// the shard each input operation was forwarded to, in input order.  The
    /// cross-shard refinement pass consumes this to replay the batch against
    /// its global view (re-keying each touched record under its owning
    /// shard) without re-deriving the sticky routing decisions.
    pub fn route_batch(
        &self,
        batch: &OperationBatch,
        assignment: &mut BTreeMap<ObjectId, usize>,
    ) -> RoutedBatch {
        let mut out = vec![OperationBatch::new(); self.n_shards];
        let mut op_shards = Vec::with_capacity(batch.len());
        for op in batch.iter() {
            let id = op.object_id();
            let shard = match (op, assignment.get(&id)) {
                (_, Some(&owner)) => owner,
                (Operation::Add { record, .. } | Operation::Update { record, .. }, None) => {
                    self.route(record)
                }
                (Operation::Remove { .. }, None) => self.route_id(id),
            };
            match op {
                Operation::Add { .. } | Operation::Update { .. } => {
                    assignment.insert(id, shard);
                }
                Operation::Remove { .. } => {
                    assignment.remove(&id);
                }
            }
            out[shard].push(op.clone());
            op_shards.push(shard);
        }
        RoutedBatch {
            sub_batches: out,
            op_shards,
        }
    }

    /// An empty [`BoundaryIndex`] deriving its keys from this router's
    /// blocking strategy, so boundary detection and routing agree on the key
    /// material.
    pub fn boundary_index(&self) -> BoundaryIndex {
        BoundaryIndex::new(self.blocking.clone_blocking())
    }
}

/// What [`ShardRouter::route_batch`] produced: the per-shard sub-batches and
/// the per-operation routing report.
#[derive(Debug)]
pub struct RoutedBatch {
    /// One sub-batch per shard — a permutation-free partition of the input
    /// (identical to [`ShardRouter::split_batch`]'s return value).
    pub sub_batches: Vec<OperationBatch>,
    /// The shard each input operation was forwarded to, in input order.
    pub op_shards: Vec<usize>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("n_shards", &self.n_shards)
            .field("key_source", &self.blocking.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{ExhaustiveBlocking, GridBlocking, TokenBlocking};
    use dc_types::RecordBuilder;

    fn textual(s: &str) -> Record {
        RecordBuilder::new().text("t", s).build()
    }

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"shard"), fnv1a(b"shard"));
    }

    #[test]
    fn token_routing_follows_the_smallest_token() {
        let router = ShardRouter::new(4, Box::new(TokenBlocking::new(0)));
        // Same smallest token -> same shard, independent of the other tokens.
        let a = router.route(&textual("alpha beta"));
        let b = router.route(&textual("alpha zeta omega"));
        assert_eq!(a, b);
        assert!(a < 4);
    }

    #[test]
    fn grid_routing_follows_the_cell() {
        let router = ShardRouter::new(4, Box::new(GridBlocking::new(1.0, 2)));
        let a = router.route(&RecordBuilder::new().vector(vec![0.2, 0.3]).build());
        let b = router.route(&RecordBuilder::new().vector(vec![0.7, 0.9]).build());
        assert_eq!(a, b, "same cell must route together");
    }

    #[test]
    fn one_shard_forwards_the_batch_verbatim() {
        let router = ShardRouter::new(1, Box::new(ExhaustiveBlocking::new()));
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(1),
            record: textual("x"),
        });
        batch.push(Operation::Remove { id: oid(9) });
        batch.push(Operation::Update {
            id: oid(1),
            record: textual("y"),
        });
        let mut assignment = BTreeMap::new();
        let subs = router.split_batch(&batch, &mut assignment);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0], batch);
        assert_eq!(assignment.get(&oid(1)), Some(&0));
    }

    #[test]
    fn operations_stick_to_the_owning_shard() {
        let router = ShardRouter::new(8, Box::new(TokenBlocking::new(0)));
        let mut assignment = BTreeMap::new();
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(1),
            record: textual("alpha"),
        });
        let subs = router.split_batch(&batch, &mut assignment);
        let owner = assignment[&oid(1)];
        assert_eq!(subs[owner].len(), 1);

        // An update whose content would route elsewhere stays with the owner.
        let mut batch2 = OperationBatch::new();
        batch2.push(Operation::Update {
            id: oid(1),
            record: textual("zzz completely different"),
        });
        let subs2 = router.split_batch(&batch2, &mut assignment);
        assert_eq!(subs2[owner].len(), 1);
        assert_eq!(assignment[&oid(1)], owner);

        // A remove goes to the owner and releases the assignment.
        let mut batch3 = OperationBatch::new();
        batch3.push(Operation::Remove { id: oid(1) });
        let subs3 = router.split_batch(&batch3, &mut assignment);
        assert_eq!(subs3[owner].len(), 1);
        assert!(!assignment.contains_key(&oid(1)));
    }

    #[test]
    #[should_panic]
    fn zero_shards_are_rejected() {
        ShardRouter::new(0, Box::new(ExhaustiveBlocking::new()));
    }
}
