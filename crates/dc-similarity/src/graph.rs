//! The sparse similarity graph.
//!
//! The paper represents the relationships between objects as a weighted
//! graph: an edge between two objects carries their similarity score, and the
//! absence of an edge represents non-similarity (Figure 1).  The
//! [`SimilarityGraph`] materializes exactly that: edges are stored only for
//! pairs whose similarity reaches a configurable threshold, and the graph is
//! maintained *incrementally* as objects are added, removed, and updated —
//! which is what makes the dynamic algorithms cheap relative to recomputing
//! all pairwise similarities.
//!
//! The graph owns a copy of each object's [`Record`] so that it can compute
//! similarities for new candidate pairs without holding a borrow of the
//! [`Dataset`].

use crate::blocking::BlockingStrategy;
use crate::measures::SimilarityMeasure;
use dc_types::{Dataset, ObjectId, Operation, OperationBatch, Record};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for building a [`SimilarityGraph`].
#[derive(Clone)]
pub struct GraphConfig {
    /// Pairwise similarity measure.
    pub measure: Box<dyn SimilarityMeasure>,
    /// Candidate-pair generation strategy.
    pub blocking: Box<dyn BlockingStrategy>,
    /// Minimum similarity for an edge to be stored.  Pairs below the
    /// threshold are treated as similarity 0 by every consumer.
    pub edge_threshold: f64,
}

impl GraphConfig {
    /// Create a configuration from its parts.
    pub fn new(
        measure: Box<dyn SimilarityMeasure>,
        blocking: Box<dyn BlockingStrategy>,
        edge_threshold: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&edge_threshold),
            "edge threshold must be in [0, 1]"
        );
        GraphConfig {
            measure,
            blocking,
            edge_threshold,
        }
    }

    /// Token-Jaccard configuration for textual record-linkage datasets
    /// (Cora-like): Jaccard similarity, token blocking, given threshold.
    pub fn textual_jaccard(edge_threshold: f64) -> Self {
        GraphConfig::new(
            Box::new(crate::measures::JaccardSimilarity),
            Box::new(crate::blocking::TokenBlocking::new(256)),
            edge_threshold,
        )
    }

    /// Trigram-cosine configuration for textual datasets (MusicBrainz-like).
    pub fn textual_trigram(edge_threshold: f64) -> Self {
        GraphConfig::new(
            Box::new(crate::measures::TrigramCosine),
            Box::new(crate::blocking::TokenBlocking::new(256)),
            edge_threshold,
        )
    }

    /// Febrl-style composite (Levenshtein + Jaccard) configuration.
    pub fn textual_febrl(edge_threshold: f64) -> Self {
        GraphConfig::new(
            Box::new(crate::measures::CompositeMeasure::febrl_default()),
            Box::new(crate::blocking::TokenBlocking::new(256)),
            edge_threshold,
        )
    }

    /// Euclidean configuration for numeric datasets (Access/Road-like).
    ///
    /// `scale` is the similarity decay scale; `cell_width` the grid-blocking
    /// cell width (typically a small multiple of `scale`); `dims` the number
    /// of leading vector dimensions used for blocking.
    pub fn numeric_euclidean(
        scale: f64,
        cell_width: f64,
        dims: usize,
        edge_threshold: f64,
    ) -> Self {
        GraphConfig::new(
            Box::new(crate::measures::EuclideanSimilarity::new(scale)),
            Box::new(crate::blocking::GridBlocking::new(cell_width, dims)),
            edge_threshold,
        )
    }

    /// Exact (exhaustive) configuration with a caller-supplied measure; used
    /// in tests and for small datasets where blocking recall matters.
    pub fn exhaustive(measure: Box<dyn SimilarityMeasure>, edge_threshold: f64) -> Self {
        GraphConfig::new(
            measure,
            Box::new(crate::blocking::ExhaustiveBlocking::new()),
            edge_threshold,
        )
    }
}

/// A dynamically maintained, thresholded, undirected similarity graph.
#[derive(Clone)]
pub struct SimilarityGraph {
    config: GraphConfig,
    records: BTreeMap<ObjectId, Record>,
    /// Symmetric adjacency: `adj[a][b] == adj[b][a] == sim(a, b)`.
    adj: BTreeMap<ObjectId, BTreeMap<ObjectId, f64>>,
    edge_count: usize,
    comparisons: u64,
}

impl SimilarityGraph {
    /// Create an empty graph with the given configuration.
    ///
    /// The configuration's blocking index is reset on adoption: a config
    /// cloned off a live graph (e.g. [`SimilarityGraph::config`]) carries
    /// that graph's index, and inheriting it would corrupt candidate
    /// generation — the empty graph's index must describe the empty graph.
    pub fn empty(mut config: GraphConfig) -> Self {
        config.blocking.reset();
        SimilarityGraph {
            config,
            records: BTreeMap::new(),
            adj: BTreeMap::new(),
            edge_count: 0,
            comparisons: 0,
        }
    }

    /// Build a graph over every object of a dataset.
    pub fn build(config: GraphConfig, dataset: &Dataset) -> Self {
        let mut graph = SimilarityGraph::empty(config);
        for (id, record) in dataset.iter() {
            graph.add_object(id, record.clone());
        }
        graph
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// Number of objects in the graph.
    pub fn object_count(&self) -> usize {
        self.records.len()
    }

    /// Number of (undirected) edges at or above the threshold.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of pairwise similarity computations performed so far (a cheap
    /// proxy for work done; used by the benchmark harness).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Whether the object is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.records.contains_key(&id)
    }

    /// The stored record of an object.
    pub fn record(&self, id: ObjectId) -> Option<&Record> {
        self.records.get(&id)
    }

    /// All object ids in the graph, in id order.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.records.keys().copied().collect()
    }

    /// Iterate over the neighbours of `id` with their similarity scores.
    /// Objects with no stored edges yield an empty iterator.
    pub fn neighbors(&self, id: ObjectId) -> impl Iterator<Item = (ObjectId, f64)> + '_ {
        self.adj
            .get(&id)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&o, &s)| (o, s)))
    }

    /// Number of neighbours of `id`.
    pub fn degree(&self, id: ObjectId) -> usize {
        self.adj.get(&id).map_or(0, BTreeMap::len)
    }

    /// Stored similarity between two objects (0 when below threshold, when
    /// either object is unknown, or when `a == b`; identical objects do not
    /// need an edge).
    pub fn similarity(&self, a: ObjectId, b: ObjectId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.adj
            .get(&a)
            .and_then(|m| m.get(&b))
            .copied()
            .unwrap_or(0.0)
    }

    /// Compute the similarity of two records with the configured measure
    /// (bypassing the threshold and the stored edges).
    pub fn raw_similarity(&self, a: &Record, b: &Record) -> f64 {
        self.config.measure.similarity(a, b)
    }

    /// The edge threshold.
    pub fn edge_threshold(&self) -> f64 {
        self.config.edge_threshold
    }

    /// The full configuration (measure, blocking, threshold).  Cloning it
    /// yields a config equivalent to the one the graph was built with —
    /// which is exactly what [`SimilarityGraph::import_state`] needs to
    /// reconstruct a snapshotted graph.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Iterate over every stored edge exactly once, as `(a, b, similarity)`
    /// triples with `a < b`, in lexicographic order.  This is the canonical
    /// edge enumeration used by snapshotting and by consumers that need each
    /// unordered pair once.
    pub fn edges(&self) -> impl Iterator<Item = (ObjectId, ObjectId, f64)> + '_ {
        self.adj.iter().flat_map(|(&a, neigh)| {
            neigh
                .iter()
                .filter(move |(&b, _)| b > a)
                .map(move |(&b, &s)| (a, b, s))
        })
    }

    /// The connected components of the graph (isolated objects form their own
    /// components).  Components are the "natural" candidate entity groups and
    /// are used to identify *active* clusters during negative sampling (§5.3).
    pub fn connected_components(&self) -> Vec<BTreeSet<ObjectId>> {
        let mut visited: BTreeSet<ObjectId> = BTreeSet::new();
        let mut components = Vec::new();
        for &start in self.records.keys() {
            if visited.contains(&start) {
                continue;
            }
            let mut component = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                if !visited.insert(node) {
                    continue;
                }
                component.insert(node);
                if let Some(neigh) = self.adj.get(&node) {
                    for &n in neigh.keys() {
                        if !visited.contains(&n) {
                            stack.push(n);
                        }
                    }
                }
            }
            components.push(component);
        }
        components
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    /// Add an object and connect it to every candidate whose similarity
    /// reaches the threshold.  Adding an id that already exists replaces it
    /// (equivalent to [`SimilarityGraph::update_object`]).
    pub fn add_object(&mut self, id: ObjectId, record: Record) {
        if self.records.contains_key(&id) {
            self.remove_object(id);
        }
        let candidates = self.config.blocking.candidates(&record);
        self.config.blocking.index(id, &record);
        let mut edges: Vec<(ObjectId, f64)> = Vec::new();
        for cand in candidates {
            if cand == id {
                continue;
            }
            let Some(other) = self.records.get(&cand) else {
                continue;
            };
            self.comparisons += 1;
            let sim = self.config.measure.similarity(&record, other);
            if sim >= self.config.edge_threshold && sim > 0.0 {
                edges.push((cand, sim));
            }
        }
        self.records.insert(id, record);
        self.adj.entry(id).or_default();
        for (other, sim) in edges {
            self.adj.entry(id).or_default().insert(other, sim);
            self.adj.entry(other).or_default().insert(id, sim);
            self.edge_count += 1;
        }
    }

    /// Remove an object and all of its edges.  Unknown ids are ignored.
    pub fn remove_object(&mut self, id: ObjectId) {
        let Some(record) = self.records.remove(&id) else {
            return;
        };
        self.config.blocking.unindex(id, &record);
        if let Some(neighbors) = self.adj.remove(&id) {
            self.edge_count -= neighbors.len();
            for (other, _) in neighbors {
                if let Some(m) = self.adj.get_mut(&other) {
                    m.remove(&id);
                }
            }
        }
    }

    /// Replace an object's record and recompute its edges.
    pub fn update_object(&mut self, id: ObjectId, record: Record) {
        self.remove_object(id);
        self.add_object(id, record);
    }

    /// Apply one dynamic-workload operation.
    pub fn apply_operation(&mut self, op: &Operation) {
        match op {
            Operation::Add { id, record } => self.add_object(*id, record.clone()),
            Operation::Remove { id } => self.remove_object(*id),
            Operation::Update { id, record } => self.update_object(*id, record.clone()),
        }
    }

    /// Apply every operation of a batch, in order.
    pub fn apply_batch(&mut self, batch: &OperationBatch) {
        for op in batch.iter() {
            self.apply_operation(op);
        }
    }

    /// The candidate ids the blocking strategy would propose for `record`
    /// against the current index — exactly the set
    /// [`SimilarityGraph::add_object`] would compare against (possibly
    /// including dead ids or the queried id itself; callers filter).
    pub fn candidate_ids(&self, record: &Record) -> BTreeSet<ObjectId> {
        self.config.blocking.candidates(record)
    }

    // ------------------------------------------------------------------
    // Mirror maintenance (similarities supplied by the caller)
    // ------------------------------------------------------------------

    /// Install a record **without computing any similarity** and without
    /// touching the comparison counter.  Returns `false` (and does nothing)
    /// when the id is already present.
    ///
    /// This is the *mirror* maintenance hook: the cross-shard refinement
    /// layer keeps a global union graph whose records and edge weights are
    /// copied verbatim from the per-shard graphs (which already paid for the
    /// similarity computations), so the mirror must never recompute or
    /// re-count work.  Pair with [`SimilarityGraph::install_edge`].
    pub fn install_record(&mut self, id: ObjectId, record: Record) -> bool {
        if self.records.contains_key(&id) {
            return false;
        }
        self.restore_record(id, record);
        true
    }

    /// Install an edge with a caller-supplied similarity (both directions),
    /// without computing or counting anything.  Returns `false` when the
    /// edge already exists.  Both endpoints must be present.
    pub fn install_edge(&mut self, a: ObjectId, b: ObjectId, sim: f64) -> bool {
        assert!(
            a != b && self.records.contains_key(&a) && self.records.contains_key(&b),
            "install_edge requires two distinct live endpoints"
        );
        self.restore_edge(a, b, sim)
    }

    // ------------------------------------------------------------------
    // Snapshot restoration (see `persist`)
    // ------------------------------------------------------------------

    /// Install a record without computing any similarity, indexing it into
    /// the blocking strategy.  Returns the previous record if the id was
    /// already present (which import treats as corruption).
    pub(crate) fn restore_record(&mut self, id: ObjectId, record: Record) -> Option<Record> {
        self.config.blocking.index(id, &record);
        self.adj.entry(id).or_default();
        self.records.insert(id, record)
    }

    /// Install a stored edge verbatim (both directions).  Returns false when
    /// the edge already exists.
    pub(crate) fn restore_edge(&mut self, a: ObjectId, b: ObjectId, sim: f64) -> bool {
        if self.adj.get(&a).is_some_and(|m| m.contains_key(&b)) {
            return false;
        }
        self.adj.entry(a).or_default().insert(b, sim);
        self.adj.entry(b).or_default().insert(a, sim);
        self.edge_count += 1;
        true
    }

    /// Restore the comparison counter recorded in a snapshot.
    pub(crate) fn restore_comparisons(&mut self, comparisons: u64) {
        self.comparisons = comparisons;
    }
}

impl std::fmt::Debug for SimilarityGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimilarityGraph")
            .field("objects", &self.object_count())
            .field("edges", &self.edge_count())
            .field("threshold", &self.config.edge_threshold)
            .field("measure", &self.config.measure.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_types::RecordBuilder;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn textual(s: &str) -> Record {
        RecordBuilder::new().text("t", s).build()
    }

    fn numeric(v: Vec<f64>) -> Record {
        RecordBuilder::new().vector(v).build()
    }

    fn textual_graph() -> SimilarityGraph {
        let mut ds = Dataset::new();
        ds.insert_with_id(oid(1), textual("dynamic clustering for databases"))
            .unwrap();
        ds.insert_with_id(oid(2), textual("dynamic clustering for streams"))
            .unwrap();
        ds.insert_with_id(oid(3), textual("totally unrelated subject"))
            .unwrap();
        SimilarityGraph::build(GraphConfig::textual_jaccard(0.3), &ds)
    }

    #[test]
    fn build_creates_edges_above_threshold_only() {
        let g = textual_graph();
        assert_eq!(g.object_count(), 3);
        assert!(g.similarity(oid(1), oid(2)) > 0.3);
        assert_eq!(g.similarity(oid(1), oid(3)), 0.0);
        assert_eq!(g.similarity(oid(1), oid(1)), 0.0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.comparisons() > 0);
    }

    #[test]
    fn similarity_is_symmetric_in_storage() {
        let g = textual_graph();
        assert_eq!(g.similarity(oid(1), oid(2)), g.similarity(oid(2), oid(1)));
        assert_eq!(g.degree(oid(1)), 1);
        assert_eq!(g.degree(oid(3)), 0);
    }

    #[test]
    fn add_and_remove_maintain_edges() {
        let mut g = textual_graph();
        g.add_object(oid(4), textual("dynamic clustering approaches"));
        assert!(g.similarity(oid(4), oid(1)) > 0.0);
        assert!(g.similarity(oid(4), oid(2)) > 0.0);
        let edges_before = g.edge_count();
        g.remove_object(oid(4));
        assert!(!g.contains(oid(4)));
        assert_eq!(g.similarity(oid(4), oid(1)), 0.0);
        assert!(g.edge_count() < edges_before);
        // Removing twice is a no-op.
        g.remove_object(oid(4));
        assert_eq!(g.object_count(), 3);
    }

    #[test]
    fn update_recomputes_edges() {
        let mut g = textual_graph();
        assert!(g.similarity(oid(2), oid(1)) > 0.0);
        g.update_object(oid(2), textual("a completely different topic now"));
        assert_eq!(g.similarity(oid(2), oid(1)), 0.0);
        assert_eq!(g.object_count(), 3);
    }

    #[test]
    fn apply_batch_mirrors_dataset_mutations() {
        let mut g = SimilarityGraph::empty(GraphConfig::textual_jaccard(0.2));
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(1),
            record: textual("alpha beta"),
        });
        batch.push(Operation::Add {
            id: oid(2),
            record: textual("alpha gamma"),
        });
        batch.push(Operation::Add {
            id: oid(3),
            record: textual("delta epsilon"),
        });
        batch.push(Operation::Update {
            id: oid(3),
            record: textual("alpha epsilon"),
        });
        batch.push(Operation::Remove { id: oid(2) });
        g.apply_batch(&batch);
        assert_eq!(g.object_count(), 2);
        assert!(g.similarity(oid(1), oid(3)) > 0.0);
    }

    #[test]
    fn numeric_graph_with_grid_blocking() {
        let mut ds = Dataset::new();
        ds.insert_with_id(oid(1), numeric(vec![0.0, 0.0])).unwrap();
        ds.insert_with_id(oid(2), numeric(vec![0.2, 0.1])).unwrap();
        ds.insert_with_id(oid(3), numeric(vec![10.0, 10.0]))
            .unwrap();
        let g = SimilarityGraph::build(GraphConfig::numeric_euclidean(1.0, 2.0, 2, 0.4), &ds);
        assert!(g.similarity(oid(1), oid(2)) > 0.4);
        assert_eq!(g.similarity(oid(1), oid(3)), 0.0);
    }

    #[test]
    fn connected_components_partition_objects() {
        let g = textual_graph();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        let total: usize = comps.iter().map(BTreeSet::len).sum();
        assert_eq!(total, 3);
        let big = comps.iter().find(|c| c.len() == 2).unwrap();
        assert!(big.contains(&oid(1)) && big.contains(&oid(2)));
    }

    #[test]
    fn re_adding_an_existing_id_replaces_it() {
        let mut g = textual_graph();
        g.add_object(oid(3), textual("dynamic clustering for databases too"));
        assert_eq!(g.object_count(), 3);
        assert!(g.similarity(oid(3), oid(1)) > 0.0);
    }

    #[test]
    fn exhaustive_config_compares_all_pairs() {
        let mut ds = Dataset::new();
        for i in 0..5u64 {
            ds.insert_with_id(oid(i), textual(&format!("record {i}")))
                .unwrap();
        }
        let g = SimilarityGraph::build(
            GraphConfig::exhaustive(Box::new(crate::measures::JaccardSimilarity), 0.1),
            &ds,
        );
        // "record" is shared by all pairs.
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn debug_format_mentions_measure() {
        let g = textual_graph();
        let s = format!("{g:?}");
        assert!(s.contains("jaccard"));
    }
}
