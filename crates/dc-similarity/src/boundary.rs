//! Tracking records whose blocks collide across shards.
//!
//! Sharded serving partitions records by their canonical routing key
//! ([`ShardRouter`](crate::ShardRouter)), but a record usually lives in
//! *several* blocks ([`BlockingStrategy::block_keys`]) — and whenever two
//! records in different shards share a block, the per-shard similarity graphs
//! silently miss the candidate pair that an unsharded graph would have
//! compared.  The [`BoundaryIndex`] materializes exactly that information:
//! an inverted index from hashed block keys to `(record, shard)` entries,
//! maintained incrementally as objects are added, updated, removed, and
//! queried for the *cross-shard candidates* of one record.
//!
//! The index is pure derived state: it is a function of the current live
//! records and their shard assignment, so a recovered sharded engine can
//! rebuild it bit-identically from the per-shard graphs — nothing here needs
//! to be persisted.
//!
//! Candidate semantics match the blocking strategy's: records `a` and `b`
//! are candidates when `probe_keys(a) ∩ block_keys(b) ≠ ∅`
//! ([`BlockingStrategy::probe_keys`]); every built-in strategy's relation is
//! symmetric, so the pair is found from whichever side is queried.

use crate::blocking::BlockingStrategy;
use dc_types::{ObjectId, Record};
use std::collections::{BTreeMap, BTreeSet};

/// What the index remembers about one record.
#[derive(Debug, Clone)]
struct IndexedRecord {
    shard: usize,
    block_keys: Vec<u64>,
    probe_keys: Vec<u64>,
}

/// An inverted index over hashed block keys that answers "which records in
/// *other* shards share a block with this one?".
pub struct BoundaryIndex {
    /// Key source; never indexed into, only asked for pure key sets.
    blocking: Box<dyn BlockingStrategy>,
    /// Hashed block key → the records indexed under it, with their shards.
    blocks: BTreeMap<u64, BTreeMap<ObjectId, usize>>,
    /// Per-record key material, for unindexing and candidate queries.
    records: BTreeMap<ObjectId, IndexedRecord>,
}

impl BoundaryIndex {
    /// Create an empty index deriving keys from the given blocking strategy
    /// (a private copy; its mutable index state is never used).
    pub fn new(blocking: Box<dyn BlockingStrategy>) -> Self {
        let mut blocking = blocking;
        blocking.reset();
        BoundaryIndex {
            blocking,
            blocks: BTreeMap::new(),
            records: BTreeMap::new(),
        }
    }

    /// Number of records currently indexed.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Number of distinct block keys currently indexed.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The shard the index believes owns `id`, if the record is indexed.
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.records.get(&id).map(|r| r.shard)
    }

    /// The full object-to-shard map the index currently tracks, in id order.
    pub fn shard_map(&self) -> BTreeMap<ObjectId, usize> {
        self.records.iter().map(|(&id, r)| (id, r.shard)).collect()
    }

    /// Iterate over the tracked `(object, shard)` assignments in id order —
    /// the borrowed form of [`BoundaryIndex::shard_map`], for encoders that
    /// only need one ordered walk and no owned map.
    pub fn assignments(&self) -> impl Iterator<Item = (ObjectId, usize)> + '_ {
        self.records.iter().map(|(&id, r)| (id, r.shard))
    }

    /// Index (or re-index) a record under its owning shard.  Re-inserting an
    /// id replaces its previous entry, which is how updates are handled.
    pub fn insert(&mut self, id: ObjectId, shard: usize, record: &Record) {
        self.remove(id);
        let entry = IndexedRecord {
            shard,
            block_keys: self.blocking.block_keys(record),
            probe_keys: self.blocking.probe_keys(record),
        };
        for &key in &entry.block_keys {
            self.blocks.entry(key).or_default().insert(id, shard);
        }
        self.records.insert(id, entry);
    }

    /// Remove a record from the index.  Unknown ids are ignored.
    pub fn remove(&mut self, id: ObjectId) {
        let Some(entry) = self.records.remove(&id) else {
            return;
        };
        for key in entry.block_keys {
            if let Some(block) = self.blocks.get_mut(&key) {
                block.remove(&id);
                if block.is_empty() {
                    self.blocks.remove(&key);
                }
            }
        }
    }

    /// Records in **other** shards that share at least one block with `id` —
    /// the candidate pairs the per-shard graphs cannot see.  Empty when the
    /// id is not indexed.
    pub fn cross_shard_candidates(&self, id: ObjectId) -> BTreeSet<ObjectId> {
        let Some(entry) = self.records.get(&id) else {
            return BTreeSet::new();
        };
        let mut out = BTreeSet::new();
        for key in &entry.probe_keys {
            if let Some(block) = self.blocks.get(key) {
                for (&other, &other_shard) in block {
                    if other != id && other_shard != entry.shard {
                        out.insert(other);
                    }
                }
            }
        }
        out
    }

    /// Records that have at least one cross-shard candidate — the *boundary
    /// set*.  Derived on demand; intended for diagnostics and reports, not
    /// hot paths.
    pub fn boundary_records(&self) -> BTreeSet<ObjectId> {
        let mut out = BTreeSet::new();
        for block in self.blocks.values() {
            let mut shards: BTreeSet<usize> = BTreeSet::new();
            for &shard in block.values() {
                shards.insert(shard);
            }
            if shards.len() > 1 {
                out.extend(block.keys().copied());
            }
        }
        // Blocks only witness block-key collisions; grid probes reach
        // *neighbouring* keys too, so finish with the exact per-record test
        // for records not already known to be boundary.
        let candidates: Vec<ObjectId> = self
            .records
            .keys()
            .filter(|id| !out.contains(id))
            .copied()
            .collect();
        for id in candidates {
            if !self.cross_shard_candidates(id).is_empty() {
                out.insert(id);
            }
        }
        out
    }
}

impl std::fmt::Debug for BoundaryIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundaryIndex")
            .field("records", &self.records.len())
            .field("blocks", &self.blocks.len())
            .field("key_source", &self.blocking.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{ExhaustiveBlocking, GridBlocking, TokenBlocking};
    use dc_types::RecordBuilder;

    fn textual(s: &str) -> Record {
        RecordBuilder::new().text("t", s).build()
    }

    fn numeric(v: Vec<f64>) -> Record {
        RecordBuilder::new().vector(v).build()
    }

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn token_collisions_across_shards_are_candidates() {
        let mut index = BoundaryIndex::new(Box::new(TokenBlocking::new(0)));
        index.insert(oid(1), 0, &textual("alpha beta"));
        index.insert(oid(2), 1, &textual("beta gamma"));
        index.insert(oid(3), 0, &textual("beta delta")); // same shard as 1
        index.insert(oid(4), 1, &textual("epsilon"));
        assert_eq!(
            index.cross_shard_candidates(oid(1)),
            [oid(2)].into_iter().collect(),
            "only the other-shard token collision counts"
        );
        assert!(index.cross_shard_candidates(oid(4)).is_empty());
        let boundary = index.boundary_records();
        assert!(boundary.contains(&oid(1)));
        assert!(boundary.contains(&oid(2)));
        assert!(boundary.contains(&oid(3)));
        assert!(!boundary.contains(&oid(4)));
    }

    #[test]
    fn grid_neighbour_cells_are_candidates_across_shards() {
        let mut index = BoundaryIndex::new(Box::new(GridBlocking::new(1.0, 2)));
        index.insert(oid(1), 0, &numeric(vec![0.5, 0.5]));
        index.insert(oid(2), 1, &numeric(vec![1.5, 0.5])); // adjacent cell
        index.insert(oid(3), 1, &numeric(vec![9.0, 9.0])); // far away
        assert_eq!(
            index.cross_shard_candidates(oid(1)),
            [oid(2)].into_iter().collect()
        );
        // Symmetric from the other side.
        assert_eq!(
            index.cross_shard_candidates(oid(2)),
            [oid(1)].into_iter().collect()
        );
        assert!(index.boundary_records().contains(&oid(2)));
        assert!(!index.boundary_records().contains(&oid(3)));
    }

    #[test]
    fn exhaustive_blocking_makes_every_cross_shard_pair_a_candidate() {
        let mut index = BoundaryIndex::new(Box::new(ExhaustiveBlocking::new()));
        index.insert(oid(1), 0, &textual("a"));
        index.insert(oid(2), 1, &textual("b"));
        index.insert(oid(3), 2, &textual("c"));
        assert_eq!(index.cross_shard_candidates(oid(1)).len(), 2);
    }

    #[test]
    fn reinsert_and_remove_keep_the_index_exact() {
        let mut index = BoundaryIndex::new(Box::new(TokenBlocking::new(0)));
        index.insert(oid(1), 0, &textual("alpha"));
        index.insert(oid(2), 1, &textual("alpha"));
        assert_eq!(index.cross_shard_candidates(oid(1)).len(), 1);
        // An update that drops the shared token dissolves the pair.
        index.insert(oid(2), 1, &textual("omega"));
        assert!(index.cross_shard_candidates(oid(1)).is_empty());
        assert_eq!(index.shard_of(oid(2)), Some(1));
        index.remove(oid(2));
        assert_eq!(index.record_count(), 1);
        assert_eq!(index.shard_of(oid(2)), None);
        index.remove(oid(2)); // idempotent
        assert_eq!(index.record_count(), 1);
        index.remove(oid(1));
        assert_eq!(index.block_count(), 0);
    }
}
