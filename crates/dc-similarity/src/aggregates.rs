//! Cluster-level similarity aggregates.
//!
//! The paper's features (§5.1) and objective functions (§3.2) are all built
//! from a small number of cluster-level aggregates of the similarity graph:
//!
//! * **intra-cluster similarity** — the sum (or average) of the similarities
//!   between members of one cluster;
//! * **inter-cluster similarity** — the sum (or average) of the similarities
//!   between members of two different clusters;
//! * **maximal inter-cluster similarity** — the largest *average*
//!   inter-similarity between a cluster and any other cluster, together with
//!   the identity of that most-similar neighbour;
//! * **object weight** — the average similarity between one object and the
//!   rest of its cluster, which drives the split heuristic of §6.3.
//!
//! [`ClusterAggregates`] computes all of these against a
//! [`dc_types::Clustering`] without materializing anything per
//! pair of clusters: it walks only the stored (thresholded) edges, so the
//! cost is proportional to the number of edges incident to the clusters
//! involved.

use crate::graph::SimilarityGraph;
use dc_types::{Cluster, ClusterId, Clustering, ObjectId};
use std::collections::BTreeMap;

/// A view that answers cluster-level similarity queries for one
/// `(similarity graph, clustering)` pair.
pub struct ClusterAggregates<'a> {
    graph: &'a SimilarityGraph,
    clustering: &'a Clustering,
}

impl<'a> ClusterAggregates<'a> {
    /// Create an aggregate view.
    pub fn new(graph: &'a SimilarityGraph, clustering: &'a Clustering) -> Self {
        ClusterAggregates { graph, clustering }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &SimilarityGraph {
        self.graph
    }

    /// The underlying clustering.
    pub fn clustering(&self) -> &Clustering {
        self.clustering
    }

    // ------------------------------------------------------------------
    // Intra-cluster quantities
    // ------------------------------------------------------------------

    /// Sum of pairwise similarities between members of the cluster
    /// (`S_intra(C)` of §3.2, in its *sum* form).
    pub fn intra_sum(&self, cid: ClusterId) -> f64 {
        let Some(cluster) = self.clustering.cluster(cid) else {
            return 0.0;
        };
        Self::intra_sum_of_members(self.graph, cluster)
    }

    /// Sum of pairwise similarities inside an explicit member set (used for
    /// hypothetical clusters that are not part of the clustering yet).
    pub fn intra_sum_of_members(graph: &SimilarityGraph, cluster: &Cluster) -> f64 {
        let mut sum = 0.0;
        for a in cluster.iter() {
            for (b, sim) in graph.neighbors(a) {
                // Count each unordered pair once.
                if b > a && cluster.contains(b) {
                    sum += sim;
                }
            }
        }
        sum
    }

    /// Average pairwise similarity inside the cluster.  Singleton clusters
    /// are defined to have cohesion 1 (they cannot be any more cohesive),
    /// which keeps the feature `f1 ∈ [0, 1]` of §5.2 well defined for the
    /// fresh singleton clusters created by initial processing (§6.1).
    pub fn intra_avg(&self, cid: ClusterId) -> f64 {
        let Some(cluster) = self.clustering.cluster(cid) else {
            return 0.0;
        };
        Self::intra_avg_of_members(self.graph, cluster)
    }

    /// Average pairwise similarity inside an explicit member set.
    pub fn intra_avg_of_members(graph: &SimilarityGraph, cluster: &Cluster) -> f64 {
        let n = cluster.len();
        if n <= 1 {
            return 1.0;
        }
        let pairs = (n * (n - 1) / 2) as f64;
        Self::intra_sum_of_members(graph, cluster) / pairs
    }

    // ------------------------------------------------------------------
    // Inter-cluster quantities
    // ------------------------------------------------------------------

    /// Sum of similarities across two distinct clusters (`S_inter(C, C')`).
    pub fn inter_sum(&self, a: ClusterId, b: ClusterId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (Some(ca), Some(cb)) = (self.clustering.cluster(a), self.clustering.cluster(b)) else {
            return 0.0;
        };
        // Walk the smaller cluster's edges.
        let (small, large) = if ca.len() <= cb.len() {
            (ca, cb)
        } else {
            (cb, ca)
        };
        let mut sum = 0.0;
        for o in small.iter() {
            for (n, sim) in self.graph.neighbors(o) {
                if large.contains(n) {
                    sum += sim;
                }
            }
        }
        sum
    }

    /// Average similarity across two distinct clusters (sum divided by the
    /// number of cross pairs `|C|·|C'|`).
    pub fn inter_avg(&self, a: ClusterId, b: ClusterId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (Some(ca), Some(cb)) = (self.clustering.cluster(a), self.clustering.cluster(b)) else {
            return 0.0;
        };
        let pairs = (ca.len() * cb.len()) as f64;
        if pairs == 0.0 {
            0.0
        } else {
            self.inter_sum(a, b) / pairs
        }
    }

    /// Per-neighbour-cluster sums of cross-edge similarity for cluster `cid`:
    /// `neighbour cluster id → Σ sim` over stored edges leaving the cluster.
    pub fn neighbour_cluster_sums(&self, cid: ClusterId) -> BTreeMap<ClusterId, f64> {
        let mut sums: BTreeMap<ClusterId, f64> = BTreeMap::new();
        let Some(cluster) = self.clustering.cluster(cid) else {
            return sums;
        };
        for o in cluster.iter() {
            for (n, sim) in self.graph.neighbors(o) {
                if let Some(other) = self.clustering.cluster_of(n) {
                    if other != cid {
                        *sums.entry(other).or_insert(0.0) += sim;
                    }
                }
            }
        }
        sums
    }

    /// Clusters that share at least one stored edge with `cid`.
    pub fn neighbour_clusters(&self, cid: ClusterId) -> Vec<ClusterId> {
        self.neighbour_cluster_sums(cid).into_keys().collect()
    }

    /// The maximal *average* inter-similarity between `cid` and any other
    /// cluster, together with the neighbour attaining it (`f2` and the source
    /// of `f4` of §5.2).  Returns `None` when the cluster has no cross edges.
    pub fn max_inter_avg(&self, cid: ClusterId) -> Option<(ClusterId, f64)> {
        let size = self.clustering.cluster_size(cid);
        if size == 0 {
            return None;
        }
        let mut best: Option<(ClusterId, f64)> = None;
        for (other, sum) in self.neighbour_cluster_sums(cid) {
            let other_size = self.clustering.cluster_size(other);
            if other_size == 0 {
                continue;
            }
            let avg = sum / (size * other_size) as f64;
            match best {
                Some((_, b)) if b >= avg => {}
                _ => best = Some((other, avg)),
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Per-object quantities
    // ------------------------------------------------------------------

    /// Average similarity between object `oid` and the *other* members of
    /// cluster `cid`.  Returns 1 when the cluster is a singleton (the object
    /// is trivially cohesive with itself).
    pub fn object_cohesion(&self, oid: ObjectId, cid: ClusterId) -> f64 {
        let Some(cluster) = self.clustering.cluster(cid) else {
            return 0.0;
        };
        let others = cluster.len().saturating_sub(1);
        if others == 0 {
            return 1.0;
        }
        let mut sum = 0.0;
        for (n, sim) in self.graph.neighbors(oid) {
            if n != oid && cluster.contains(n) {
                sum += sim;
            }
        }
        sum / others as f64
    }

    /// The split-heuristic weight of §6.3: how *different* the object is from
    /// the rest of its cluster, `1 − object_cohesion`.  Larger weight ⇒ split
    /// out first.
    pub fn split_weight(&self, oid: ObjectId, cid: ClusterId) -> f64 {
        1.0 - self.object_cohesion(oid, cid)
    }

    /// Members of cluster `cid` ranked by decreasing split weight (most
    /// different first), as required by step 1 of the split heuristic.
    pub fn members_by_split_weight(&self, cid: ClusterId) -> Vec<(ObjectId, f64)> {
        let Some(cluster) = self.clustering.cluster(cid) else {
            return Vec::new();
        };
        let mut weighted: Vec<(ObjectId, f64)> = cluster
            .iter()
            .map(|o| (o, self.split_weight(o, cid)))
            .collect();
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        weighted
    }

    /// Average similarity between one object and every member of a *different*
    /// cluster (used when deciding which cluster a new object should join).
    pub fn object_to_cluster_avg(&self, oid: ObjectId, cid: ClusterId) -> f64 {
        let Some(cluster) = self.clustering.cluster(cid) else {
            return 0.0;
        };
        if cluster.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (n, sim) in self.graph.neighbors(oid) {
            if cluster.contains(n) && n != oid {
                sum += sim;
            }
        }
        let denom = if cluster.contains(oid) {
            cluster.len().saturating_sub(1)
        } else {
            cluster.len()
        };
        if denom == 0 {
            0.0
        } else {
            sum / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use crate::measures::SimilarityMeasure;
    use dc_types::{Dataset, Record, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// Measure that declares two records similar iff they share their "group"
    /// field, with a similarity encoded in the "sim" field (test fixture that
    /// gives exact control over the graph weights).
    #[derive(Debug, Clone, Copy)]
    struct FixtureMeasure;

    impl SimilarityMeasure for FixtureMeasure {
        fn similarity(&self, a: &Record, b: &Record) -> f64 {
            let ga = a.field("group").and_then(|f| f.as_text()).unwrap_or("");
            let gb = b.field("group").and_then(|f| f.as_text()).unwrap_or("");
            if ga == gb && !ga.is_empty() {
                let sa = a.field("sim").and_then(|f| f.as_number()).unwrap_or(1.0);
                let sb = b.field("sim").and_then(|f| f.as_number()).unwrap_or(1.0);
                sa.min(sb)
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "fixture"
        }
    }

    fn rec(group: &str, sim: f64) -> Record {
        RecordBuilder::new()
            .text("group", group)
            .number("sim", sim)
            .build()
    }

    /// Builds the Figure 1 "old clustering" scenario:
    /// r1, r2, r3 pairwise similar (0.9); r4, r5 similar (1.0 between them);
    /// clusters C1 = {r1, r2, r3}, C2 = {r4, r5}.
    fn figure1_setup() -> (SimilarityGraph, Clustering) {
        let mut ds = Dataset::new();
        ds.insert_with_id(oid(1), rec("a", 0.9)).unwrap();
        ds.insert_with_id(oid(2), rec("a", 0.9)).unwrap();
        ds.insert_with_id(oid(3), rec("a", 0.9)).unwrap();
        ds.insert_with_id(oid(4), rec("b", 0.8)).unwrap();
        ds.insert_with_id(oid(5), rec("b", 0.8)).unwrap();
        let graph =
            SimilarityGraph::build(GraphConfig::exhaustive(Box::new(FixtureMeasure), 0.1), &ds);
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        (graph, clustering)
    }

    #[test]
    fn intra_sum_and_avg() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        // C1 has 3 pairs each of similarity 0.9.
        assert!((agg.intra_sum(c1) - 2.7).abs() < 1e-9);
        assert!((agg.intra_avg(c1) - 0.9).abs() < 1e-9);
        // C2 has a single pair of similarity 0.8.
        assert!((agg.intra_sum(c2) - 0.8).abs() < 1e-9);
        assert!((agg.intra_avg(c2) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn singleton_cohesion_is_one() {
        let (graph, _) = figure1_setup();
        let clustering = Clustering::singletons([oid(1), oid(2)]);
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c = clustering.cluster_of(oid(1)).unwrap();
        assert_eq!(agg.intra_avg(c), 1.0);
        assert_eq!(agg.object_cohesion(oid(1), c), 1.0);
    }

    #[test]
    fn inter_sum_and_avg_between_disjoint_groups() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        // The fixture gives no cross-group similarity.
        assert_eq!(agg.inter_sum(c1, c2), 0.0);
        assert_eq!(agg.inter_avg(c1, c2), 0.0);
        assert_eq!(agg.inter_sum(c1, c1), 0.0);
        assert!(agg.max_inter_avg(c1).is_none());
    }

    #[test]
    fn inter_and_max_inter_with_cross_edges() {
        // Split group "a" across two clusters so there are cross edges.
        let (graph, _) = figure1_setup();
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)], vec![oid(4), oid(5)]])
                .unwrap();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c12 = clustering.cluster_of(oid(1)).unwrap();
        let c3 = clustering.cluster_of(oid(3)).unwrap();
        // Cross edges: (1,3) and (2,3), each 0.9.
        assert!((agg.inter_sum(c12, c3) - 1.8).abs() < 1e-9);
        assert!((agg.inter_avg(c12, c3) - 0.9).abs() < 1e-9);
        let (best, avg) = agg.max_inter_avg(c3).unwrap();
        assert_eq!(best, c12);
        assert!((avg - 0.9).abs() < 1e-9);
        assert_eq!(agg.neighbour_clusters(c3), vec![c12]);
    }

    #[test]
    fn object_cohesion_and_split_weight_identify_outlier() {
        // Cluster {r1, r2, r3, r4}: r1..r3 mutually similar, r4 unrelated.
        let (graph, _) = figure1_setup();
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)], vec![oid(5)]]).unwrap();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let big = clustering.cluster_of(oid(1)).unwrap();
        assert!(agg.object_cohesion(oid(1), big) > agg.object_cohesion(oid(4), big));
        let ranked = agg.members_by_split_weight(big);
        assert_eq!(ranked.first().unwrap().0, oid(4), "outlier ranks first");
        assert!(ranked.first().unwrap().1 > ranked.last().unwrap().1);
    }

    #[test]
    fn object_to_cluster_avg_for_external_object() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        // r3 belongs to C1, so against C1 it averages over the other 2 members.
        assert!((agg.object_to_cluster_avg(oid(3), c1) - 0.9).abs() < 1e-9);
        // Against C2 it has no edges.
        assert_eq!(agg.object_to_cluster_avg(oid(3), c2), 0.0);
    }

    #[test]
    fn missing_clusters_yield_zeroes() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let missing = ClusterId::new(9999);
        assert_eq!(agg.intra_sum(missing), 0.0);
        assert_eq!(agg.intra_avg(missing), 0.0);
        assert_eq!(agg.inter_avg(missing, missing), 0.0);
        assert!(agg.max_inter_avg(missing).is_none());
        assert!(agg.members_by_split_weight(missing).is_empty());
    }

    #[test]
    fn hypothetical_member_sets_reuse_static_helpers() {
        let (graph, _) = figure1_setup();
        let hypothetical = Cluster::from_members([oid(1), oid(2), oid(4)]);
        // Only the (1,2) edge exists inside this hypothetical cluster.
        assert!(
            (ClusterAggregates::intra_sum_of_members(&graph, &hypothetical) - 0.9).abs() < 1e-9
        );
        let avg = ClusterAggregates::intra_avg_of_members(&graph, &hypothetical);
        assert!((avg - 0.3).abs() < 1e-9);
    }
}
