//! Cluster-level similarity aggregates, maintained incrementally.
//!
//! The paper's features (§5.1) and objective functions (§3.2) are all built
//! from a small number of cluster-level aggregates of the similarity graph:
//!
//! * **intra-cluster similarity** — the sum (or average) of the similarities
//!   between members of one cluster;
//! * **inter-cluster similarity** — the sum (or average) of the similarities
//!   between members of two different clusters;
//! * **maximal inter-cluster similarity** — the largest *average*
//!   inter-similarity between a cluster and any other cluster, together with
//!   the identity of that most-similar neighbour;
//! * **object weight** — the average similarity between one object and the
//!   rest of its cluster, which drives the split heuristic of §6.3.
//!
//! [`ClusterAggregates`] *owns* the materialized per-cluster state: intra
//! sums, cluster sizes, and the symmetric per-cluster-pair cross-edge sums.
//! A full build ([`ClusterAggregates::new`]) walks every stored edge once —
//! O(E) — and every structural change afterwards is folded in by a delta
//! update whose cost is proportional to the degree of the touched members:
//!
//! * [`ClusterAggregates::apply_merge`] — O(neighbour clusters of both sides);
//! * [`ClusterAggregates::apply_split`] — O(Σ degree of the split cluster's
//!   members);
//! * [`ClusterAggregates::apply_move`] — O(degree of the moved object);
//! * [`ClusterAggregates::apply_batch`] — O(Σ degree of the touched objects).
//!
//! This is the invariant the serving path relies on: `merge_pass`,
//! `split_pass`, and the `Engine` round loop thread **one** maintained
//! aggregate through all candidate evaluations instead of rebuilding from
//! scratch per candidate.  [`full_build_count`] counts the O(E) builds per
//! thread so tests and benches can assert the serving path stays on the
//! incremental path.
//!
//! Per-object quantities (cohesion, split weights) depend on one object's
//! edges only; they are exposed as associated functions that walk the graph
//! directly and need no materialized state.

use crate::graph::SimilarityGraph;
use dc_types::{Cluster, ClusterId, Clustering, ObjectId, Operation, OperationBatch};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Cross-edge sums whose absolute value falls below this after a subtraction
/// are treated as zero and pruned: stored edges always have strictly positive
/// similarity, so a residue this small can only be floating-point noise left
/// behind by an incremental update.
const RESIDUE_EPSILON: f64 = 1e-9;

/// Telemetry counter name under which full O(E) builds are counted.
///
/// The counter is recorded **unconditionally** (telemetry off included) via
/// `dc_telemetry::Registry::add_always`, because equivalence tests and bench
/// gates assert exact build counts without enabling telemetry.  Full builds
/// are O(E)-rare events, so the unconditional count is free by comparison.
pub const FULL_BUILDS_COUNTER: &str = "aggregates.full_builds";

/// Number of full O(E) [`ClusterAggregates::new`] builds performed by the
/// current thread since it started.  Diagnostics for tests and benches: the
/// serving path is expected to build once per round (or never, inside an
/// `Engine`), and this counter is how that contract is enforced.
///
/// Backed by the thread-local [`dc_telemetry`] registry under
/// [`FULL_BUILDS_COUNTER`], so the count also shows up in telemetry
/// snapshots and merges across the sharded engine's worker threads along
/// with every other metric.
pub fn full_build_count() -> u64 {
    dc_telemetry::registry().counter(FULL_BUILDS_COUNTER)
}

/// Scoped access to the full-build diagnostic counter.
///
/// Tests and benches used to bracket code with manual
/// `let before = full_build_count(); ...; full_build_count() - before`
/// arithmetic; [`BuildCounter::scope`] packages that pattern.
///
/// # Thread locality
///
/// The underlying counter is **thread-local**: it counts only the builds
/// performed by the calling thread, which makes count assertions safe under
/// `cargo test`'s parallel test execution.  Two contracts follow:
///
/// 1. the closure must perform its builds *on the calling thread* — builds
///    delegated to other threads are invisible to the scope;
/// 2. a scope never observes builds from concurrently running tests, so the
///    returned delta is exact, not approximate.
pub struct BuildCounter;

impl BuildCounter {
    /// Run `f` and return `(f's result, number of full O(E) aggregate builds
    /// the calling thread performed inside the closure)`.
    pub fn scope<R>(f: impl FnOnce() -> R) -> (R, u64) {
        let before = full_build_count();
        let result = f();
        (result, full_build_count() - before)
    }

    /// Fold builds observed on *worker* threads into the calling thread's
    /// counter.
    ///
    /// Contract 1 above means builds delegated to other threads are
    /// invisible to a [`BuildCounter::scope`] on the spawning thread — a
    /// sharded round that fans `apply_round` calls out to a thread pool
    /// would under-report its builds.  The fix is cooperative: each worker
    /// measures its own builds (its counter starts at whatever it was when
    /// the worker last reported; scoped pools use fresh threads, so a plain
    /// [`full_build_count`] works too) and the spawning thread merges the
    /// returned deltas here, keeping scope-based assertions exact across the
    /// fan-out.
    pub fn merge_from_threads(builds: u64) {
        dc_telemetry::registry().add_always(FULL_BUILDS_COUNTER, builds);
    }
}

/// Materialized cluster-level aggregates for one
/// `(similarity graph, clustering)` pair, maintained incrementally.
///
/// The structure stores, for every live cluster, its size, the sum of its
/// intra-cluster edge similarities, and a map from each neighbouring cluster
/// to the total similarity of the edges crossing into it (kept exactly
/// symmetric).  All read accessors are O(log n) lookups or walks of the
/// materialized maps — no graph edges are touched.
#[derive(Debug, Clone, Default)]
pub struct ClusterAggregates {
    /// Cluster sizes (mirror of the clustering).
    sizes: BTreeMap<ClusterId, usize>,
    /// `Σ sim` over stored intra-cluster edges, per cluster.
    intra: BTreeMap<ClusterId, f64>,
    /// Symmetric cross-edge sums: `inter[a][b] == inter[b][a] == Σ sim` over
    /// stored edges with one endpoint in `a` and the other in `b`.
    inter: BTreeMap<ClusterId, BTreeMap<ClusterId, f64>>,
}

impl ClusterAggregates {
    /// Full build: walk every stored edge of the graph once — O(E).
    ///
    /// Edges with an unclustered endpoint are ignored, exactly as every
    /// consumer of the aggregates expects.
    pub fn new(graph: &SimilarityGraph, clustering: &Clustering) -> Self {
        dc_telemetry::registry().add_always(FULL_BUILDS_COUNTER, 1);
        let mut agg = ClusterAggregates::default();
        for (cid, cluster) in clustering.iter() {
            agg.sizes.insert(cid, cluster.len());
            agg.intra.insert(cid, 0.0);
            agg.inter.insert(cid, BTreeMap::new());
        }
        // Visit each unordered edge exactly once (b > a) so the symmetric
        // inter entries receive bit-identical sums on both sides.
        for a in clustering.object_ids() {
            let Some(ca) = clustering.cluster_of(a) else {
                continue;
            };
            for (b, sim) in graph.neighbors(a) {
                if b <= a {
                    continue;
                }
                match clustering.cluster_of(b) {
                    Some(cb) if cb == ca => {
                        *agg.intra.get_mut(&ca).expect("live cluster") += sim;
                    }
                    Some(cb) => {
                        agg.add_inter(ca, cb, sim);
                    }
                    None => {}
                }
            }
        }
        agg
    }

    /// An empty aggregate (the state of an [`ClusterAggregates::new`] over an
    /// empty clustering, without counting as a full build).
    pub fn empty() -> Self {
        ClusterAggregates::default()
    }

    /// Union several aggregates over **disjoint cluster-id sets** into one —
    /// the global view of a sharded engine's per-shard aggregates.
    ///
    /// Deliberately *not* counted as a full build: no graph edge is walked;
    /// the per-cluster sums are copied with their exact bits, which is what
    /// keeps the cross-shard refinement pass's decisions deterministic.
    /// Edges *between* the parts (which no part can know about) are injected
    /// afterwards with [`ClusterAggregates::add_inter_edge`].
    ///
    /// # Panics
    ///
    /// Panics when two parts track the same cluster id.
    pub fn union<'a>(parts: impl IntoIterator<Item = &'a ClusterAggregates>) -> Self {
        let mut out = ClusterAggregates::default();
        for part in parts {
            for (&cid, &size) in &part.sizes {
                assert!(
                    out.sizes.insert(cid, size).is_none(),
                    "cluster {cid} is tracked by more than one aggregate part"
                );
            }
            for (&cid, &sum) in &part.intra {
                out.intra.insert(cid, sum);
            }
            for (&cid, map) in &part.inter {
                out.inter.insert(cid, map.clone());
            }
        }
        out
    }

    /// Fold one stored edge between members of two **distinct, tracked**
    /// clusters into the symmetric cross-edge sums.  The cross-shard
    /// refinement pass uses this to make recovered cross-shard edges visible
    /// to features and objective deltas.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` or either cluster is untracked (a cross-shard
    /// edge always lands between two live clusters of different shards).
    pub fn add_inter_edge(&mut self, a: ClusterId, b: ClusterId, sim: f64) {
        assert!(
            a != b && self.sizes.contains_key(&a) && self.sizes.contains_key(&b),
            "add_inter_edge requires two distinct tracked clusters"
        );
        self.add_inter(a, b, sim);
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.sizes.len()
    }

    /// All live cluster ids in id order.
    pub fn cluster_ids(&self) -> Vec<ClusterId> {
        self.sizes.keys().copied().collect()
    }

    /// Whether the cluster is tracked.
    pub fn contains_cluster(&self, cid: ClusterId) -> bool {
        self.sizes.contains_key(&cid)
    }

    /// The largest tracked cluster id, if any.  Simulation code uses this to
    /// pick scratch ids guaranteed not to collide with live clusters.
    pub fn max_cluster_id(&self) -> Option<ClusterId> {
        self.sizes.last_key_value().map(|(&c, _)| c)
    }

    /// Size of cluster `cid` (0 if absent).
    pub fn cluster_size(&self, cid: ClusterId) -> usize {
        self.sizes.get(&cid).copied().unwrap_or(0)
    }

    /// Sum of pairwise similarities between members of the cluster
    /// (`S_intra(C)` of §3.2, in its *sum* form).
    pub fn intra_sum(&self, cid: ClusterId) -> f64 {
        self.intra.get(&cid).copied().unwrap_or(0.0)
    }

    /// Average pairwise similarity inside the cluster.  Singleton clusters
    /// are defined to have cohesion 1 (they cannot be any more cohesive),
    /// which keeps the feature `f1 ∈ [0, 1]` of §5.2 well defined for the
    /// fresh singleton clusters created by initial processing (§6.1).
    /// Unknown clusters score 0.
    pub fn intra_avg(&self, cid: ClusterId) -> f64 {
        let Some(&n) = self.sizes.get(&cid) else {
            return 0.0;
        };
        if n <= 1 {
            return 1.0;
        }
        let pairs = (n * (n - 1) / 2) as f64;
        self.intra_sum(cid) / pairs
    }

    /// Sum of similarities across two distinct clusters (`S_inter(C, C')`).
    pub fn inter_sum(&self, a: ClusterId, b: ClusterId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.inter
            .get(&a)
            .and_then(|m| m.get(&b))
            .copied()
            .unwrap_or(0.0)
    }

    /// Average similarity across two distinct clusters (sum divided by the
    /// number of cross pairs `|C|·|C'|`).
    pub fn inter_avg(&self, a: ClusterId, b: ClusterId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (Some(&sa), Some(&sb)) = (self.sizes.get(&a), self.sizes.get(&b)) else {
            return 0.0;
        };
        let pairs = (sa * sb) as f64;
        if pairs == 0.0 {
            0.0
        } else {
            self.inter_sum(a, b) / pairs
        }
    }

    /// Per-neighbour-cluster sums of cross-edge similarity for cluster `cid`:
    /// `(neighbour cluster id, Σ sim)` over stored edges leaving the cluster,
    /// in cluster-id order.
    pub fn neighbour_cluster_sums(
        &self,
        cid: ClusterId,
    ) -> impl Iterator<Item = (ClusterId, f64)> + '_ {
        self.inter
            .get(&cid)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&c, &s)| (c, s)))
    }

    /// Clusters that share at least one stored edge with `cid`.
    pub fn neighbour_clusters(&self, cid: ClusterId) -> Vec<ClusterId> {
        self.neighbour_cluster_sums(cid).map(|(c, _)| c).collect()
    }

    /// The maximal *average* inter-similarity between `cid` and any other
    /// cluster, together with the neighbour attaining it (`f2` and the source
    /// of `f4` of §5.2).  Returns `None` when the cluster has no cross edges.
    pub fn max_inter_avg(&self, cid: ClusterId) -> Option<(ClusterId, f64)> {
        let size = self.cluster_size(cid);
        if size == 0 {
            return None;
        }
        let mut best: Option<(ClusterId, f64)> = None;
        for (other, sum) in self.neighbour_cluster_sums(cid) {
            let other_size = self.cluster_size(other);
            if other_size == 0 {
                continue;
            }
            let avg = sum / (size * other_size) as f64;
            match best {
                Some((_, b)) if b >= avg => {}
                _ => best = Some((other, avg)),
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Incremental maintenance
    // ------------------------------------------------------------------

    /// Fold a merge of clusters `a` and `b` into the new cluster `merged`
    /// (the id returned by [`Clustering::merge`]) into the aggregates.
    ///
    /// Cost: O(number of neighbour clusters of `a` and `b`) — no graph edges
    /// are touched, because a merge only re-labels existing sums.
    pub fn apply_merge(&mut self, a: ClusterId, b: ClusterId, merged: ClusterId) {
        let ia = self.intra.remove(&a).unwrap_or(0.0);
        let ib = self.intra.remove(&b).unwrap_or(0.0);
        let sa = self.sizes.remove(&a).unwrap_or(0);
        let sb = self.sizes.remove(&b).unwrap_or(0);
        let ma = self.inter.remove(&a).unwrap_or_default();
        let mb = self.inter.remove(&b).unwrap_or_default();
        let cross = ma.get(&b).copied().unwrap_or(0.0);

        let mut merged_map: BTreeMap<ClusterId, f64> = BTreeMap::new();
        for (x, s) in ma.into_iter().chain(mb) {
            if x != a && x != b {
                *merged_map.entry(x).or_insert(0.0) += s;
            }
        }
        for (&x, &s) in &merged_map {
            if let Some(mx) = self.inter.get_mut(&x) {
                mx.remove(&a);
                mx.remove(&b);
                mx.insert(merged, s);
            }
        }
        self.intra.insert(merged, ia + ib + cross);
        self.sizes.insert(merged, sa + sb);
        self.inter.insert(merged, merged_map);
    }

    /// Fold a split of cluster `original` into `part_id` and `rest_id` (the
    /// ids returned by [`Clustering::split`]) into the aggregates, reading the
    /// two member sets from the post-split `clustering`.
    ///
    /// Cost: O(Σ degree of the split cluster's members).
    pub fn apply_split(
        &mut self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        original: ClusterId,
        part_id: ClusterId,
        rest_id: ClusterId,
    ) {
        let part = clustering
            .cluster(part_id)
            .expect("part cluster exists after the split")
            .members()
            .clone();
        let rest = clustering
            .cluster(rest_id)
            .expect("rest cluster exists after the split")
            .members()
            .clone();
        self.apply_split_members(graph, clustering, original, part_id, &part, rest_id, &rest);
    }

    /// Like [`ClusterAggregates::apply_split`] but with explicit member sets,
    /// so callers can *simulate* a split (e.g. for a delta evaluation) before
    /// mutating the clustering.  `clustering` may reflect the state before or
    /// after the split: it is consulted only for objects outside
    /// `part ∪ rest`, whose membership a split does not change.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_split_members(
        &mut self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        original: ClusterId,
        part_id: ClusterId,
        part: &BTreeSet<ObjectId>,
        rest_id: ClusterId,
        rest: &BTreeSet<ObjectId>,
    ) {
        // Retire the original cluster everywhere.
        let old_map = self.inter.remove(&original).unwrap_or_default();
        for x in old_map.keys() {
            if let Some(mx) = self.inter.get_mut(x) {
                mx.remove(&original);
            }
        }
        self.intra.remove(&original);
        self.sizes.remove(&original);

        // Recompute both sides fresh from their members' edges: residue-free
        // and still local to the split cluster.
        let mut intra_part = 0.0;
        let mut cross = 0.0;
        let mut part_out: BTreeMap<ClusterId, f64> = BTreeMap::new();
        for &a in part {
            for (b, sim) in graph.neighbors(a) {
                if part.contains(&b) {
                    if b > a {
                        intra_part += sim;
                    }
                } else if rest.contains(&b) {
                    cross += sim;
                } else if let Some(x) = clustering.cluster_of(b) {
                    *part_out.entry(x).or_insert(0.0) += sim;
                }
            }
        }
        let mut intra_rest = 0.0;
        let mut rest_out: BTreeMap<ClusterId, f64> = BTreeMap::new();
        for &a in rest {
            for (b, sim) in graph.neighbors(a) {
                if rest.contains(&b) {
                    if b > a {
                        intra_rest += sim;
                    }
                } else if !part.contains(&b) {
                    if let Some(x) = clustering.cluster_of(b) {
                        *rest_out.entry(x).or_insert(0.0) += sim;
                    }
                }
            }
        }
        if cross > 0.0 {
            part_out.insert(rest_id, cross);
            rest_out.insert(part_id, cross);
        }
        for (&x, &s) in &part_out {
            if x != rest_id {
                self.inter.entry(x).or_default().insert(part_id, s);
            }
        }
        for (&x, &s) in &rest_out {
            if x != part_id {
                self.inter.entry(x).or_default().insert(rest_id, s);
            }
        }
        self.intra.insert(part_id, intra_part);
        self.intra.insert(rest_id, intra_rest);
        self.sizes.insert(part_id, part.len());
        self.sizes.insert(rest_id, rest.len());
        self.inter.insert(part_id, part_out);
        self.inter.insert(rest_id, rest_out);
    }

    /// Fold a move of object `oid` from cluster `from` into cluster `to`.
    /// `clustering` may reflect the state before or after the move: only the
    /// memberships of `oid`'s *neighbours* are consulted, and a move changes
    /// none of them.  If `from` is left empty it is dropped, matching
    /// [`Clustering::move_object`].
    ///
    /// Cost: O(degree of `oid`).
    pub fn apply_move(
        &mut self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        from: ClusterId,
        to: ClusterId,
    ) {
        if from == to {
            return;
        }
        // Per-neighbour-cluster similarity sums of the moved object.
        let mut sums: BTreeMap<ClusterId, f64> = BTreeMap::new();
        for (n, sim) in graph.neighbors(oid) {
            if n == oid {
                continue;
            }
            if let Some(cn) = clustering.cluster_of(n) {
                *sums.entry(cn).or_insert(0.0) += sim;
            }
        }
        let to_from = sums.get(&from).copied().unwrap_or(0.0);
        let to_to = sums.get(&to).copied().unwrap_or(0.0);
        let from_drops = self.sizes.get(&from).copied().unwrap_or(0) <= 1;

        // Edges to members of `from` flip intra → cross; edges to members of
        // `to` flip cross → intra; edges to any other cluster X move from
        // `from`'s column to `to`'s.
        self.sub_intra(from, to_from);
        *self.intra.entry(to).or_insert(0.0) += to_to;
        for (&x, &s) in &sums {
            if x == from || x == to {
                continue;
            }
            self.sub_inter(from, x, s);
            self.add_inter(to, x, s);
        }
        self.sub_inter(from, to, to_to);
        self.add_inter(from, to, to_from);

        *self.sizes.entry(to).or_insert(0) += 1;
        if from_drops {
            self.drop_cluster(from);
        } else if let Some(s) = self.sizes.get_mut(&from) {
            *s -= 1;
        }
    }

    /// Attach a freshly clustered object: `oid` must already be present in
    /// both the graph (with its final edges) and the clustering.  Used when
    /// an added or updated object enters the clustering as a singleton, and
    /// when an object joins an existing cluster.
    ///
    /// Cost: O(degree of `oid`).
    pub fn apply_add(&mut self, graph: &SimilarityGraph, clustering: &Clustering, oid: ObjectId) {
        let Some(cid) = clustering.cluster_of(oid) else {
            return;
        };
        let mut to_self = 0.0;
        let mut per: BTreeMap<ClusterId, f64> = BTreeMap::new();
        for (n, sim) in graph.neighbors(oid) {
            if n == oid {
                continue;
            }
            match clustering.cluster_of(n) {
                Some(cn) if cn == cid => to_self += sim,
                Some(cn) => *per.entry(cn).or_insert(0.0) += sim,
                None => {}
            }
        }
        *self.sizes.entry(cid).or_insert(0) += 1;
        *self.intra.entry(cid).or_insert(0.0) += to_self;
        self.inter.entry(cid).or_default();
        for (cn, s) in per {
            self.add_inter(cid, cn, s);
        }
    }

    /// Detach an object that is about to leave the clustering: `oid`'s edges
    /// must still be present in the graph, and `from` is the cluster it is
    /// leaving.  Only the memberships of `oid`'s neighbours are consulted, so
    /// `clustering` may reflect the state before or after the removal.
    ///
    /// Cost: O(degree of `oid`).
    pub fn apply_remove(
        &mut self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        from: ClusterId,
    ) {
        for (n, sim) in graph.neighbors(oid) {
            if n == oid {
                continue;
            }
            match clustering.cluster_of(n) {
                Some(cn) if cn == from => self.sub_intra(from, sim),
                Some(cn) => self.sub_inter(from, cn, sim),
                None => {}
            }
        }
        let remaining = self
            .sizes
            .get(&from)
            .copied()
            .unwrap_or(0)
            .saturating_sub(1);
        if remaining == 0 {
            self.drop_cluster(from);
        } else if let Some(s) = self.sizes.get_mut(&from) {
            *s = remaining;
        }
    }

    /// Apply one round's operations to the graph, the clustering, and the
    /// aggregates in lockstep, mirroring the initial-processing step (§6.1):
    /// added and updated objects enter as fresh singleton clusters, removed
    /// objects leave the clustering, and every change is folded into the
    /// aggregates at O(degree) per operation.  Returns the ids that were
    /// newly isolated (the same contract as `prepare_working_clustering`).
    pub fn apply_batch(
        &mut self,
        graph: &mut SimilarityGraph,
        clustering: &mut Clustering,
        batch: &OperationBatch,
    ) -> Vec<ObjectId> {
        let mut isolated = Vec::new();
        for op in batch.iter() {
            match op {
                Operation::Add { id, record } => {
                    if let Some(cid) = clustering.cluster_of(*id) {
                        // Re-add of a live object: its edges are replaced but
                        // — matching initial processing, which ignores adds of
                        // already-clustered objects — it keeps its cluster.
                        self.apply_remove(graph, clustering, *id, cid);
                        graph.add_object(*id, record.clone());
                        self.apply_add(graph, clustering, *id);
                    } else {
                        graph.add_object(*id, record.clone());
                        let _ = clustering.create_cluster([*id]).expect("fresh object");
                        self.apply_add(graph, clustering, *id);
                        isolated.push(*id);
                    }
                }
                Operation::Remove { id } => {
                    if let Some(cid) = clustering.cluster_of(*id) {
                        self.apply_remove(graph, clustering, *id, cid);
                        clustering.remove_object(*id).expect("object present");
                    }
                    graph.remove_object(*id);
                }
                Operation::Update { id, record } => {
                    if let Some(cid) = clustering.cluster_of(*id) {
                        self.apply_remove(graph, clustering, *id, cid);
                        clustering.remove_object(*id).expect("object present");
                    }
                    graph.update_object(*id, record.clone());
                    if graph.contains(*id) {
                        let _ = clustering
                            .create_cluster([*id])
                            .expect("object just removed");
                        self.apply_add(graph, clustering, *id);
                        isolated.push(*id);
                    }
                }
            }
        }
        isolated
    }

    /// Reassemble an aggregate from validated snapshot parts (see
    /// `persist`).  Deliberately *not* counted as a full build: no graph
    /// edge is touched, and the installed sums keep the exact bits they
    /// were exported with.
    pub(crate) fn from_restored_parts(
        sizes: BTreeMap<ClusterId, usize>,
        intra: BTreeMap<ClusterId, f64>,
        inter: BTreeMap<ClusterId, BTreeMap<ClusterId, f64>>,
    ) -> Self {
        ClusterAggregates {
            sizes,
            intra,
            inter,
        }
    }

    // ------------------------------------------------------------------
    // Internal bookkeeping
    // ------------------------------------------------------------------

    fn add_inter(&mut self, a: ClusterId, b: ClusterId, s: f64) {
        if s == 0.0 || a == b {
            return;
        }
        *self.inter.entry(a).or_default().entry(b).or_insert(0.0) += s;
        *self.inter.entry(b).or_default().entry(a).or_insert(0.0) += s;
    }

    fn sub_inter(&mut self, a: ClusterId, b: ClusterId, s: f64) {
        if s == 0.0 || a == b {
            return;
        }
        let mut prune = false;
        if let Some(v) = self.inter.get_mut(&a).and_then(|m| m.get_mut(&b)) {
            *v -= s;
            prune = v.abs() < RESIDUE_EPSILON;
        }
        if let Some(v) = self.inter.get_mut(&b).and_then(|m| m.get_mut(&a)) {
            *v -= s;
        }
        if prune {
            if let Some(m) = self.inter.get_mut(&a) {
                m.remove(&b);
            }
            if let Some(m) = self.inter.get_mut(&b) {
                m.remove(&a);
            }
        }
    }

    fn sub_intra(&mut self, cid: ClusterId, s: f64) {
        if let Some(v) = self.intra.get_mut(&cid) {
            *v -= s;
            if v.abs() < RESIDUE_EPSILON {
                *v = 0.0;
            }
        }
    }

    fn drop_cluster(&mut self, cid: ClusterId) {
        self.intra.remove(&cid);
        self.sizes.remove(&cid);
        if let Some(m) = self.inter.remove(&cid) {
            for x in m.keys() {
                if let Some(mx) = self.inter.get_mut(x) {
                    mx.remove(&cid);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Member-set and per-object quantities (direct graph walks)
    // ------------------------------------------------------------------

    /// Sum of pairwise similarities inside an explicit member set (used for
    /// hypothetical clusters that are not part of the clustering yet).
    pub fn intra_sum_of_members(graph: &SimilarityGraph, cluster: &Cluster) -> f64 {
        let mut sum = 0.0;
        for a in cluster.iter() {
            for (b, sim) in graph.neighbors(a) {
                // Count each unordered pair once.
                if b > a && cluster.contains(b) {
                    sum += sim;
                }
            }
        }
        sum
    }

    /// Sum of stored similarities between two explicit member sets, walking
    /// the smaller side's edges (the spot query used when no materialized
    /// state is available for the pair).
    pub fn inter_sum_of_members(graph: &SimilarityGraph, ca: &Cluster, cb: &Cluster) -> f64 {
        let (small, large) = if ca.len() <= cb.len() {
            (ca, cb)
        } else {
            (cb, ca)
        };
        let mut sum = 0.0;
        for o in small.iter() {
            for (n, sim) in graph.neighbors(o) {
                if large.contains(n) {
                    sum += sim;
                }
            }
        }
        sum
    }

    /// Average pairwise similarity inside an explicit member set.
    pub fn intra_avg_of_members(graph: &SimilarityGraph, cluster: &Cluster) -> f64 {
        let n = cluster.len();
        if n <= 1 {
            return 1.0;
        }
        let pairs = (n * (n - 1) / 2) as f64;
        Self::intra_sum_of_members(graph, cluster) / pairs
    }

    /// Average similarity between object `oid` and the *other* members of
    /// cluster `cid`.  Returns 1 when the cluster is a singleton (the object
    /// is trivially cohesive with itself).
    pub fn object_cohesion(
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        cid: ClusterId,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        let others = cluster.len().saturating_sub(1);
        if others == 0 {
            return 1.0;
        }
        let mut sum = 0.0;
        for (n, sim) in graph.neighbors(oid) {
            if n != oid && cluster.contains(n) {
                sum += sim;
            }
        }
        sum / others as f64
    }

    /// The split-heuristic weight of §6.3: how *different* the object is from
    /// the rest of its cluster, `1 − object_cohesion`.  Larger weight ⇒ split
    /// out first.
    pub fn split_weight(
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        cid: ClusterId,
    ) -> f64 {
        1.0 - Self::object_cohesion(graph, clustering, oid, cid)
    }

    /// Members of cluster `cid` ranked by decreasing split weight (most
    /// different first), as required by step 1 of the split heuristic.
    pub fn members_by_split_weight(
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
    ) -> Vec<(ObjectId, f64)> {
        let Some(cluster) = clustering.cluster(cid) else {
            return Vec::new();
        };
        let mut weighted: Vec<(ObjectId, f64)> = cluster
            .iter()
            .map(|o| (o, Self::split_weight(graph, clustering, o, cid)))
            .collect();
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        weighted
    }

    /// Average similarity between one object and every member of a *different*
    /// cluster (used when deciding which cluster a new object should join).
    pub fn object_to_cluster_avg(
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        cid: ClusterId,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        if cluster.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (n, sim) in graph.neighbors(oid) {
            if cluster.contains(n) && n != oid {
                sum += sim;
            }
        }
        let denom = if cluster.contains(oid) {
            cluster.len().saturating_sub(1)
        } else {
            cluster.len()
        };
        if denom == 0 {
            0.0
        } else {
            sum / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use crate::measures::SimilarityMeasure;
    use dc_types::{Dataset, Record, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// Measure that declares two records similar iff they share their "group"
    /// field, with a similarity encoded in the "sim" field (test fixture that
    /// gives exact control over the graph weights).
    #[derive(Debug, Clone, Copy)]
    struct FixtureMeasure;

    impl SimilarityMeasure for FixtureMeasure {
        fn similarity(&self, a: &Record, b: &Record) -> f64 {
            let ga = a.field("group").and_then(|f| f.as_text()).unwrap_or("");
            let gb = b.field("group").and_then(|f| f.as_text()).unwrap_or("");
            if ga == gb && !ga.is_empty() {
                let sa = a.field("sim").and_then(|f| f.as_number()).unwrap_or(1.0);
                let sb = b.field("sim").and_then(|f| f.as_number()).unwrap_or(1.0);
                sa.min(sb)
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "fixture"
        }
    }

    fn rec(group: &str, sim: f64) -> Record {
        RecordBuilder::new()
            .text("group", group)
            .number("sim", sim)
            .build()
    }

    /// Builds the Figure 1 "old clustering" scenario:
    /// r1, r2, r3 pairwise similar (0.9); r4, r5 similar (1.0 between them);
    /// clusters C1 = {r1, r2, r3}, C2 = {r4, r5}.
    fn figure1_setup() -> (SimilarityGraph, Clustering) {
        let mut ds = Dataset::new();
        ds.insert_with_id(oid(1), rec("a", 0.9)).unwrap();
        ds.insert_with_id(oid(2), rec("a", 0.9)).unwrap();
        ds.insert_with_id(oid(3), rec("a", 0.9)).unwrap();
        ds.insert_with_id(oid(4), rec("b", 0.8)).unwrap();
        ds.insert_with_id(oid(5), rec("b", 0.8)).unwrap();
        let graph =
            SimilarityGraph::build(GraphConfig::exhaustive(Box::new(FixtureMeasure), 0.1), &ds);
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        (graph, clustering)
    }

    #[test]
    fn intra_sum_and_avg() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        // C1 has 3 pairs each of similarity 0.9.
        assert!((agg.intra_sum(c1) - 2.7).abs() < 1e-9);
        assert!((agg.intra_avg(c1) - 0.9).abs() < 1e-9);
        // C2 has a single pair of similarity 0.8.
        assert!((agg.intra_sum(c2) - 0.8).abs() < 1e-9);
        assert!((agg.intra_avg(c2) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn singleton_cohesion_is_one() {
        let (graph, _) = figure1_setup();
        let clustering = Clustering::singletons([oid(1), oid(2)]);
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c = clustering.cluster_of(oid(1)).unwrap();
        assert_eq!(agg.intra_avg(c), 1.0);
        assert_eq!(
            ClusterAggregates::object_cohesion(&graph, &clustering, oid(1), c),
            1.0
        );
    }

    #[test]
    fn inter_sum_and_avg_between_disjoint_groups() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        // The fixture gives no cross-group similarity.
        assert_eq!(agg.inter_sum(c1, c2), 0.0);
        assert_eq!(agg.inter_avg(c1, c2), 0.0);
        assert_eq!(agg.inter_sum(c1, c1), 0.0);
        assert!(agg.max_inter_avg(c1).is_none());
    }

    #[test]
    fn inter_and_max_inter_with_cross_edges() {
        // Split group "a" across two clusters so there are cross edges.
        let (graph, _) = figure1_setup();
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)], vec![oid(4), oid(5)]])
                .unwrap();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let c12 = clustering.cluster_of(oid(1)).unwrap();
        let c3 = clustering.cluster_of(oid(3)).unwrap();
        // Cross edges: (1,3) and (2,3), each 0.9.
        assert!((agg.inter_sum(c12, c3) - 1.8).abs() < 1e-9);
        assert!((agg.inter_avg(c12, c3) - 0.9).abs() < 1e-9);
        let (best, avg) = agg.max_inter_avg(c3).unwrap();
        assert_eq!(best, c12);
        assert!((avg - 0.9).abs() < 1e-9);
        assert_eq!(agg.neighbour_clusters(c3), vec![c12]);
    }

    #[test]
    fn object_cohesion_and_split_weight_identify_outlier() {
        // Cluster {r1, r2, r3, r4}: r1..r3 mutually similar, r4 unrelated.
        let (graph, _) = figure1_setup();
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)], vec![oid(5)]]).unwrap();
        let big = clustering.cluster_of(oid(1)).unwrap();
        assert!(
            ClusterAggregates::object_cohesion(&graph, &clustering, oid(1), big)
                > ClusterAggregates::object_cohesion(&graph, &clustering, oid(4), big)
        );
        let ranked = ClusterAggregates::members_by_split_weight(&graph, &clustering, big);
        assert_eq!(ranked.first().unwrap().0, oid(4), "outlier ranks first");
        assert!(ranked.first().unwrap().1 > ranked.last().unwrap().1);
    }

    #[test]
    fn object_to_cluster_avg_for_external_object() {
        let (graph, clustering) = figure1_setup();
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        // r3 belongs to C1, so against C1 it averages over the other 2 members.
        assert!(
            (ClusterAggregates::object_to_cluster_avg(&graph, &clustering, oid(3), c1) - 0.9).abs()
                < 1e-9
        );
        // Against C2 it has no edges.
        assert_eq!(
            ClusterAggregates::object_to_cluster_avg(&graph, &clustering, oid(3), c2),
            0.0
        );
    }

    #[test]
    fn missing_clusters_yield_zeroes() {
        let (graph, clustering) = figure1_setup();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let missing = ClusterId::new(9999);
        assert_eq!(agg.intra_sum(missing), 0.0);
        assert_eq!(agg.intra_avg(missing), 0.0);
        assert_eq!(agg.inter_avg(missing, missing), 0.0);
        assert!(agg.max_inter_avg(missing).is_none());
        assert!(
            ClusterAggregates::members_by_split_weight(&graph, &clustering, missing).is_empty()
        );
    }

    #[test]
    fn hypothetical_member_sets_reuse_static_helpers() {
        let (graph, _) = figure1_setup();
        let hypothetical = Cluster::from_members([oid(1), oid(2), oid(4)]);
        // Only the (1,2) edge exists inside this hypothetical cluster.
        assert!(
            (ClusterAggregates::intra_sum_of_members(&graph, &hypothetical) - 0.9).abs() < 1e-9
        );
        let avg = ClusterAggregates::intra_avg_of_members(&graph, &hypothetical);
        assert!((avg - 0.3).abs() < 1e-9);
        // Member-set inter sum: {1,2} vs {3} crosses the (1,3) and (2,3)
        // edges at 0.9 each.
        let left = Cluster::from_members([oid(1), oid(2)]);
        let right = Cluster::from_members([oid(3)]);
        assert!(
            (ClusterAggregates::inter_sum_of_members(&graph, &left, &right) - 1.8).abs() < 1e-9
        );
    }

    #[test]
    fn apply_merge_matches_rebuild() {
        let (graph, mut clustering) = figure1_setup();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c2 = clustering.cluster_of(oid(4)).unwrap();
        let merged = clustering.merge(c1, c2).unwrap();
        agg.apply_merge(c1, c2, merged);
        let rebuilt = ClusterAggregates::new(&graph, &clustering);
        assert_eq!(agg.cluster_ids(), rebuilt.cluster_ids());
        assert!((agg.intra_sum(merged) - rebuilt.intra_sum(merged)).abs() < 1e-9);
        assert_eq!(agg.cluster_size(merged), 5);
        assert!(!agg.contains_cluster(c1));
    }

    #[test]
    fn apply_split_matches_rebuild() {
        let (graph, _) = figure1_setup();
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4), oid(5)]]).unwrap();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let big = clustering.cluster_of(oid(1)).unwrap();
        let part: BTreeSet<ObjectId> = [oid(4), oid(5)].into_iter().collect();
        let (p, r) = clustering.split(big, &part).unwrap();
        agg.apply_split(&graph, &clustering, big, p, r);
        let rebuilt = ClusterAggregates::new(&graph, &clustering);
        for cid in rebuilt.cluster_ids() {
            assert!((agg.intra_sum(cid) - rebuilt.intra_sum(cid)).abs() < 1e-9);
            assert_eq!(agg.cluster_size(cid), rebuilt.cluster_size(cid));
        }
        assert_eq!(agg.neighbour_clusters(p), rebuilt.neighbour_clusters(p));
    }

    #[test]
    fn apply_move_matches_rebuild_and_drops_empty_source() {
        let (graph, _) = figure1_setup();
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)], vec![oid(4), oid(5)]])
                .unwrap();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let c12 = clustering.cluster_of(oid(1)).unwrap();
        let c3 = clustering.cluster_of(oid(3)).unwrap();
        clustering.move_object(oid(3), c12).unwrap();
        agg.apply_move(&graph, &clustering, oid(3), c3, c12);
        let rebuilt = ClusterAggregates::new(&graph, &clustering);
        assert!(!agg.contains_cluster(c3), "empty source cluster is dropped");
        for cid in rebuilt.cluster_ids() {
            assert!((agg.intra_sum(cid) - rebuilt.intra_sum(cid)).abs() < 1e-9);
            assert_eq!(agg.cluster_size(cid), rebuilt.cluster_size(cid));
            assert_eq!(agg.neighbour_clusters(cid), rebuilt.neighbour_clusters(cid));
        }
    }

    #[test]
    fn full_build_counter_increments_per_build() {
        let (graph, clustering) = figure1_setup();
        let before = full_build_count();
        let _a = ClusterAggregates::new(&graph, &clustering);
        let _b = ClusterAggregates::new(&graph, &clustering);
        assert_eq!(full_build_count() - before, 2);
        let _c = ClusterAggregates::empty();
        assert_eq!(full_build_count() - before, 2, "empty() is not a build");
    }

    #[test]
    fn build_counter_scope_reports_builds_and_passes_the_result_through() {
        let (graph, clustering) = figure1_setup();
        let (agg, builds) = BuildCounter::scope(|| ClusterAggregates::new(&graph, &clustering));
        assert_eq!(builds, 1);
        assert_eq!(agg.cluster_count(), clustering.cluster_count());
        let ((), builds) = BuildCounter::scope(|| ());
        assert_eq!(builds, 0);
    }

    #[test]
    fn merge_from_threads_makes_worker_builds_visible_to_a_scope() {
        let (graph, clustering) = figure1_setup();
        let ((), builds) = BuildCounter::scope(|| {
            // Two builds on worker threads, one on the calling thread.  The
            // workers' builds land in *their* thread-local counters; without
            // the merge the scope would report 1.
            let worker_builds: u64 = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        s.spawn(|| {
                            let (_agg, builds) =
                                BuildCounter::scope(|| ClusterAggregates::new(&graph, &clustering));
                            builds
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            let _local = ClusterAggregates::new(&graph, &clustering);
            BuildCounter::merge_from_threads(worker_builds);
        });
        assert_eq!(builds, 3, "scope must see worker builds after the merge");
    }
}
