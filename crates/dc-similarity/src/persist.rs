//! Exact state export / import for the similarity graph and the cluster
//! aggregates — the hooks the `dc-storage` snapshot subsystem is built on.
//!
//! Neither structure can be serialized wholesale: a [`SimilarityGraph`] owns
//! boxed measure/blocking trait objects (its *configuration*, supplied by the
//! caller at open time), and a [`ClusterAggregates`] is meaningful only
//! relative to a `(graph, clustering)` pair.  What *is* persisted is the pure
//! data underneath:
//!
//! * [`GraphState`] — every `(id, record)` pair, every stored edge (each
//!   unordered pair once, `a < b`), and the comparison counter.  Importing
//!   re-indexes the blocking strategy from the records and re-installs the
//!   adjacency *without recomputing a single similarity*: the blocking
//!   indexes are pure set-state (order-independent functions of the live
//!   records), so the reconstructed graph is bit-identical to the exported
//!   one.
//! * [`AggregatesState`] — the materialized sizes / intra sums / upper-
//!   triangle cross-edge sums.  Importing restores the exact `f64` bit
//!   patterns, which is what lets a recovered engine reproduce the exact
//!   merge/split decisions of a never-restarted one (an O(E) rebuild would
//!   re-derive the sums in a different addition order and could flip an
//!   exact tie).  Importing performs **no** full build — the
//!   [`full_build_count`](crate::full_build_count) diagnostic stays put.
//!
//! Both states implement [`BinCodec`]; the file framing (checksums, versions,
//! atomic renames) lives in `dc-storage`.

use crate::aggregates::ClusterAggregates;
use crate::graph::{GraphConfig, SimilarityGraph};
use dc_types::codec::{BinCodec, ByteReader, ByteWriter, CodecError};
use dc_types::{ClusterId, ObjectId, Record};
use std::collections::BTreeMap;

/// The pure data of a [`SimilarityGraph`], decoupled from its configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphState {
    /// Every live `(id, record)` pair, in id order.
    pub records: Vec<(ObjectId, Record)>,
    /// Every stored edge exactly once, as `(a, b, similarity)` with `a < b`,
    /// in lexicographic order.
    pub edges: Vec<(ObjectId, ObjectId, f64)>,
    /// Pairwise similarity computations performed over the graph's lifetime
    /// (restored so recovered work counters match an uninterrupted run).
    pub comparisons: u64,
}

impl BinCodec for GraphState {
    fn encode(&self, w: &mut ByteWriter) {
        self.records.encode(w);
        self.edges.encode(w);
        w.put_u64(self.comparisons);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(GraphState {
            records: Vec::decode(r)?,
            edges: Vec::decode(r)?,
            comparisons: r.get_u64()?,
        })
    }
}

/// The materialized state of a [`ClusterAggregates`], exact to the bit.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatesState {
    /// Cluster sizes.
    pub sizes: Vec<(ClusterId, u64)>,
    /// Per-cluster intra-edge similarity sums.
    pub intra: Vec<(ClusterId, f64)>,
    /// Upper triangle (`a < b`) of the symmetric cross-edge sums.
    pub inter: Vec<(ClusterId, ClusterId, f64)>,
}

impl BinCodec for AggregatesState {
    fn encode(&self, w: &mut ByteWriter) {
        self.sizes.encode(w);
        self.intra.encode(w);
        self.inter.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(AggregatesState {
            sizes: Vec::decode(r)?,
            intra: Vec::decode(r)?,
            inter: Vec::decode(r)?,
        })
    }
}

impl SimilarityGraph {
    /// Export the graph's pure data for snapshotting.  The configuration
    /// (measure, blocking, threshold) is *not* part of the state; the caller
    /// supplies an equivalent [`GraphConfig`] again on import.
    pub fn export_state(&self) -> GraphState {
        let mut records = Vec::with_capacity(self.object_count());
        for id in self.object_ids() {
            records.push((id, self.record(id).expect("live object").clone()));
        }
        GraphState {
            records,
            edges: self.edges().collect(),
            comparisons: self.comparisons(),
        }
    }

    /// Encode the graph's pure data directly into `w`, producing bytes
    /// identical to `self.export_state().encode(w)` — same wire format, same
    /// orders — without materializing a [`GraphState`] (and therefore without
    /// cloning a single [`Record`]).  Checkpoint paths that encode the state
    /// and immediately discard it use this to keep snapshot cost at
    /// O(serialized bytes) instead of O(bytes + record clones).
    pub fn encode_state_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.object_count());
        for id in self.object_ids() {
            id.encode(w);
            self.record(id).expect("live object").encode(w);
        }
        w.put_usize(self.edge_count());
        for (a, b, sim) in self.edges() {
            a.encode(w);
            b.encode(w);
            w.put_f64(sim);
        }
        w.put_u64(self.comparisons());
    }

    /// Reconstruct a graph from an exported state and a configuration
    /// equivalent to the one it was exported under.
    ///
    /// Records are re-indexed into the blocking strategy (pure set-state, so
    /// insertion order does not matter) and the adjacency is re-installed
    /// verbatim; **no similarity is recomputed**, which both makes import
    /// O(V + E) and guarantees the stored edge weights keep their exact
    /// bits.  Edges referencing unknown objects, self-loops, duplicate
    /// edges, or violations of the `a < b` canonical form are rejected.
    pub fn import_state(config: GraphConfig, state: GraphState) -> Result<Self, CodecError> {
        let mut graph = SimilarityGraph::empty(config);
        for (id, record) in &state.records {
            if graph.restore_record(*id, record.clone()).is_some() {
                return Err(CodecError::Invalid(format!("duplicate record for {id}")));
            }
        }
        for &(a, b, sim) in &state.edges {
            if a >= b {
                return Err(CodecError::Invalid(format!(
                    "edge ({a}, {b}) violates the a < b canonical form"
                )));
            }
            if !graph.contains(a) || !graph.contains(b) {
                return Err(CodecError::Invalid(format!(
                    "edge ({a}, {b}) references an unknown object"
                )));
            }
            if !graph.restore_edge(a, b, sim) {
                return Err(CodecError::Invalid(format!("duplicate edge ({a}, {b})")));
            }
        }
        graph.restore_comparisons(state.comparisons);
        Ok(graph)
    }
}

impl ClusterAggregates {
    /// Export the materialized aggregate state, exact to the bit.
    pub fn export_state(&self) -> AggregatesState {
        let mut sizes = Vec::with_capacity(self.cluster_count());
        let mut intra = Vec::with_capacity(self.cluster_count());
        let mut inter = Vec::new();
        for cid in self.cluster_ids() {
            sizes.push((cid, self.cluster_size(cid) as u64));
            intra.push((cid, self.intra_sum(cid)));
            for (other, sum) in self.neighbour_cluster_sums(cid) {
                if cid < other {
                    inter.push((cid, other, sum));
                }
            }
        }
        AggregatesState {
            sizes,
            intra,
            inter,
        }
    }

    /// Rebuild an aggregate from an exported state.
    ///
    /// This is *not* a full build — it installs the recorded sums verbatim
    /// (symmetrizing the upper triangle) without touching any graph edge, so
    /// [`full_build_count`](crate::full_build_count) is unaffected and the
    /// restored sums carry the exact bits of the exported ones.
    pub fn import_state(state: AggregatesState) -> Result<Self, CodecError> {
        let mut sizes = BTreeMap::new();
        let mut intra = BTreeMap::new();
        let mut inter: BTreeMap<ClusterId, BTreeMap<ClusterId, f64>> = BTreeMap::new();
        for &(cid, size) in &state.sizes {
            if size == 0 {
                return Err(CodecError::Invalid(format!("cluster {cid} has size 0")));
            }
            if sizes.insert(cid, size as usize).is_some() {
                return Err(CodecError::Invalid(format!("duplicate cluster {cid}")));
            }
            inter.insert(cid, BTreeMap::new());
        }
        for &(cid, sum) in &state.intra {
            if !sizes.contains_key(&cid) {
                return Err(CodecError::Invalid(format!("intra sum for unknown {cid}")));
            }
            if intra.insert(cid, sum).is_some() {
                return Err(CodecError::Invalid(format!("duplicate intra sum {cid}")));
            }
        }
        if intra.len() != sizes.len() {
            return Err(CodecError::Invalid(
                "every cluster needs exactly one intra sum".into(),
            ));
        }
        for &(a, b, sum) in &state.inter {
            if a >= b {
                return Err(CodecError::Invalid(format!(
                    "inter sum ({a}, {b}) violates the a < b canonical form"
                )));
            }
            if !sizes.contains_key(&a) || !sizes.contains_key(&b) {
                return Err(CodecError::Invalid(format!(
                    "inter sum ({a}, {b}) references an unknown cluster"
                )));
            }
            let dup = inter
                .get_mut(&a)
                .expect("seeded above")
                .insert(b, sum)
                .is_some();
            inter.get_mut(&b).expect("seeded above").insert(a, sum);
            if dup {
                return Err(CodecError::Invalid(format!(
                    "duplicate inter sum ({a}, {b})"
                )));
            }
        }
        Ok(ClusterAggregates::from_restored_parts(sizes, intra, inter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::graph_from_edges;
    use crate::full_build_count;
    use dc_types::Clustering;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn sample_graph() -> SimilarityGraph {
        graph_from_edges(5, &[(1, 2, 0.9), (2, 3, 0.7), (4, 5, 0.55)])
    }

    #[test]
    fn graph_state_roundtrips_through_the_codec() {
        let state = sample_graph().export_state();
        let bytes = state.encode_to_vec();
        assert_eq!(GraphState::decode_exact(&bytes).unwrap(), state);
    }

    #[test]
    fn borrowed_graph_encode_matches_the_exported_state_bytes() {
        let graph = sample_graph();
        let mut w = ByteWriter::new();
        graph.encode_state_into(&mut w);
        assert_eq!(w.into_bytes(), graph.export_state().encode_to_vec());
    }

    #[test]
    fn graph_import_restores_objects_edges_and_counters() {
        let graph = sample_graph();
        let state = graph.export_state();
        let restored = SimilarityGraph::import_state(graph.config().clone(), state).unwrap();
        assert_eq!(restored.object_count(), graph.object_count());
        assert_eq!(restored.edge_count(), graph.edge_count());
        assert_eq!(restored.comparisons(), graph.comparisons());
        for a in graph.object_ids() {
            for (b, sim) in graph.neighbors(a) {
                assert_eq!(restored.similarity(a, b).to_bits(), sim.to_bits());
            }
        }
        // The re-indexed blocking keeps working: a new object still finds
        // its candidates.
        let mut restored = restored;
        restored.add_object(oid(9), crate::fixtures::fixture_record(1));
        assert!(restored.similarity(oid(9), oid(1)) > 0.0);
    }

    #[test]
    fn graph_import_rejects_corrupt_states() {
        let graph = sample_graph();
        let config = || graph.config().clone();
        let mut bad = graph.export_state();
        bad.edges.push((oid(99), oid(100), 0.5));
        assert!(SimilarityGraph::import_state(config(), bad).is_err());
        let mut bad = graph.export_state();
        bad.edges[0] = (bad.edges[0].1, bad.edges[0].0, bad.edges[0].2);
        assert!(SimilarityGraph::import_state(config(), bad).is_err());
        let mut bad = graph.export_state();
        let dup = bad.edges[0];
        bad.edges.push(dup);
        assert!(SimilarityGraph::import_state(config(), bad).is_err());
        let mut bad = graph.export_state();
        let dup = bad.records[0].clone();
        bad.records.push(dup);
        assert!(SimilarityGraph::import_state(config(), bad).is_err());
    }

    #[test]
    fn aggregates_state_roundtrips_bit_exactly_without_a_build() {
        let graph = sample_graph();
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)], vec![oid(4), oid(5)]])
                .unwrap();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let state = agg.export_state();
        let bytes = state.encode_to_vec();
        assert_eq!(AggregatesState::decode_exact(&bytes).unwrap(), state);

        let builds_before = full_build_count();
        let restored = ClusterAggregates::import_state(state).unwrap();
        assert_eq!(
            full_build_count(),
            builds_before,
            "import must not count as a full build"
        );
        assert_eq!(restored.cluster_ids(), agg.cluster_ids());
        for cid in agg.cluster_ids() {
            assert_eq!(restored.cluster_size(cid), agg.cluster_size(cid));
            assert_eq!(
                restored.intra_sum(cid).to_bits(),
                agg.intra_sum(cid).to_bits()
            );
            for (other, sum) in agg.neighbour_cluster_sums(cid) {
                assert_eq!(restored.inter_sum(cid, other).to_bits(), sum.to_bits());
            }
        }
    }

    #[test]
    fn aggregates_import_rejects_corrupt_states() {
        let graph = sample_graph();
        let clustering = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        let agg = ClusterAggregates::new(&graph, &clustering);
        let mut bad = agg.export_state();
        bad.sizes[0].1 = 0;
        assert!(ClusterAggregates::import_state(bad).is_err());
        let mut bad = agg.export_state();
        bad.intra.clear();
        assert!(ClusterAggregates::import_state(bad).is_err());
        let mut bad = agg.export_state();
        bad.inter
            .push((ClusterId::new(998), ClusterId::new(999), 1.0));
        assert!(ClusterAggregates::import_state(bad).is_err());
    }
}
