//! Low-level text utilities: tokenization, character n-grams, and edit
//! distance.  These back the textual similarity measures of [`crate::measures`].

use std::collections::BTreeSet;

/// Split a string into lowercase alphanumeric tokens.
///
/// Punctuation and other non-alphanumeric characters act as separators, so
/// `"MacQueen, J. (1967)"` tokenizes to `["macqueen", "j", "1967"]`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// The set of distinct lowercase tokens of a string.
pub fn token_set(text: &str) -> BTreeSet<String> {
    tokenize(text).into_iter().collect()
}

/// The multiset of character n-grams of a string (as a sorted vector of
/// grams, with duplicates preserved so cosine similarity can use counts).
///
/// The string is lowercased and padded with `#` on both sides, the standard
/// trick that lets grams capture word boundaries.  Strings shorter than `n`
/// yield a single padded gram.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    let padded: Vec<char> = std::iter::repeat_n('#', n - 1)
        .chain(text.to_lowercase().chars())
        .chain(std::iter::repeat_n('#', n - 1))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded
        .windows(n)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// Character trigrams (`n = 3`), the unit used by the MusicBrainz-style
/// cosine trigram similarity of the paper.
pub fn trigrams(text: &str) -> Vec<String> {
    char_ngrams(text, 3)
}

/// Levenshtein edit distance between two strings (unit costs).
///
/// Runs in `O(|a| · |b|)` time and `O(min(|a|, |b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension to minimize memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = if lc == sc { 0 } else { 1 };
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 − d(a, b) / max(|a|, |b|)`, with two empty strings defined as similarity 1.
///
/// This is the simple length-normalized variant; the paper cites the
/// Yujian–Bo normalized metric, which orders pairs identically for the
/// record-linkage workloads used here.
pub fn normalized_levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaccard similarity of two sets.
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Cosine similarity between two bags (multisets) of items given as sorted
/// gram vectors.
pub fn cosine_of_bags(a: &[String], b: &[String]) -> f64 {
    use std::collections::BTreeMap;
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let mut ca: BTreeMap<&str, f64> = BTreeMap::new();
    for g in a {
        *ca.entry(g.as_str()).or_insert(0.0) += 1.0;
    }
    let mut cb: BTreeMap<&str, f64> = BTreeMap::new();
    for g in b {
        *cb.entry(g.as_str()).or_insert(0.0) += 1.0;
    }
    let dot: f64 = ca
        .iter()
        .filter_map(|(g, &x)| cb.get(g).map(|&y| x * y))
        .sum();
    let na: f64 = ca.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_non_alphanumerics_and_lowercases() {
        assert_eq!(
            tokenize("MacQueen, J. (1967) K-Means!"),
            vec!["macqueen", "j", "1967", "k", "means"]
        );
        assert!(tokenize("  ,;!  ").is_empty());
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn token_set_deduplicates() {
        let s = token_set("a b a B");
        assert_eq!(s.len(), 2);
        assert!(s.contains("a") && s.contains("b"));
    }

    #[test]
    fn trigrams_include_boundary_padding() {
        let g = trigrams("ab");
        // "##a", "#ab", "ab#", "b##"
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], "##a");
        assert_eq!(g[3], "b##");
    }

    #[test]
    fn ngrams_handle_short_strings() {
        // An empty string still yields boundary-only grams.
        assert_eq!(
            char_ngrams("", 3),
            vec!["###".to_string(), "###".to_string()]
        );
        assert_eq!(char_ngrams("a", 1), vec!["a".to_string()]);
        assert_eq!(char_ngrams("a", 3), vec!["##a", "#a#", "a##"]);
    }

    #[test]
    #[should_panic]
    fn ngrams_reject_zero_n() {
        char_ngrams("abc", 0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein_similarity("", ""), 1.0);
        assert_eq!(normalized_levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein_similarity("abc", "xyz"), 0.0);
        let s = normalized_levenshtein_similarity("kitten", "sitting");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn jaccard_known_values() {
        let a: BTreeSet<_> = ["a", "b", "c"].into_iter().collect();
        let b: BTreeSet<_> = ["b", "c", "d"].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        let empty: BTreeSet<&str> = BTreeSet::new();
        assert_eq!(jaccard(&a, &empty), 0.0);
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &a), 1.0);
    }

    #[test]
    fn cosine_of_bags_known_values() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["x".to_string(), "y".to_string()];
        assert!((cosine_of_bags(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec!["z".to_string()];
        assert_eq!(cosine_of_bags(&a, &c), 0.0);
        assert_eq!(cosine_of_bags(&[], &[]), 1.0);
        assert_eq!(cosine_of_bags(&a, &[]), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn levenshtein_is_symmetric_and_bounded(a in ".{0,24}", b in ".{0,24}") {
            let d1 = levenshtein(&a, &b);
            let d2 = levenshtein(&b, &a);
            prop_assert_eq!(d1, d2);
            prop_assert!(d1 <= a.chars().count().max(b.chars().count()));
        }

        #[test]
        fn levenshtein_identity(a in ".{0,24}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn levenshtein_triangle_inequality(a in "[a-c]{0,10}", b in "[a-c]{0,10}", c in "[a-c]{0,10}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn normalized_similarity_in_unit_interval(a in ".{0,24}", b in ".{0,24}") {
            let s = normalized_levenshtein_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_in_unit_interval(a in proptest::collection::btree_set("[a-e]{1,3}", 0..8),
                                    b in proptest::collection::btree_set("[a-e]{1,3}", 0..8)) {
            let s = jaccard(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((jaccard(&b, &a) - s).abs() < 1e-12);
        }

        #[test]
        fn cosine_in_unit_interval(a in "[a-d]{0,16}", b in "[a-d]{0,16}") {
            let s = cosine_of_bags(&trigrams(&a), &trigrams(&b));
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }
}
