//! Candidate-pair generation (blocking).
//!
//! Building a similarity graph by comparing every pair of objects costs
//! `O(n²)` comparisons, which is infeasible for the larger datasets of the
//! paper (3D Road Network has hundreds of thousands of points).  Blocking
//! groups objects into (possibly overlapping) blocks such that objects that
//! could plausibly be similar share at least one block; only pairs within a
//! block are compared.
//!
//! Two strategies are provided, matching the two data families of the paper:
//!
//! * [`TokenBlocking`] — textual records share a block when they share a
//!   token (standard record-linkage blocking).
//! * [`GridBlocking`] — numeric records are bucketed into hypercube cells of
//!   a configurable width; each record is compared against records in its
//!   own and all neighbouring cells, which covers every pair within one cell
//!   width of each other.
//!
//! A strategy only proposes *candidates*: the similarity graph still computes
//! the exact similarity for every candidate pair and applies its threshold.

use dc_types::{Dataset, ObjectId, Record};
use std::collections::{BTreeMap, BTreeSet};

/// A strategy for proposing candidate ids that may be similar to a record.
pub trait BlockingStrategy: Send + Sync + CloneBlocking {
    /// Index a record under its id (called for every live object).
    fn index(&mut self, id: ObjectId, record: &Record);

    /// Remove a record from the index.
    fn unindex(&mut self, id: ObjectId, record: &Record);

    /// Forget every indexed record, returning the strategy to its freshly
    /// constructed state.  [`SimilarityGraph`](crate::SimilarityGraph) calls
    /// this when adopting a configuration, so a config cloned off a live
    /// graph does not smuggle that graph's index into the new one (which
    /// would corrupt candidate generation — e.g. updated objects would stay
    /// findable under their old tokens).
    fn reset(&mut self);

    /// Objects that share at least one block with `record` (may include ids
    /// that are not live any more or the queried id itself; callers filter).
    fn candidates(&self, record: &Record) -> BTreeSet<ObjectId>;

    /// The record's canonical *routing key*: a pure, total function of the
    /// record's content used by [`ShardRouter`](crate::ShardRouter) to pick
    /// a shard.  Strategies derive it from the same key material as their
    /// blocks (the smallest token for [`TokenBlocking`], the grid cell for
    /// [`GridBlocking`]), so records that routing separates would mostly not
    /// have shared a block anyway — routing and blocking agree.
    ///
    /// Must not depend on the strategy's mutable index state: the same
    /// record yields the same key no matter what has been indexed, unindexed
    /// or reset before the call.
    fn shard_key(&self, record: &Record) -> u64 {
        crate::router::content_shard_key(record)
    }

    /// The record's **full** hashed block-key set: one `u64` per block the
    /// strategy would index the record under, sorted and deduplicated.
    ///
    /// Where [`BlockingStrategy::shard_key`] is the single canonical routing
    /// key, this is the complete key material — the
    /// [`BoundaryIndex`](crate::BoundaryIndex) uses it to find records whose
    /// blocks collide *across* shards (records that sharding routed apart
    /// even though blocking would have compared them).  Like `shard_key` it
    /// must be a pure, total function of the record's content, independent
    /// of the strategy's mutable index state.  Query-time restrictions that
    /// depend on index state (e.g. [`TokenBlocking`]'s stop-word cutoff) are
    /// deliberately ignored: the key set is a conservative superset of the
    /// blocks the live index would consult.
    ///
    /// The default is the canonical shard key alone, which is exact for
    /// strategies whose blocks are a pure function of that one key.
    /// Strategies with a different block structure must override it —
    /// [`ExhaustiveBlocking`] puts every record into one universal block,
    /// [`TokenBlocking`] has one block per token.
    fn block_keys(&self, record: &Record) -> Vec<u64> {
        vec![self.shard_key(record)]
    }

    /// The hashed keys the strategy would *probe* when generating candidates
    /// for `record` — a superset of [`BlockingStrategy::block_keys`] for
    /// strategies whose candidate generation looks beyond the record's own
    /// blocks ([`GridBlocking`] probes all neighbouring cells).  Two records
    /// are candidate pairs exactly when one's probe keys intersect the
    /// other's block keys; for every built-in strategy that relation is
    /// symmetric, which is what lets the boundary index look the pair up
    /// from either side.
    fn probe_keys(&self, record: &Record) -> Vec<u64> {
        self.block_keys(record)
    }

    /// Human-readable name.
    fn name(&self) -> &'static str;
}

crate::measures::clone_boxed_trait! {
    /// Object-safe cloning for boxed blocking strategies, blanket-implemented
    /// for every `Clone` strategy (mirrors
    /// [`CloneMeasure`](crate::measures::CloneMeasure)).
    CloneBlocking::clone_blocking for BlockingStrategy
}

/// Token blocking for textual records.
///
/// Tokens that occur in more than `max_block_size` records are considered
/// stop words and are skipped when *querying* (they would otherwise make the
/// candidate sets quadratic in practice); they are still indexed so the limit
/// can adapt as data grows.
#[derive(Debug, Clone, Default)]
pub struct TokenBlocking {
    blocks: BTreeMap<String, BTreeSet<ObjectId>>,
    max_block_size: usize,
}

impl TokenBlocking {
    /// Create a token-blocking index; `max_block_size = 0` disables the stop
    /// word cutoff.
    pub fn new(max_block_size: usize) -> Self {
        TokenBlocking {
            blocks: BTreeMap::new(),
            max_block_size,
        }
    }

    fn keys(record: &Record) -> Vec<String> {
        crate::text::token_set(&record.full_text())
            .into_iter()
            .collect()
    }

    /// Number of distinct blocks currently indexed.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

impl BlockingStrategy for TokenBlocking {
    fn index(&mut self, id: ObjectId, record: &Record) {
        for key in Self::keys(record) {
            self.blocks.entry(key).or_default().insert(id);
        }
    }

    fn unindex(&mut self, id: ObjectId, record: &Record) {
        for key in Self::keys(record) {
            if let Some(block) = self.blocks.get_mut(&key) {
                block.remove(&id);
                if block.is_empty() {
                    self.blocks.remove(&key);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.blocks.clear();
    }

    fn candidates(&self, record: &Record) -> BTreeSet<ObjectId> {
        let mut out = BTreeSet::new();
        for key in Self::keys(record) {
            if let Some(block) = self.blocks.get(&key) {
                if self.max_block_size > 0 && block.len() > self.max_block_size {
                    continue;
                }
                out.extend(block.iter().copied());
            }
        }
        out
    }

    fn shard_key(&self, record: &Record) -> u64 {
        // The lexicographically smallest token is the record's primary
        // blocking key; records with no tokens all share one key.
        match Self::keys(record).into_iter().min() {
            Some(token) => crate::router::fnv1a(token.as_bytes()),
            None => crate::router::fnv1a(b""),
        }
    }

    fn block_keys(&self, record: &Record) -> Vec<u64> {
        // One key per token; token-less records fall into the single "empty"
        // block, mirroring `shard_key`.  The stop-word cutoff is ignored —
        // see the trait docs.
        let keys = Self::keys(record);
        let mut out: Vec<u64> = if keys.is_empty() {
            vec![crate::router::fnv1a(b"")]
        } else {
            keys.iter()
                .map(|t| crate::router::fnv1a(t.as_bytes()))
                .collect()
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "token-blocking"
    }
}

/// Grid blocking for numeric records.
///
/// Each record's feature vector is quantized to an integer cell; candidate
/// generation returns every record in the same cell or any of the `3^d − 1`
/// neighbouring cells.  With `cell_width` chosen at (or above) the similarity
/// graph's effective distance cutoff this is lossless for that cutoff.
#[derive(Debug, Clone)]
pub struct GridBlocking {
    cell_width: f64,
    cells: BTreeMap<Vec<i64>, BTreeSet<ObjectId>>,
    /// Dimensionality cap: only the first `max_dims` coordinates participate
    /// in the cell key (neighbour enumeration is exponential in dimension).
    max_dims: usize,
}

impl GridBlocking {
    /// Create a grid with the given cell width (must be positive).  Only the
    /// first `max_dims` dimensions of the vectors participate in blocking.
    pub fn new(cell_width: f64, max_dims: usize) -> Self {
        assert!(cell_width > 0.0, "cell width must be positive");
        assert!((1..=6).contains(&max_dims), "max_dims must be in 1..=6");
        GridBlocking {
            cell_width,
            cells: BTreeMap::new(),
            max_dims,
        }
    }

    fn cell_of(&self, record: &Record) -> Vec<i64> {
        record
            .vector()
            .iter()
            .take(self.max_dims)
            .map(|&x| (x / self.cell_width).floor() as i64)
            .collect()
    }

    fn neighbour_cells(cell: &[i64]) -> Vec<Vec<i64>> {
        let mut out = vec![Vec::new()];
        for &coord in cell {
            let mut next = Vec::with_capacity(out.len() * 3);
            for prefix in &out {
                for delta in -1..=1 {
                    let mut cur = prefix.clone();
                    cur.push(coord + delta);
                    next.push(cur);
                }
            }
            out = next;
        }
        out
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The canonical hash of one cell — the single encoding shared by
    /// [`BlockingStrategy::shard_key`], `block_keys`, and `probe_keys`, so
    /// routing, indexing, and boundary probing can never drift apart.
    fn hash_cell(cell: &[i64]) -> u64 {
        let mut bytes = Vec::with_capacity(cell.len() * 8);
        for coord in cell {
            bytes.extend_from_slice(&coord.to_le_bytes());
        }
        crate::router::fnv1a(&bytes)
    }
}

impl BlockingStrategy for GridBlocking {
    fn index(&mut self, id: ObjectId, record: &Record) {
        let cell = self.cell_of(record);
        self.cells.entry(cell).or_default().insert(id);
    }

    fn unindex(&mut self, id: ObjectId, record: &Record) {
        let cell = self.cell_of(record);
        if let Some(set) = self.cells.get_mut(&cell) {
            set.remove(&id);
            if set.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }

    fn reset(&mut self) {
        self.cells.clear();
    }

    fn candidates(&self, record: &Record) -> BTreeSet<ObjectId> {
        let cell = self.cell_of(record);
        let mut out = BTreeSet::new();
        for neighbour in Self::neighbour_cells(&cell) {
            if let Some(set) = self.cells.get(&neighbour) {
                out.extend(set.iter().copied());
            }
        }
        out
    }

    fn shard_key(&self, record: &Record) -> u64 {
        Self::hash_cell(&self.cell_of(record))
    }

    fn block_keys(&self, record: &Record) -> Vec<u64> {
        // A record is indexed under exactly its own cell.
        vec![self.shard_key(record)]
    }

    fn probe_keys(&self, record: &Record) -> Vec<u64> {
        // Candidate generation looks at the record's own cell and every
        // neighbouring cell; hashing all of them makes the probe/block
        // collision relation match `candidates` exactly (and it is symmetric,
        // because cell adjacency is).
        let cell = self.cell_of(record);
        let mut out: Vec<u64> = Self::neighbour_cells(&cell)
            .into_iter()
            .map(|neighbour| Self::hash_cell(&neighbour))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn name(&self) -> &'static str {
        "grid-blocking"
    }
}

/// Exhaustive "blocking" that proposes every indexed object.  Exact but
/// quadratic; useful for small datasets and as a correctness oracle in tests.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveBlocking {
    all: BTreeSet<ObjectId>,
}

impl ExhaustiveBlocking {
    /// Create an empty exhaustive index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlockingStrategy for ExhaustiveBlocking {
    fn index(&mut self, id: ObjectId, _record: &Record) {
        self.all.insert(id);
    }

    fn unindex(&mut self, id: ObjectId, _record: &Record) {
        self.all.remove(&id);
    }

    fn reset(&mut self) {
        self.all.clear();
    }

    fn candidates(&self, _record: &Record) -> BTreeSet<ObjectId> {
        self.all.clone()
    }

    fn block_keys(&self, _record: &Record) -> Vec<u64> {
        // Every record lives in the single universal block, so every pair of
        // records collides — exactly the exhaustive candidate semantics.
        // (The *routing* key stays the content hash so records still spread
        // across shards.)
        vec![0]
    }

    fn name(&self) -> &'static str {
        "exhaustive"
    }
}

/// Index every object of a dataset into a strategy (convenience helper used
/// when building a graph from scratch).
pub fn index_dataset(strategy: &mut dyn BlockingStrategy, dataset: &Dataset) {
    for (id, record) in dataset.iter() {
        strategy.index(id, record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_types::RecordBuilder;

    fn textual(s: &str) -> Record {
        RecordBuilder::new().text("t", s).build()
    }

    fn numeric(v: Vec<f64>) -> Record {
        RecordBuilder::new().vector(v).build()
    }

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn token_blocking_links_records_sharing_tokens() {
        let mut b = TokenBlocking::new(0);
        b.index(oid(1), &textual("rock album beatles"));
        b.index(oid(2), &textual("jazz album davis"));
        b.index(oid(3), &textual("rock single stones"));
        let c = b.candidates(&textual("rock compilation"));
        assert!(c.contains(&oid(1)));
        assert!(c.contains(&oid(3)));
        assert!(!c.contains(&oid(2)));
        assert!(b.block_count() >= 6);
    }

    #[test]
    fn token_blocking_unindex_removes_object() {
        let mut b = TokenBlocking::new(0);
        let r = textual("unique marker token");
        b.index(oid(1), &r);
        assert!(b.candidates(&r).contains(&oid(1)));
        b.unindex(oid(1), &r);
        assert!(b.candidates(&r).is_empty());
        assert_eq!(b.block_count(), 0);
    }

    #[test]
    fn token_blocking_skips_oversized_blocks_when_querying() {
        let mut b = TokenBlocking::new(2);
        for i in 0..5 {
            b.index(oid(i), &textual("common"));
        }
        // "common" block has 5 > 2 members, so it is not used for candidates.
        assert!(b.candidates(&textual("common")).is_empty());
        // But rare tokens still work.
        b.index(oid(10), &textual("rare common"));
        let c = b.candidates(&textual("rare"));
        assert_eq!(c.len(), 1);
        assert!(c.contains(&oid(10)));
    }

    #[test]
    fn grid_blocking_returns_same_and_adjacent_cells() {
        let mut g = GridBlocking::new(1.0, 2);
        g.index(oid(1), &numeric(vec![0.1, 0.1]));
        g.index(oid(2), &numeric(vec![0.9, 0.9])); // same cell as (0.1, 0.1)
        g.index(oid(3), &numeric(vec![1.5, 0.5])); // adjacent cell
        g.index(oid(4), &numeric(vec![5.0, 5.0])); // far away
        let c = g.candidates(&numeric(vec![0.2, 0.2]));
        assert!(c.contains(&oid(1)));
        assert!(c.contains(&oid(2)));
        assert!(c.contains(&oid(3)));
        assert!(!c.contains(&oid(4)));
        assert_eq!(g.cell_count(), 3);
    }

    #[test]
    fn grid_blocking_unindex() {
        let mut g = GridBlocking::new(2.0, 3);
        let r = numeric(vec![1.0, 1.0, 1.0]);
        g.index(oid(7), &r);
        assert_eq!(g.cell_count(), 1);
        g.unindex(oid(7), &r);
        assert_eq!(g.cell_count(), 0);
        assert!(g.candidates(&r).is_empty());
    }

    #[test]
    #[should_panic]
    fn grid_blocking_rejects_zero_width() {
        GridBlocking::new(0.0, 2);
    }

    #[test]
    fn grid_neighbour_enumeration_counts() {
        let cells = GridBlocking::neighbour_cells(&[0, 0]);
        assert_eq!(cells.len(), 9);
        let cells = GridBlocking::neighbour_cells(&[1, 2, 3]);
        assert_eq!(cells.len(), 27);
        assert!(cells.contains(&vec![1, 2, 3]));
        assert!(cells.contains(&vec![0, 1, 2]));
        assert!(cells.contains(&vec![2, 3, 4]));
    }

    #[test]
    fn exhaustive_blocking_returns_everything() {
        let mut e = ExhaustiveBlocking::new();
        e.index(oid(1), &textual("a"));
        e.index(oid(2), &numeric(vec![1.0]));
        assert_eq!(e.candidates(&textual("anything")).len(), 2);
        e.unindex(oid(1), &textual("a"));
        assert_eq!(e.candidates(&textual("anything")).len(), 1);
    }

    #[test]
    fn reset_forgets_every_index_entry() {
        let mut b = TokenBlocking::new(0);
        b.index(oid(1), &textual("alpha beta"));
        b.reset();
        assert_eq!(b.block_count(), 0);
        assert!(b.candidates(&textual("alpha")).is_empty());
        let mut g = GridBlocking::new(1.0, 2);
        g.index(oid(1), &numeric(vec![0.5, 0.5]));
        g.reset();
        assert_eq!(g.cell_count(), 0);
        let mut e = ExhaustiveBlocking::new();
        e.index(oid(1), &textual("x"));
        e.reset();
        assert!(e.candidates(&textual("x")).is_empty());
    }

    #[test]
    fn index_dataset_indexes_every_object() {
        let mut ds = Dataset::new();
        ds.insert(textual("x y"));
        ds.insert(textual("y z"));
        let mut b = TokenBlocking::new(0);
        index_dataset(&mut b, &ds);
        assert_eq!(b.candidates(&textual("y")).len(), 2);
    }
}
