//! Property-test harness for the incremental [`ClusterAggregates`]: after an
//! arbitrary sequence of merge / split / move / add / remove / update
//! operations, every materialized aggregate field must equal a from-scratch
//! [`ClusterAggregates::new`] rebuild to 1e-9 (mirroring the dc-objective
//! delta-vs-recompute proptests).

use dc_similarity::blocking::ExhaustiveBlocking;
use dc_similarity::fixtures::{fixture_record, EdgeTableMeasure};
use dc_similarity::{ClusterAggregates, GraphConfig, SimilarityGraph};
use dc_types::{Clustering, ObjectId, Operation, OperationBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

const TOLERANCE: f64 = 1e-9;
/// Objects 1..=LIVE start in the graph; ids above LIVE arrive via `Add`.
const LIVE: u64 = 14;
const UNIVERSE: u64 = 22;

#[derive(Debug, Clone)]
enum Op {
    Merge(usize, usize),
    Isolate(usize),
    SplitHalf(usize),
    Move(usize, usize),
    Add(u64),
    Remove(usize),
    Update(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Merge(a, b)),
        (0usize..32).prop_map(Op::Isolate),
        (0usize..32).prop_map(Op::SplitHalf),
        (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Move(a, b)),
        (1u64..=UNIVERSE).prop_map(Op::Add),
        (0usize..32).prop_map(Op::Remove),
        (0usize..32).prop_map(Op::Update),
    ]
}

fn arbitrary_edges() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    proptest::collection::vec(
        (1u64..=UNIVERSE, 1u64..=UNIVERSE, 0.05f64..1.0)
            .prop_filter("no self loops", |(a, b, _)| a != b),
        0..60,
    )
}

/// A graph whose edge weights come from an explicit table, over the initial
/// live objects, so that added objects connect according to the same table.
fn build_graph(edges: &[(u64, u64, f64)]) -> SimilarityGraph {
    let measure = EdgeTableMeasure::from_edges(edges);
    let config = GraphConfig::new(Box::new(measure), Box::new(ExhaustiveBlocking::new()), 0.0);
    let mut graph = SimilarityGraph::empty(config);
    for id in 1..=LIVE {
        graph.add_object(ObjectId::new(id), fixture_record(id));
    }
    graph
}

fn clustering_from_assignment(graph: &SimilarityGraph, assignment: &[u64]) -> Clustering {
    let mut groups: BTreeMap<u64, Vec<ObjectId>> = BTreeMap::new();
    for (i, &g) in assignment.iter().enumerate() {
        let id = ObjectId::new(i as u64 + 1);
        if graph.contains(id) {
            groups.entry(g).or_default().push(id);
        }
    }
    Clustering::from_groups(groups.into_values()).unwrap()
}

/// Every materialized field of `agg` equals a from-scratch rebuild to 1e-9.
fn assert_matches_rebuild(
    agg: &ClusterAggregates,
    graph: &SimilarityGraph,
    clustering: &Clustering,
) {
    let rebuilt = ClusterAggregates::new(graph, clustering);
    prop_assert_eq!(agg.cluster_ids(), rebuilt.cluster_ids(), "cluster id sets");
    for cid in rebuilt.cluster_ids() {
        prop_assert_eq!(
            agg.cluster_size(cid),
            rebuilt.cluster_size(cid),
            "size {}",
            cid
        );
        prop_assert!(
            (agg.intra_sum(cid) - rebuilt.intra_sum(cid)).abs() < TOLERANCE,
            "intra_sum {}: {} vs {}",
            cid,
            agg.intra_sum(cid),
            rebuilt.intra_sum(cid)
        );
        prop_assert!(
            (agg.intra_avg(cid) - rebuilt.intra_avg(cid)).abs() < TOLERANCE,
            "intra_avg {}",
            cid
        );
        // Neighbour-cluster sums: union of both key sets, missing = 0.
        let a: BTreeMap<_, _> = agg.neighbour_cluster_sums(cid).collect();
        let b: BTreeMap<_, _> = rebuilt.neighbour_cluster_sums(cid).collect();
        for other in a.keys().chain(b.keys()) {
            let va = a.get(other).copied().unwrap_or(0.0);
            let vb = b.get(other).copied().unwrap_or(0.0);
            prop_assert!(
                (va - vb).abs() < TOLERANCE,
                "inter sum {} -> {}: {} vs {}",
                cid,
                other,
                va,
                vb
            );
            prop_assert!(
                (agg.inter_avg(cid, *other) - rebuilt.inter_avg(cid, *other)).abs() < TOLERANCE,
                "inter_avg {} -> {}",
                cid,
                other
            );
        }
        // The maximal average inter-similarity (feature f2) must agree in
        // value; the attaining neighbour may differ only on exact ties.
        let ma = agg.max_inter_avg(cid).map(|(_, v)| v).unwrap_or(0.0);
        let mb = rebuilt.max_inter_avg(cid).map(|(_, v)| v).unwrap_or(0.0);
        prop_assert!((ma - mb).abs() < TOLERANCE, "max_inter_avg {}", cid);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_aggregates_match_rebuild_under_random_operations(
        edges in arbitrary_edges(),
        assignment in proptest::collection::vec(0u64..5, LIVE as usize),
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut graph = build_graph(&edges);
        let mut clustering = clustering_from_assignment(&graph, &assignment);
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        assert_matches_rebuild(&agg, &graph, &clustering);

        for op in ops {
            let cids = clustering.cluster_ids();
            let oids = clustering.object_ids();
            match op {
                Op::Merge(a, b) => {
                    if cids.len() >= 2 {
                        let a = cids[a % cids.len()];
                        let b = cids[b % cids.len()];
                        if a != b {
                            let merged = clustering.merge(a, b).unwrap();
                            agg.apply_merge(a, b, merged);
                        }
                    }
                }
                Op::Isolate(i) => {
                    if oids.is_empty() { continue; }
                    let o = oids[i % oids.len()];
                    let cid = clustering.cluster_of(o).unwrap();
                    if clustering.cluster_size(cid) >= 2 {
                        let part: BTreeSet<ObjectId> = [o].into_iter().collect();
                        let (p, r) = clustering.split(cid, &part).unwrap();
                        agg.apply_split(&graph, &clustering, cid, p, r);
                    }
                }
                Op::SplitHalf(i) => {
                    if cids.is_empty() { continue; }
                    let cid = cids[i % cids.len()];
                    let members: Vec<ObjectId> =
                        clustering.cluster(cid).unwrap().iter().collect();
                    if members.len() >= 2 {
                        let part: BTreeSet<ObjectId> =
                            members[..members.len() / 2].iter().copied().collect();
                        let (p, r) = clustering.split(cid, &part).unwrap();
                        agg.apply_split(&graph, &clustering, cid, p, r);
                    }
                }
                Op::Move(i, j) => {
                    if oids.is_empty() || cids.is_empty() { continue; }
                    let o = oids[i % oids.len()];
                    let target = cids[j % cids.len()];
                    let source = clustering.cluster_of(o).unwrap();
                    if source != target && clustering.contains_cluster(target) {
                        clustering.move_object(o, target).unwrap();
                        agg.apply_move(&graph, &clustering, o, source, target);
                    }
                }
                Op::Add(raw) => {
                    // May be a fresh arrival or a re-add of a live object;
                    // apply_batch handles both.
                    let mut batch = OperationBatch::new();
                    batch.push(Operation::Add {
                        id: ObjectId::new(raw),
                        record: fixture_record(raw),
                    });
                    agg.apply_batch(&mut graph, &mut clustering, &batch);
                }
                Op::Remove(i) => {
                    if oids.is_empty() { continue; }
                    let o = oids[i % oids.len()];
                    let mut batch = OperationBatch::new();
                    batch.push(Operation::Remove { id: o });
                    agg.apply_batch(&mut graph, &mut clustering, &batch);
                }
                Op::Update(i) => {
                    if oids.is_empty() { continue; }
                    let o = oids[i % oids.len()];
                    let mut batch = OperationBatch::new();
                    batch.push(Operation::Update {
                        id: o,
                        record: fixture_record(o.raw()),
                    });
                    agg.apply_batch(&mut graph, &mut clustering, &batch);
                }
            }
            prop_assert!(clustering.check_invariants().is_ok());
            assert_matches_rebuild(&agg, &graph, &clustering);
        }
    }

    /// `apply_batch` over a whole multi-operation batch (not op-by-op) also
    /// lands on the rebuilt state, and reports the isolated ids like the
    /// initial-processing step does.
    #[test]
    fn apply_batch_matches_rebuild(
        edges in arbitrary_edges(),
        assignment in proptest::collection::vec(0u64..4, LIVE as usize),
        arrivals in proptest::collection::vec(1u64..=UNIVERSE, 1..8),
    ) {
        let mut graph = build_graph(&edges);
        let mut clustering = clustering_from_assignment(&graph, &assignment);
        let mut agg = ClusterAggregates::new(&graph, &clustering);

        let mut batch = OperationBatch::new();
        for raw in arrivals {
            batch.push(Operation::Add {
                id: ObjectId::new(raw),
                record: fixture_record(raw),
            });
        }
        let isolated = agg.apply_batch(&mut graph, &mut clustering, &batch);
        // Every genuinely new object must be isolated into a singleton.
        for id in &isolated {
            prop_assert!(clustering.cluster_of(*id).is_some());
            prop_assert!(clustering
                .cluster(clustering.cluster_of(*id).unwrap())
                .unwrap()
                .is_singleton());
        }
        prop_assert!(clustering.check_invariants().is_ok());
        assert_matches_rebuild(&agg, &graph, &clustering);
    }
}
