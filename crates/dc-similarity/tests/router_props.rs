//! Property tests for the [`ShardRouter`] invariants the sharded engine
//! builds on:
//!
//! 1. routing is a **total, stable** function: every record routes, the
//!    result is `< n_shards`, and the same record routes identically across
//!    calls and across arbitrary Add/Update/Remove histories (the router is
//!    stateless);
//! 2. [`ShardRouter::split_batch`] is a **permutation-free partition** of
//!    the input batch: every operation lands in exactly one sub-batch, each
//!    sub-batch is an order-preserving subsequence of the input, and the
//!    lengths add up;
//! 3. the assignment is **sticky and exclusive**: after any sequence of
//!    batches, every live object is owned by exactly one shard, and every
//!    operation on a live object was sent to its owner.

use dc_similarity::blocking::{GridBlocking, TokenBlocking};
use dc_similarity::ShardRouter;
use dc_types::codec::BinCodec;
use dc_types::{ObjectId, Operation, OperationBatch, Record, RecordBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

const VOCAB: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

/// A record with 1..=3 vocabulary tokens and a small 2-d vector, so both
/// token and grid routing have key material.
fn record_strategy() -> impl Strategy<Value = Record> {
    (0usize..8, 0usize..8, 0usize..8, 0i64..6, 0i64..6).prop_map(|(a, b, c, x, y)| {
        RecordBuilder::new()
            .text("t", format!("{} {} {}", VOCAB[a], VOCAB[b], VOCAB[c]))
            .vector(vec![x as f64 * 0.7, y as f64 * 0.7])
            .build()
    })
}

#[derive(Debug, Clone)]
enum Op {
    Add(u64, Record),
    Update(u64, Record),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16, record_strategy()).prop_map(|(id, r)| Op::Add(id, r)),
        (0u64..16, record_strategy()).prop_map(|(id, r)| Op::Update(id, r)),
        (0u64..16).prop_map(Op::Remove),
    ]
}

fn to_operation(op: &Op) -> Operation {
    match op {
        Op::Add(id, record) => Operation::Add {
            id: ObjectId::new(*id),
            record: record.clone(),
        },
        Op::Update(id, record) => Operation::Update {
            id: ObjectId::new(*id),
            record: record.clone(),
        },
        Op::Remove(id) => Operation::Remove {
            id: ObjectId::new(*id),
        },
    }
}

/// Group a flat op sequence into batches of at most 5 operations.
fn to_batches(ops: &[Op]) -> Vec<OperationBatch> {
    ops.chunks(5)
        .map(|chunk| OperationBatch::from_ops(chunk.iter().map(to_operation).collect()))
        .collect()
}

fn routers() -> Vec<(&'static str, ShardRouter)> {
    vec![
        (
            "token-1",
            ShardRouter::new(1, Box::new(TokenBlocking::new(0))),
        ),
        (
            "token-4",
            ShardRouter::new(4, Box::new(TokenBlocking::new(0))),
        ),
        (
            "grid-3",
            ShardRouter::new(3, Box::new(GridBlocking::new(1.0, 2))),
        ),
    ]
}

/// `sub` is an order-preserving subsequence of `full`.
fn is_subsequence(sub: &OperationBatch, full: &OperationBatch) -> bool {
    let mut it = full.iter();
    'outer: for needle in sub.iter() {
        for candidate in it.by_ref() {
            if candidate == needle {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Routing is total, in range, and independent of any mutation history.
    #[test]
    fn routing_is_total_and_stable(records in proptest::collection::vec(record_strategy(), 1..20),
                                   ops in proptest::collection::vec(op_strategy(), 0..40)) {
        for (name, router) in routers() {
            let before: Vec<usize> = records.iter().map(|r| router.route(r)).collect();
            for shard in &before {
                prop_assert!(*shard < router.n_shards(), "{name}: shard out of range");
            }
            // Splitting arbitrary batches through the router must not change
            // what it says about any record (the router is stateless).
            let mut assignment = BTreeMap::new();
            for batch in to_batches(&ops) {
                router.split_batch(&batch, &mut assignment);
            }
            let after: Vec<usize> = records.iter().map(|r| router.route(r)).collect();
            prop_assert_eq!(&before, &after, "{}: routing drifted", name);
            // And a repeated call agrees with itself.
            let again: Vec<usize> = records.iter().map(|r| router.route(r)).collect();
            prop_assert_eq!(&after, &again, "{}: routing is unstable", name);
        }
    }

    /// Sub-batches are a permutation-free partition of the input batch.
    #[test]
    fn split_is_a_permutation_free_partition(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        for (name, router) in routers() {
            let mut assignment = BTreeMap::new();
            for batch in to_batches(&ops) {
                let subs = router.split_batch(&batch, &mut assignment);
                prop_assert_eq!(subs.len(), router.n_shards(), "{}: one sub-batch per shard", name);
                let total: usize = subs.iter().map(OperationBatch::len).sum();
                prop_assert_eq!(total, batch.len(), "{}: operations lost or duplicated", name);
                for sub in &subs {
                    prop_assert!(
                        is_subsequence(sub, &batch),
                        "{name}: sub-batch is not an order-preserving subsequence"
                    );
                }
                // Partition: the multiset union of the sub-batches is the
                // input batch (keyed by the operations' exact wire encoding,
                // since `Operation` is not `Ord`).
                let mut expected: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
                for op in batch.iter() {
                    *expected.entry(op.encode_to_vec()).or_default() += 1;
                }
                let mut actual: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
                for op in subs.iter().flat_map(OperationBatch::iter) {
                    *actual.entry(op.encode_to_vec()).or_default() += 1;
                }
                prop_assert_eq!(&expected, &actual, "{}: not a partition", name);
            }
        }
    }

    /// Every live object is owned by exactly one shard, operations follow
    /// the owner, and the assignment matches a replay of the sub-batches.
    #[test]
    fn assignment_is_sticky_and_exclusive(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        for (name, router) in routers() {
            let mut assignment = BTreeMap::new();
            // Per-shard live sets rebuilt purely from the sub-batches.
            let mut live: Vec<std::collections::BTreeSet<ObjectId>> =
                vec![Default::default(); router.n_shards()];
            for batch in to_batches(&ops) {
                let subs = router.split_batch(&batch, &mut assignment);
                for (shard, sub) in subs.iter().enumerate() {
                    for op in sub.iter() {
                        match op {
                            Operation::Add { id, .. } | Operation::Update { id, .. } => {
                                live[shard].insert(*id);
                            }
                            Operation::Remove { id } => {
                                live[shard].remove(id);
                            }
                        }
                    }
                }
                // The shard-local live sets must be pairwise disjoint and
                // agree exactly with the router's assignment map.
                let mut seen = std::collections::BTreeSet::new();
                for (shard, set) in live.iter().enumerate() {
                    for id in set {
                        prop_assert!(seen.insert(*id), "{name}: {id} lives in two shards");
                        prop_assert_eq!(
                            assignment.get(id).copied(),
                            Some(shard),
                            "{}: assignment disagrees with the sub-batch replay",
                            name
                        );
                    }
                }
                prop_assert_eq!(seen.len(), assignment.len(), "{}: stale assignment entries", name);
            }
        }
    }
}
