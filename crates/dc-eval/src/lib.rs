//! # dc-eval
//!
//! Clustering-quality metrics.
//!
//! The paper measures the quality of a dynamic method by comparing its
//! clustering against the clustering produced by the batch algorithm on the
//! same data (the batch result is taken as ground truth, §7.1
//! "Measurement").  The reported metrics are the pair-counting F1 measure,
//! precision, recall, purity, and inverse purity — all implemented here over
//! plain [`Clustering`] values so they can also be used against synthetic
//! ground-truth entity labels.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod pairs;
pub mod purity;

pub use pairs::{pair_counts, PairCounts};
pub use purity::{inverse_purity, purity};

use dc_types::Clustering;

/// A bundle of every quality metric the paper reports (Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Pair-counting precision.
    pub precision: f64,
    /// Pair-counting recall.
    pub recall: f64,
    /// Pair-counting F1.
    pub f1: f64,
    /// Purity (every result cluster mapped to its best reference cluster).
    pub purity: f64,
    /// Inverse purity (every reference cluster mapped to its best result
    /// cluster).
    pub inverse_purity: f64,
}

/// Compute the full quality report of `result` against `reference`.
pub fn quality_report(result: &Clustering, reference: &Clustering) -> QualityReport {
    let counts = pair_counts(result, reference);
    QualityReport {
        precision: counts.precision(),
        recall: counts.recall(),
        f1: counts.f1(),
        purity: purity(result, reference),
        inverse_purity: inverse_purity(result, reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_types::ObjectId;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn identical_clusterings_score_perfectly() {
        let c =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4), oid(5)]]).unwrap();
        let r = quality_report(&c, &c);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.purity, 1.0);
        assert_eq!(r.inverse_purity, 1.0);
    }

    #[test]
    fn report_reflects_partial_agreement() {
        let reference =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        let result =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)], vec![oid(4), oid(5)]])
                .unwrap();
        let r = quality_report(&result, &reference);
        // The result misses the (1,3) and (2,3) pairs but invents none.
        assert_eq!(r.precision, 1.0);
        assert!(r.recall < 1.0 && r.recall > 0.0);
        assert!(r.f1 < 1.0 && r.f1 > 0.0);
        assert_eq!(r.purity, 1.0);
        assert!(r.inverse_purity < 1.0);
    }
}
