//! Pair-counting precision / recall / F1.
//!
//! Two objects form a *positive pair* in a clustering when they share a
//! cluster.  Taking the reference clustering (the batch result or the
//! synthetic ground truth) as the truth:
//!
//! * precision — of the pairs the result puts together, the fraction the
//!   reference also puts together;
//! * recall — of the pairs the reference puts together, the fraction the
//!   result also puts together;
//! * F1 — their harmonic mean (the "pair counting F1 measure" of §7.1).
//!
//! Only objects present in **both** clusterings participate, so a result
//! computed before some objects arrived can still be compared against a
//! later reference.

use dc_types::{Clustering, ObjectId};
use std::collections::BTreeMap;

/// Pair agreement counts between a result and a reference clustering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs together in both clusterings.
    pub together_both: u64,
    /// Pairs together in the result but apart in the reference.
    pub together_result_only: u64,
    /// Pairs together in the reference but apart in the result.
    pub together_reference_only: u64,
}

impl PairCounts {
    /// Pair-counting precision (1.0 when the result creates no pairs).
    pub fn precision(&self) -> f64 {
        let denom = self.together_both + self.together_result_only;
        if denom == 0 {
            return 1.0;
        }
        self.together_both as f64 / denom as f64
    }

    /// Pair-counting recall (1.0 when the reference has no pairs).
    pub fn recall(&self) -> f64 {
        let denom = self.together_both + self.together_reference_only;
        if denom == 0 {
            return 1.0;
        }
        self.together_both as f64 / denom as f64
    }

    /// Pair-counting F1.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Count pair agreements between `result` and `reference` over their common
/// objects.
///
/// The computation is `O(n · max cluster size)` rather than `O(n²)`: for each
/// cluster of the result, objects are grouped by their reference cluster and
/// the pair counts are derived from the group sizes.
pub fn pair_counts(result: &Clustering, reference: &Clustering) -> PairCounts {
    // Objects present in both clusterings.
    let common: Vec<ObjectId> = result
        .object_ids()
        .into_iter()
        .filter(|o| reference.contains_object(*o))
        .collect();

    let choose2 = |n: u64| n * n.saturating_sub(1) / 2;

    // Pairs together in the result (restricted to common objects), and of
    // those, pairs also together in the reference.
    let mut together_result = 0u64;
    let mut together_both = 0u64;
    for (_, cluster) in result.iter() {
        let mut by_reference: BTreeMap<_, u64> = BTreeMap::new();
        let mut in_common = 0u64;
        for o in cluster.iter() {
            if let Some(ref_cid) = reference.cluster_of(o) {
                in_common += 1;
                *by_reference.entry(ref_cid).or_insert(0) += 1;
            }
        }
        together_result += choose2(in_common);
        for (_, count) in by_reference {
            together_both += choose2(count);
        }
    }

    // Pairs together in the reference (restricted to common objects).
    let mut together_reference = 0u64;
    for (_, cluster) in reference.iter() {
        let in_common = cluster
            .iter()
            .filter(|o| result.contains_object(*o))
            .count() as u64;
        together_reference += choose2(in_common);
    }

    let _ = common; // `common` documents the restriction; counts already honour it.

    PairCounts {
        together_both,
        together_result_only: together_result - together_both,
        together_reference_only: together_reference - together_both,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn identical_clusterings_have_perfect_scores() {
        let c = Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4)]]).unwrap();
        let p = pair_counts(&c, &c);
        assert_eq!(p.together_both, 3);
        assert_eq!(p.together_result_only, 0);
        assert_eq!(p.together_reference_only, 0);
        assert_eq!(p.f1(), 1.0);
    }

    #[test]
    fn completely_disjoint_pairings_score_zero_f1() {
        let result = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let reference =
            Clustering::from_groups([vec![oid(1), oid(3)], vec![oid(2), oid(4)]]).unwrap();
        let p = pair_counts(&result, &reference);
        assert_eq!(p.together_both, 0);
        assert_eq!(p.precision(), 0.0);
        assert_eq!(p.recall(), 0.0);
        assert_eq!(p.f1(), 0.0);
    }

    #[test]
    fn over_merging_hurts_precision_not_recall() {
        let reference =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let result = Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let p = pair_counts(&result, &reference);
        assert_eq!(p.recall(), 1.0);
        assert!(p.precision() < 1.0);
        assert!((p.precision() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn over_splitting_hurts_recall_not_precision() {
        let reference = Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let result = Clustering::singletons((1..=4).map(oid));
        let p = pair_counts(&result, &reference);
        assert_eq!(p.precision(), 1.0);
        assert_eq!(p.recall(), 0.0);
    }

    #[test]
    fn objects_missing_from_either_side_are_ignored() {
        let reference =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(9)]]).unwrap();
        let result = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(7)]]).unwrap();
        let p = pair_counts(&result, &reference);
        // Common objects: 1, 2.  They are together in both.
        assert_eq!(p.together_both, 1);
        assert_eq!(p.together_result_only, 0);
        // (1,3) and (2,3) do not count because 3 is absent from the result.
        assert_eq!(p.together_reference_only, 0);
        assert_eq!(p.f1(), 1.0);
    }

    #[test]
    fn empty_clusterings_score_one_by_convention() {
        let empty = Clustering::new();
        let c = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        assert_eq!(pair_counts(&empty, &c).f1(), 1.0);
        assert_eq!(pair_counts(&c, &empty).f1(), 1.0);
    }

    #[test]
    fn symmetry_swaps_precision_and_recall() {
        let a =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        let b =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4), oid(5)]]).unwrap();
        let ab = pair_counts(&a, &b);
        let ba = pair_counts(&b, &a);
        assert!((ab.precision() - ba.recall()).abs() < 1e-12);
        assert!((ab.recall() - ba.precision()).abs() < 1e-12);
        assert!((ab.f1() - ba.f1()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn clustering_from(assign: &[u64]) -> Clustering {
        let mut groups: BTreeMap<u64, Vec<ObjectId>> = BTreeMap::new();
        for (i, &g) in assign.iter().enumerate() {
            groups.entry(g).or_default().push(ObjectId::new(i as u64));
        }
        Clustering::from_groups(groups.into_values()).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn metrics_are_bounded_and_symmetric(
            a in proptest::collection::vec(0u64..5, 12),
            b in proptest::collection::vec(0u64..5, 12),
        ) {
            let ca = clustering_from(&a);
            let cb = clustering_from(&b);
            let p = pair_counts(&ca, &cb);
            prop_assert!((0.0..=1.0).contains(&p.precision()));
            prop_assert!((0.0..=1.0).contains(&p.recall()));
            prop_assert!((0.0..=1.0).contains(&p.f1()));
            let q = pair_counts(&cb, &ca);
            prop_assert!((p.f1() - q.f1()).abs() < 1e-12);
            prop_assert_eq!(p.together_both, q.together_both);
        }

        #[test]
        fn self_comparison_is_perfect(a in proptest::collection::vec(0u64..5, 12)) {
            let ca = clustering_from(&a);
            let p = pair_counts(&ca, &ca);
            prop_assert_eq!(p.f1(), 1.0);
            prop_assert_eq!(p.together_result_only, 0);
            prop_assert_eq!(p.together_reference_only, 0);
        }
    }
}
