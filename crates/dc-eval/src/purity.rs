//! Purity and inverse purity (Table 3 of the paper).
//!
//! * **Purity** maps every result cluster to the reference cluster it
//!   overlaps most and measures the fraction of objects covered by those
//!   best matches — it rewards precision-like behaviour and is maximal when
//!   every result cluster is a subset of some reference cluster.
//! * **Inverse purity** swaps the roles: every reference cluster is mapped
//!   to the result cluster it overlaps most — it rewards recall-like
//!   behaviour and is maximal when every reference cluster is contained in
//!   some result cluster.
//!
//! Both are restricted to the objects present in both clusterings so that
//! snapshots of different sizes remain comparable.

use dc_types::Clustering;
use std::collections::BTreeMap;

/// Purity of `result` with respect to `reference`.
pub fn purity(result: &Clustering, reference: &Clustering) -> f64 {
    directional_purity(result, reference)
}

/// Inverse purity of `result` with respect to `reference`.
pub fn inverse_purity(result: &Clustering, reference: &Clustering) -> f64 {
    directional_purity(reference, result)
}

/// For every cluster of `from`, find its maximal overlap with a cluster of
/// `to`; return (Σ max overlaps) / (number of common objects).
fn directional_purity(from: &Clustering, to: &Clustering) -> f64 {
    let mut total_common = 0usize;
    let mut matched = 0usize;
    for (_, cluster) in from.iter() {
        let mut by_other: BTreeMap<_, usize> = BTreeMap::new();
        for o in cluster.iter() {
            if let Some(other) = to.cluster_of(o) {
                *by_other.entry(other).or_insert(0) += 1;
                total_common += 1;
            }
        }
        matched += by_other.values().copied().max().unwrap_or(0);
    }
    if total_common == 0 {
        1.0
    } else {
        matched as f64 / total_common as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_types::ObjectId;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn identical_clusterings_have_purity_one() {
        let c = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        assert_eq!(purity(&c, &c), 1.0);
        assert_eq!(inverse_purity(&c, &c), 1.0);
    }

    #[test]
    fn singletons_have_perfect_purity_but_poor_inverse_purity() {
        let reference = Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let result = Clustering::singletons((1..=4).map(oid));
        assert_eq!(purity(&result, &reference), 1.0);
        assert!((inverse_purity(&result, &reference) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn one_big_cluster_has_perfect_inverse_purity_but_poor_purity() {
        let reference =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let result = Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        assert_eq!(inverse_purity(&result, &reference), 1.0);
        assert!((purity(&result, &reference) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let reference =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        let result =
            Clustering::from_groups([vec![oid(1), oid(2), oid(4)], vec![oid(3), oid(5)]]).unwrap();
        let p = purity(&result, &reference);
        // Cluster {1,2,4}: best overlap 2; cluster {3,5}: best overlap 1 ⇒ 3/5.
        assert!((p - 0.6).abs() < 1e-12);
    }

    #[test]
    fn disjoint_object_sets_default_to_one() {
        let a = Clustering::from_groups([vec![oid(1)]]).unwrap();
        let b = Clustering::from_groups([vec![oid(2)]]).unwrap();
        assert_eq!(purity(&a, &b), 1.0);
        assert_eq!(inverse_purity(&a, &b), 1.0);
    }

    #[test]
    fn purity_and_inverse_purity_are_transposes() {
        let a =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        let b =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4), oid(5)]]).unwrap();
        assert!((purity(&a, &b) - inverse_purity(&b, &a)).abs() < 1e-12);
        assert!((inverse_purity(&a, &b) - purity(&b, &a)).abs() < 1e-12);
    }
}
