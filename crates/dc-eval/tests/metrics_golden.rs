//! Golden-value tests for the quality metrics on hand-computed tiny
//! clusterings, plus property tests of the metric invariants (boundedness,
//! invariance under cluster relabeling, transposition symmetry).

use dc_eval::{inverse_purity, pair_counts, purity, quality_report};
use dc_types::{Clustering, ObjectId};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn oid(raw: u64) -> ObjectId {
    ObjectId::new(raw)
}

fn clustering(groups: &[&[u64]]) -> Clustering {
    Clustering::from_groups(
        groups
            .iter()
            .map(|g| g.iter().copied().map(oid).collect::<Vec<_>>()),
    )
    .unwrap()
}

/// Hand-computed example over objects 1..=6.
///
/// ```text
/// reference: {1,2,3} {4,5} {6}     co-clustered pairs: (1,2) (1,3) (2,3) (4,5)
/// result:    {1,2} {3,4,5} {6}     co-clustered pairs: (1,2) (3,4) (3,5) (4,5)
/// shared pairs: (1,2) (4,5)
/// ```
///
/// * precision = 2/4, recall = 2/4, F1 = 2·(1/2)(1/2)/(1/2 + 1/2) = 1/2
/// * purity: {1,2}→2, {3,4,5}→best overlap 2 (with {4,5}), {6}→1 ⇒ 5/6
/// * inverse purity: {1,2,3}→2 (into {1,2}), {4,5}→2 (into {3,4,5}), {6}→1 ⇒ 5/6
#[test]
fn golden_values_on_hand_computed_example() {
    let reference = clustering(&[&[1, 2, 3], &[4, 5], &[6]]);
    let result = clustering(&[&[1, 2], &[3, 4, 5], &[6]]);

    let counts = pair_counts(&result, &reference);
    assert_eq!(counts.together_both, 2);
    assert!((counts.precision() - 0.5).abs() < 1e-12);
    assert!((counts.recall() - 0.5).abs() < 1e-12);
    assert!((counts.f1() - 0.5).abs() < 1e-12);

    assert!((purity(&result, &reference) - 5.0 / 6.0).abs() < 1e-12);
    assert!((inverse_purity(&result, &reference) - 5.0 / 6.0).abs() < 1e-12);

    let report = quality_report(&result, &reference);
    assert!((report.f1 - 0.5).abs() < 1e-12);
    assert!((report.purity - 5.0 / 6.0).abs() < 1e-12);
    assert!((report.inverse_purity - 5.0 / 6.0).abs() < 1e-12);
}

/// Second golden example with asymmetric purity / inverse purity.
///
/// ```text
/// reference: {1,2,3,4} {5,6}      co-clustered pairs: 6 + 1 = 7
/// result:    {1,2} {3,4} {5,6}    co-clustered pairs: 1 + 1 + 1 = 3
/// shared pairs: (1,2) (3,4) (5,6) = 3
/// ```
///
/// * precision = 3/3 = 1, recall = 3/7, F1 = 2·1·(3/7)/(1 + 3/7) = 3/5
/// * purity = 1 (every result cluster inside one reference cluster)
/// * inverse purity: {1,2,3,4}→2, {5,6}→2 ⇒ 4/6 = 2/3
#[test]
fn golden_values_on_refinement_example() {
    let reference = clustering(&[&[1, 2, 3, 4], &[5, 6]]);
    let result = clustering(&[&[1, 2], &[3, 4], &[5, 6]]);

    let counts = pair_counts(&result, &reference);
    assert!((counts.precision() - 1.0).abs() < 1e-12);
    assert!((counts.recall() - 3.0 / 7.0).abs() < 1e-12);
    assert!((counts.f1() - 0.6).abs() < 1e-12);
    assert!((purity(&result, &reference) - 1.0).abs() < 1e-12);
    assert!((inverse_purity(&result, &reference) - 2.0 / 3.0).abs() < 1e-12);
}

/// Build a clustering from an assignment vector, with group labels remapped
/// through `relabel` and group insertion order reversed when `reverse` is
/// set — the partition is identical, only labels/ids/order differ.
fn clustering_from(assign: &[u64], relabel: impl Fn(u64) -> u64, reverse: bool) -> Clustering {
    let mut groups: BTreeMap<u64, Vec<ObjectId>> = BTreeMap::new();
    for (i, &g) in assign.iter().enumerate() {
        groups.entry(relabel(g)).or_default().push(oid(i as u64));
    }
    let mut ordered: Vec<Vec<ObjectId>> = groups.into_values().collect();
    if reverse {
        ordered.reverse();
    }
    Clustering::from_groups(ordered).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reported score lies in [0, 1] for arbitrary clustering pairs.
    #[test]
    fn all_scores_are_in_unit_interval(
        a in proptest::collection::vec(0u64..5, 12),
        b in proptest::collection::vec(0u64..5, 12),
    ) {
        let ca = clustering_from(&a, |g| g, false);
        let cb = clustering_from(&b, |g| g, false);
        let r = quality_report(&ca, &cb);
        for score in [r.precision, r.recall, r.f1, r.purity, r.inverse_purity] {
            prop_assert!((0.0..=1.0).contains(&score), "score {score} out of range: {r:?}");
        }
    }

    /// F1 (and the other scores) must not change when cluster labels are
    /// permuted or clusters are renumbered — the metrics are functions of
    /// the partition, not of cluster identity.
    #[test]
    fn scores_are_invariant_under_cluster_relabeling(
        a in proptest::collection::vec(0u64..5, 12),
        b in proptest::collection::vec(0u64..5, 12),
    ) {
        let ca = clustering_from(&a, |g| g, false);
        let cb = clustering_from(&b, |g| g, false);
        // 4 - g is a permutation of the label space 0..5; reversing the
        // insertion order additionally permutes the assigned ClusterIds.
        let ca_relabeled = clustering_from(&a, |g| 4 - g, true);
        let r = quality_report(&ca, &cb);
        let s = quality_report(&ca_relabeled, &cb);
        prop_assert!((r.f1 - s.f1).abs() < 1e-12);
        prop_assert!((r.precision - s.precision).abs() < 1e-12);
        prop_assert!((r.recall - s.recall).abs() < 1e-12);
        prop_assert!((r.purity - s.purity).abs() < 1e-12);
        prop_assert!((r.inverse_purity - s.inverse_purity).abs() < 1e-12);
    }

    /// Swapping result and reference transposes the metrics: precision and
    /// recall swap, F1 is symmetric, purity and inverse purity swap.
    #[test]
    fn swapping_arguments_transposes_the_report(
        a in proptest::collection::vec(0u64..5, 12),
        b in proptest::collection::vec(0u64..5, 12),
    ) {
        let ca = clustering_from(&a, |g| g, false);
        let cb = clustering_from(&b, |g| g, false);
        let ab = quality_report(&ca, &cb);
        let ba = quality_report(&cb, &ca);
        prop_assert!((ab.precision - ba.recall).abs() < 1e-12);
        prop_assert!((ab.recall - ba.precision).abs() < 1e-12);
        prop_assert!((ab.f1 - ba.f1).abs() < 1e-12);
        prop_assert!((ab.purity - ba.inverse_purity).abs() < 1e-12);
        prop_assert!((ab.inverse_purity - ba.purity).abs() < 1e-12);
    }

    /// A clustering compared against itself is always perfect.
    #[test]
    fn self_comparison_is_always_perfect(a in proptest::collection::vec(0u64..5, 12)) {
        let c = clustering_from(&a, |g| g, false);
        let r = quality_report(&c, &c);
        prop_assert_eq!(r.f1, 1.0);
        prop_assert_eq!(r.purity, 1.0);
        prop_assert_eq!(r.inverse_purity, 1.0);
    }
}
