//! The append-only write-ahead log.
//!
//! A WAL *segment* is one file holding the operation batches of a contiguous
//! range of rounds.  Segments are named `wal-<start>.dcwal`, where `start`
//! is the round the owning engine had already served when the segment was
//! created — every record in the segment therefore carries a round number
//! strictly greater than `start`, and a checkpoint at round `k` makes every
//! segment with `start < k` obsolete (all of its rounds are covered by the
//! snapshot), which is what [`Snapshotter::prune_obsolete`] deletes.
//!
//! ## File format (version 1)
//!
//! ```text
//! header:  "DCWL" | version: u32 LE | start_round: u64 LE          (16 bytes)
//! record:  len: u32 LE | crc32(payload): u32 LE | payload           (8 + len)
//! payload: round: u64 LE | OperationBatch (BinCodec)
//! ```
//!
//! Appends write one frame with a single `write` call and then fsync, so a
//! crash can only ever leave a *prefix* of a frame at the physical end of
//! the file.  [`Wal::open`] exploits that:
//!
//! * a record whose frame runs past the end of the file, or whose checksum
//!   fails **at the physical tail**, is a torn append — it was never
//!   acknowledged, so it is dropped and the file truncated back to the last
//!   complete record;
//! * a record that fails its checksum with *more data after it* cannot be a
//!   torn append — that is real corruption, and it is reported as
//!   [`StorageError::Corrupt`] rather than silently repaired (dropping a
//!   mid-log record would silently lose acknowledged rounds).
//!
//! [`Snapshotter::prune_obsolete`]: crate::Snapshotter::prune_obsolete

use crate::{read_u32_le, read_u64_le, sync_dir, sync_file, StorageError};
use dc_types::codec::{crc32, BinCodec, ByteReader, ByteWriter, CodecError};
use dc_types::OperationBatch;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DCWL";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const FRAME_HEADER_LEN: u64 = 8;

/// One logged round: its 1-based round number and the operation batch the
/// round applied.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// 1-based round number within the owning engine's lifetime.
    pub round: u64,
    /// The operations the round applied.
    pub batch: OperationBatch,
}

impl BinCodec for WalRecord {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.round);
        self.batch.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(WalRecord {
            round: r.get_u64()?,
            batch: OperationBatch::decode(r)?,
        })
    }
}

/// What [`Wal::open`] found while replaying a segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalOpenOutcome {
    /// Whether a torn (truncated or checksum-failing) tail record was
    /// dropped.
    pub dropped_torn_tail: bool,
    /// Bytes truncated off the end of the file to remove the torn tail
    /// and/or any beyond-cap records.
    pub truncated_bytes: u64,
    /// Complete records truncated because their round exceeded the caller's
    /// cap (see [`Wal::open_capped`]; always 0 for [`Wal::open`]).
    pub dropped_beyond_cap: u64,
}

/// An open, append-position WAL segment.
pub struct Wal {
    file: File,
    path: PathBuf,
    start_round: u64,
    /// Round number of the last record in the segment (== `start_round`
    /// while the segment is empty).
    last_round: u64,
    len: u64,
}

/// The canonical file name of the segment starting after `start_round`.
pub fn segment_file_name(start_round: u64) -> String {
    format!("wal-{start_round:020}.dcwal")
}

/// Parse a segment file name back into its start round.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".dcwal")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// List the WAL segments in `dir` as `(start_round, path)`, sorted by start
/// round.  Files that do not match the segment naming scheme are ignored.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, "read_dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, "read_dir", e))?;
        let name = entry.file_name();
        if let Some(start) = name.to_str().and_then(parse_segment_file_name) {
            out.push((start, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

impl Wal {
    /// Create a fresh segment in `dir` starting after `start_round`.  Fails
    /// if the segment file already exists.
    pub fn create(dir: &Path, start_round: u64) -> Result<Self, StorageError> {
        let path = dir.join(segment_file_name(start_round));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| StorageError::io(&path, "create segment", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&start_round.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| StorageError::io(&path, "write header", e))?;
        sync_file(&file, &path, "fsync header")?;
        sync_dir(dir)?;
        Ok(Wal {
            file,
            path,
            start_round,
            last_round: start_round,
            len: HEADER_LEN,
        })
    }

    /// Open an existing segment, replaying its records.
    ///
    /// Returns the segment positioned for appending, the complete records in
    /// order, and whether a torn tail was dropped (see the module docs for
    /// the torn-tail / mid-log-corruption distinction).  A segment whose
    /// very header is incomplete — a crash during segment creation, before
    /// any record could have been acknowledged — is re-initialized in place.
    pub fn open(path: &Path) -> Result<(Self, Vec<WalRecord>, WalOpenOutcome), StorageError> {
        Self::open_capped(path, None)
    }

    /// Like [`Wal::open`], but records whose round exceeds `cap` are
    /// **truncated off the end of the segment** instead of being returned.
    ///
    /// This is the sharded recovery primitive: a crash while a round was
    /// being distributed across shard WALs can leave the round durably
    /// logged in some shards but not all.  Such a round was never
    /// acknowledged, so the shards that did log it must forget it — the
    /// sharded engine computes the globally committed round (the minimum
    /// over all shards) and reopens every shard capped at it.  Because
    /// rounds are appended in order, beyond-cap records are always a suffix;
    /// truncating them is exactly the torn-tail repair applied a few records
    /// earlier.
    pub fn open_capped(
        path: &Path,
        cap: Option<u64>,
    ) -> Result<(Self, Vec<WalRecord>, WalOpenOutcome), StorageError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let Some(start_round) = parse_segment_file_name(name) else {
            return Err(StorageError::corrupt(
                path,
                format!("'{name}' is not a WAL segment file name"),
            ));
        };

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StorageError::io(path, "open segment", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StorageError::io(path, "read segment", e))?;

        if (bytes.len() as u64) < HEADER_LEN {
            // Torn segment creation: the header fsync never completed, so no
            // record can have been acknowledged.  Rebuild the header.
            drop(file);
            std::fs::remove_file(path).map_err(|e| StorageError::io(path, "remove torn", e))?;
            let dir = path.parent().unwrap_or(Path::new("."));
            let wal = Wal::create(dir, start_round)?;
            let outcome = WalOpenOutcome {
                dropped_torn_tail: false,
                truncated_bytes: bytes.len() as u64,
                dropped_beyond_cap: 0,
            };
            return Ok((wal, Vec::new(), outcome));
        }
        if &bytes[0..4] != MAGIC {
            return Err(StorageError::corrupt(path, "bad magic"));
        }
        let version = read_u32_le(path, &bytes, 4)?;
        if version != VERSION {
            return Err(StorageError::corrupt(
                path,
                format!("unsupported WAL version {version} (expected {VERSION})"),
            ));
        }
        let header_start = read_u64_le(path, &bytes, 8)?;
        if header_start != start_round {
            return Err(StorageError::corrupt(
                path,
                format!("header start round {header_start} disagrees with file name"),
            ));
        }

        let file_len = bytes.len() as u64;
        let mut records = Vec::new();
        let mut offset = HEADER_LEN;
        let mut outcome = WalOpenOutcome::default();
        // `last_round` tracks the last *kept* record (what the reopened
        // segment appends after); `contiguity_round` tracks the last parsed
        // record, capped or not, for the round-contiguity check.
        let mut last_round = start_round;
        let mut contiguity_round = start_round;
        let mut cap_cut: Option<u64> = None;
        while offset < file_len {
            let remaining = file_len - offset;
            // Preserves any beyond-cap count accumulated so far.
            let torn = |outcome: WalOpenOutcome, offset: u64| WalOpenOutcome {
                dropped_torn_tail: true,
                truncated_bytes: file_len - offset,
                ..outcome
            };
            if remaining < FRAME_HEADER_LEN {
                outcome = torn(outcome, offset);
                break;
            }
            let o = offset as usize;
            let len = read_u32_le(path, &bytes, o)? as u64;
            let stored_crc = read_u32_le(path, &bytes, o + 4)?;
            let frame_end = offset + FRAME_HEADER_LEN + len;
            if frame_end > file_len {
                // The frame runs past the physical end of the file: a torn
                // append (or a corrupt length at the tail — either way, no
                // complete record follows, so truncating loses nothing that
                // was ever acknowledged).
                outcome = torn(outcome, offset);
                break;
            }
            let payload = &bytes[o + 8..frame_end as usize];
            if crc32(payload) != stored_crc {
                if frame_end == file_len {
                    // Checksum failure at the physical tail: torn append.
                    outcome = torn(outcome, offset);
                    break;
                }
                return Err(StorageError::corrupt(
                    path,
                    format!(
                        "record at offset {offset} fails its checksum with \
                         {} bytes of log after it (mid-log corruption)",
                        file_len - frame_end
                    ),
                ));
            }
            let record =
                WalRecord::decode_exact(payload).map_err(|source| StorageError::Codec {
                    path: path.to_path_buf(),
                    source,
                })?;
            if record.round != contiguity_round + 1 {
                return Err(StorageError::corrupt(
                    path,
                    format!(
                        "record at offset {offset} has round {} after round {contiguity_round}",
                        record.round
                    ),
                ));
            }
            contiguity_round = record.round;
            if cap.is_some_and(|cap| record.round > cap) {
                // Rounds are contiguous, so this record and everything after
                // it are beyond the cap: remember where the cut goes and keep
                // walking so mid-log corruption is still distinguished from a
                // torn tail.
                if cap_cut.is_none() {
                    cap_cut = Some(offset);
                }
                outcome.dropped_beyond_cap += 1;
            } else {
                last_round = record.round;
                records.push(record);
            }
            offset = frame_end;
        }
        if let Some(cut) = cap_cut {
            // The cap cut subsumes any torn-tail cut further right.
            offset = cut;
            outcome.truncated_bytes = file_len - cut;
        }

        if outcome.dropped_torn_tail || outcome.truncated_bytes > 0 {
            file.set_len(offset)
                .map_err(|e| StorageError::io(path, "truncate torn tail", e))?;
            sync_file(&file, path, "fsync truncation")?;
        }
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StorageError::io(path, "seek", e))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            start_round,
            last_round,
            len: offset,
        };
        Ok((wal, records, outcome))
    }

    /// The round this segment starts after (== the checkpoint round that
    /// created it).
    pub fn start_round(&self) -> u64 {
        self.start_round
    }

    /// The round of the last record in the segment (== [`Wal::start_round`]
    /// while empty).
    pub fn last_round(&self) -> u64 {
        self.last_round
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently in the segment (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Durably append one record: the frame is written with a single
    /// `write` call and fsynced before returning, so an acknowledged append
    /// survives a crash and an unacknowledged one is at worst a torn tail.
    /// Records must arrive in round order (`last_round + 1`).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        self.append_round(record.round, &record.batch)
    }

    /// Like [`Wal::append`], but encoding straight from a borrowed batch —
    /// the serving hot path uses this to log a round without cloning its
    /// operations into a [`WalRecord`] first.
    pub fn append_round(&mut self, round: u64, batch: &OperationBatch) -> Result<(), StorageError> {
        self.append_round_nosync(round, batch)?;
        self.sync()
    }

    /// The group-commit half of [`Wal::append_round`]: write the frame with a
    /// single `write` call but **do not fsync**.  The record is not durable
    /// until a later [`Wal::sync`] — until then it must be treated as a
    /// write-back cache of an *uncommitted* round, and a recovery that finds
    /// it without the commit point having been reached must truncate it (see
    /// [`Wal::open_capped`]).
    ///
    /// The sharded group-commit protocol uses this to stage a round's frames
    /// across every shard WAL and then make the round durable with a single
    /// fsync of the group WAL, instead of one fsync per shard.
    pub fn append_round_nosync(
        &mut self,
        round: u64,
        batch: &OperationBatch,
    ) -> Result<(), StorageError> {
        if round != self.last_round + 1 {
            return Err(StorageError::Inconsistent(format!(
                "append of round {round} after round {} (rounds must be contiguous)",
                self.last_round
            )));
        }
        let mut w = ByteWriter::new();
        w.put_u64(round);
        batch.encode(&mut w);
        let payload = w.into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let reg = dc_telemetry::registry();
        let span = reg.span("storage.wal_append");
        self.file
            .write_all(&frame)
            .map_err(|e| StorageError::io(&self.path, "append", e))?;
        span.finish();
        reg.add("storage.wal_appends", 1);
        reg.add("storage.wal_bytes_appended", frame.len() as u64);
        self.last_round = round;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Durably flush every staged [`Wal::append_round_nosync`] frame with one
    /// fsync.  A no-op-append segment may sync freely; the call is idempotent.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        sync_file(&self.file, &self.path, "fsync append")
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("start_round", &self.start_round)
            .field("last_round", &self.last_round)
            .field("bytes", &self.len)
            .finish()
    }
}
