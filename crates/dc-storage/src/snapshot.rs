//! Atomic, versioned, checksummed snapshot files and checkpoint pruning.
//!
//! A snapshot captures the full materialized state of an engine *after* a
//! given round; together with the WAL records for later rounds it makes
//! re-serving the checkpointed rounds unnecessary for recovery.  The [`Snapshotter`] is
//! payload-agnostic — anything implementing
//! [`BinCodec`](dc_types::codec::BinCodec) can be checkpointed — and `dc-core`
//! supplies the actual engine state.
//!
//! ## File format (version 1)
//!
//! ```text
//! "DCSN" | version: u32 LE | round: u64 LE | len: u64 LE
//!        | crc32(payload): u32 LE | payload
//! ```
//!
//! ## Atomicity
//!
//! [`Snapshotter::write`] writes the whole file to `<name>.tmp`, fsyncs it,
//! renames it into place, and fsyncs the directory.  A crash at any point
//! leaves either the old snapshot set or the new one — never a half-written
//! file under the final name; a stray `.tmp` is ignored by recovery and
//! deleted by the next [`Snapshotter::prune_obsolete`].
//!
//! ## Checkpoint pruning
//!
//! A snapshot at round `k` makes obsolete every older snapshot and every WAL
//! segment whose records all concern rounds `<= k` (segments with
//! `start < k`; see the [`wal`](crate::wal) module docs for the naming
//! invariant).  Pruning runs strictly *after* the new snapshot is durable,
//! so a crash mid-prune only leaves extra files that the next checkpoint
//! removes.

use crate::{read_u32_le, read_u64_le, sync_dir, sync_file, wal, StorageError};
use dc_types::codec::{crc32, BinCodec};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"DCSN";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 28;

/// Writes and loads snapshot files in one state directory.
#[derive(Debug, Clone)]
pub struct Snapshotter {
    dir: PathBuf,
}

/// The canonical file name of the snapshot taken after `round`.
pub fn snapshot_file_name(round: u64) -> String {
    format!("snapshot-{round:020}.dcsnap")
}

/// Parse a snapshot file name back into its round.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".dcsnap")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// What a checkpoint prune deleted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Obsolete snapshot files deleted.
    pub snapshots_deleted: usize,
    /// Obsolete WAL segment files deleted.
    pub segments_deleted: usize,
    /// Stray temporary files deleted.
    pub tmp_files_deleted: usize,
}

impl Snapshotter {
    /// Bind a snapshotter to a state directory, creating it if necessary.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::io(&dir, "create dir", e))?;
        Ok(Snapshotter { dir })
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically write the snapshot for `round`.  Returns the final path.
    pub fn write<T: BinCodec>(&self, round: u64, payload: &T) -> Result<PathBuf, StorageError> {
        let payload = payload.encode_to_vec();
        let final_path = self.dir.join(snapshot_file_name(round));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_file_name(round)));

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&round.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let reg = dc_telemetry::registry();
        let span = reg.span("storage.snapshot_write");
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| StorageError::io(&tmp_path, "create tmp", e))?;
        tmp.write_all(&bytes)
            .map_err(|e| StorageError::io(&tmp_path, "write tmp", e))?;
        sync_file(&tmp, &tmp_path, "fsync tmp")?;
        drop(tmp);
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| StorageError::io(&final_path, "rename into place", e))?;
        sync_dir(&self.dir)?;
        span.finish();
        reg.add("storage.snapshots_written", 1);
        reg.add("storage.snapshot_bytes_written", bytes.len() as u64);
        Ok(final_path)
    }

    /// List the available snapshots as `(round, path)`, sorted by round.
    /// `.tmp` leftovers and unrelated files are ignored.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, StorageError> {
        let mut out = Vec::new();
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| StorageError::io(&self.dir, "read_dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io(&self.dir, "read_dir", e))?;
            let name = entry.file_name();
            if let Some(round) = name.to_str().and_then(parse_snapshot_file_name) {
                out.push((round, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Load the most recent snapshot, verifying its checksum, or `None` when
    /// the directory holds no snapshot.  A corrupt snapshot is an error, not
    /// a silent fallback: the checkpoint protocol only deletes an old
    /// snapshot after the new one is durable, so the latest snapshot being
    /// unreadable means real damage the operator must know about.
    pub fn load_latest<T: BinCodec>(&self) -> Result<Option<(u64, T)>, StorageError> {
        let Some((round, path)) = self.list()?.into_iter().next_back() else {
            return Ok(None);
        };
        let payload = Self::read_verified(&path, round)?;
        let value = T::decode_exact(&payload).map_err(|source| StorageError::Codec {
            path: path.clone(),
            source,
        })?;
        Ok(Some((round, value)))
    }

    fn read_verified(path: &Path, expected_round: u64) -> Result<Vec<u8>, StorageError> {
        let mut file = File::open(path).map_err(|e| StorageError::io(path, "open snapshot", e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StorageError::io(path, "read snapshot", e))?;
        if bytes.len() < HEADER_LEN {
            return Err(StorageError::corrupt(path, "file shorter than its header"));
        }
        if &bytes[0..4] != MAGIC {
            return Err(StorageError::corrupt(path, "bad magic"));
        }
        let version = read_u32_le(path, &bytes, 4)?;
        if version != VERSION {
            return Err(StorageError::corrupt(
                path,
                format!("unsupported snapshot version {version} (expected {VERSION})"),
            ));
        }
        let round = read_u64_le(path, &bytes, 8)?;
        if round != expected_round {
            return Err(StorageError::corrupt(
                path,
                format!("header round {round} disagrees with file name"),
            ));
        }
        let len = read_u64_le(path, &bytes, 16)? as usize;
        let stored_crc = read_u32_le(path, &bytes, 24)?;
        if bytes.len() != HEADER_LEN + len {
            return Err(StorageError::corrupt(
                path,
                format!(
                    "payload length {len} disagrees with file size {}",
                    bytes.len()
                ),
            ));
        }
        let payload = bytes.split_off(HEADER_LEN);
        if crc32(&payload) != stored_crc {
            return Err(StorageError::corrupt(path, "payload fails its checksum"));
        }
        Ok(payload)
    }

    /// Delete every artifact a durable snapshot at `round` has made
    /// obsolete: older snapshots, WAL segments starting before `round`, and
    /// stray `.tmp` files.  Call only after [`Snapshotter::write`] for
    /// `round` has returned.
    pub fn prune_obsolete(&self, round: u64) -> Result<PruneReport, StorageError> {
        let mut report = PruneReport::default();
        for (snap_round, path) in self.list()? {
            if snap_round < round {
                std::fs::remove_file(&path)
                    .map_err(|e| StorageError::io(&path, "delete obsolete snapshot", e))?;
                report.snapshots_deleted += 1;
            }
        }
        for (start, path) in wal::list_segments(&self.dir)? {
            if start < round {
                std::fs::remove_file(&path)
                    .map_err(|e| StorageError::io(&path, "delete obsolete segment", e))?;
                report.segments_deleted += 1;
            }
        }
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| StorageError::io(&self.dir, "read_dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io(&self.dir, "read_dir", e))?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                std::fs::remove_file(&path)
                    .map_err(|e| StorageError::io(&path, "delete stray tmp", e))?;
                report.tmp_files_deleted += 1;
            }
        }
        sync_dir(&self.dir)?;
        let reg = dc_telemetry::registry();
        reg.add("storage.snapshots_pruned", report.snapshots_deleted as u64);
        reg.add("storage.segments_pruned", report.segments_deleted as u64);
        reg.add("storage.tmp_pruned", report.tmp_files_deleted as u64);
        Ok(report)
    }
}
