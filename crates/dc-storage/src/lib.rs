//! # dc-storage
//!
//! The durability subsystem of the DynamicC serving stack: a write-ahead log
//! for operation batches, atomic snapshots of materialized engine state, and
//! the crash-recovery protocol combining the two.
//!
//! The design follows the classic storage-engine recipe (write-ahead logging
//! plus checkpoints, as in the SimpleDB/BusTub lineage), specialized to the
//! paper's §6 serving model — a *round* is one batch of add/remove/update
//! operations followed by re-clustering, which maps onto a WAL one-to-one:
//!
//! * [`Wal`] — an append-only segment of length-prefixed, CRC-guarded
//!   records, one per served round.  Opening a segment replays its records
//!   and distinguishes a *torn tail* (a crash mid-append: the final record
//!   is truncated or fails its checksum — silently dropped and the file
//!   truncated back to the last complete record) from *mid-log corruption*
//!   (a bad record with valid data after it — reported as an error, never
//!   silently skipped).
//! * [`Snapshotter`] — writes versioned, checksummed snapshot files
//!   atomically (tmp file + fsync + rename) and prunes WAL segments and
//!   older snapshots that a new checkpoint has made obsolete.
//!
//! The subsystem is generic over *what* is snapshotted: any
//! [`BinCodec`](dc_types::codec::BinCodec) payload works.  `dc-core`'s
//! `DurableEngine` supplies the engine state (graph + clustering +
//! aggregates + counters, via `dc-similarity`'s exact state hooks) and owns
//! the recovery protocol: load the latest snapshot, replay the WAL tail,
//! serve — logging each new round before applying it.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod snapshot;
pub mod wal;

pub use snapshot::{PruneReport, Snapshotter};
pub use wal::{Wal, WalOpenOutcome, WalRecord};

use dc_types::codec::CodecError;
use std::fmt;
use std::path::PathBuf;

/// Errors raised by the durability subsystem.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file (or directory) involved.
        path: PathBuf,
        /// The failing operation, e.g. `"append"` or `"rename"`.
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A durable artifact failed to decode.
    Codec {
        /// The file involved.
        path: PathBuf,
        /// The decode failure.
        source: CodecError,
    },
    /// A durable artifact is corrupt in a way that must not be silently
    /// repaired (e.g. a bad WAL record *followed by* valid data).
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// What was found.
        detail: String,
    },
    /// The set of durable artifacts is inconsistent (e.g. the WAL is missing
    /// rounds between the snapshot and its tail).
    Inconsistent(String),
}

impl StorageError {
    pub(crate) fn io(path: impl Into<PathBuf>, op: &'static str, source: std::io::Error) -> Self {
        StorageError::Io {
            path: path.into(),
            op,
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, op, source } => {
                write!(f, "{op} failed on {}: {source}", path.display())
            }
            StorageError::Codec { path, source } => {
                write!(f, "failed to decode {}: {source}", path.display())
            }
            StorageError::Corrupt { path, detail } => {
                write!(f, "{} is corrupt: {detail}", path.display())
            }
            StorageError::Inconsistent(msg) => write!(f, "durable state is inconsistent: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Codec { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Read a little-endian `u32` at `offset`, reporting a short read as
/// corruption instead of panicking.  Parsing code used to slice-and-`expect`
/// here; a truncated artifact (short read, torn disk) must surface as a
/// typed [`StorageError`], never a panic.
pub(crate) fn read_u32_le(
    path: &std::path::Path,
    bytes: &[u8],
    offset: usize,
) -> Result<u32, StorageError> {
    // Bounds check and array conversion are one fallible path, so neither
    // the slice index nor the conversion can panic on a truncated file.
    let window = offset
        .checked_add(4)
        .and_then(|end| bytes.get(offset..end))
        .and_then(|s| <[u8; 4]>::try_from(s).ok());
    match window {
        Some(arr) => Ok(u32::from_le_bytes(arr)),
        None => Err(StorageError::corrupt(
            path,
            format!(
                "short read: wanted 4 bytes at offset {offset} of {}",
                bytes.len()
            ),
        )),
    }
}

/// Read a little-endian `u64` at `offset` (see [`read_u32_le`]).
pub(crate) fn read_u64_le(
    path: &std::path::Path,
    bytes: &[u8],
    offset: usize,
) -> Result<u64, StorageError> {
    let window = offset
        .checked_add(8)
        .and_then(|end| bytes.get(offset..end))
        .and_then(|s| <[u8; 8]>::try_from(s).ok());
    match window {
        Some(arr) => Ok(u64::from_le_bytes(arr)),
        None => Err(StorageError::corrupt(
            path,
            format!(
                "short read: wanted 8 bytes at offset {offset} of {}",
                bytes.len()
            ),
        )),
    }
}

/// Flush a file's contents and metadata to stable storage, attributing
/// failures to `op`.
///
/// The single fsync choke point of the crate: every durable write funnels
/// through here (directory syncs included, via [`sync_dir`]), so the
/// `storage.fsync_count` counter and `storage.fsync_ns` histogram observe
/// the complete fsync traffic of the process.
pub(crate) fn sync_file(
    file: &std::fs::File,
    path: &std::path::Path,
    op: &'static str,
) -> Result<(), StorageError> {
    let reg = dc_telemetry::registry();
    reg.add("storage.fsync_count", 1);
    let span = reg.span("storage.fsync");
    let result = file.sync_all().map_err(|e| StorageError::io(path, op, e));
    span.finish();
    result
}

/// Best-effort directory fsync so renames/creates in `dir` survive a crash.
/// Directories cannot be opened for reading on every platform; failures to
/// *open* are ignored, failures to *sync* an opened handle are not.
pub(crate) fn sync_dir(dir: &std::path::Path) -> Result<(), StorageError> {
    if let Ok(handle) = std::fs::File::open(dir) {
        sync_file(&handle, dir, "fsync directory")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_reads_are_corruption_errors_not_panics() {
        let path = std::path::Path::new("/tmp/x.dcsnap");
        let bytes = [1u8, 2, 3];
        assert!(matches!(
            read_u32_le(path, &bytes, 0),
            Err(StorageError::Corrupt { .. })
        ));
        assert!(matches!(
            read_u64_le(path, &bytes, 0),
            Err(StorageError::Corrupt { .. })
        ));
        // An offset past the end (or one that would overflow) is the same
        // class of damage.
        assert!(read_u32_le(path, &bytes, usize::MAX).is_err());
        assert!(read_u64_le(path, &bytes, 4).is_err());
        // Exact fits parse.
        let eight = [8u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(read_u32_le(path, &eight, 0).unwrap(), 8);
        assert_eq!(read_u64_le(path, &eight, 0).unwrap(), 8);
    }

    #[test]
    fn error_display_names_the_file_and_operation() {
        let e = StorageError::io(
            "/tmp/x.wal",
            "append",
            std::io::Error::other("disk on fire"),
        );
        let msg = e.to_string();
        assert!(msg.contains("append"));
        assert!(msg.contains("x.wal"));
        let e = StorageError::corrupt("/tmp/y.wal", "bad crc mid-log");
        assert!(e.to_string().contains("bad crc mid-log"));
        let e = StorageError::Inconsistent("missing rounds".into());
        assert!(e.to_string().contains("missing rounds"));
    }
}
