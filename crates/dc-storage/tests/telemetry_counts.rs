//! Pins the exact telemetry counts the storage layer emits for a known
//! append/checkpoint sequence.
//!
//! Counts are **exact**, not lower bounds: the fsync schedule is part of the
//! durability contract (one fsync per acknowledged append, header + directory
//! on segment creation, tmp + directory per snapshot, directory after a
//! prune), and this test is where that schedule is pinned.  It relies on the
//! registry being thread-local — concurrent tests on other threads cannot
//! perturb the counters.

use dc_storage::{Snapshotter, Wal};
use dc_telemetry::registry;
use dc_types::codec::{BinCodec, ByteReader, ByteWriter, CodecError};
use dc_types::{ObjectId, Operation, OperationBatch, RecordBuilder};
use std::path::{Path, PathBuf};

/// A scratch directory deleted on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dc-storage-telemetry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn batch(round: u64) -> OperationBatch {
    let mut b = OperationBatch::new();
    b.push(Operation::Add {
        id: ObjectId::new(round),
        record: RecordBuilder::new()
            .text("name", format!("object {round}"))
            .build(),
    });
    b
}

/// Minimal snapshot payload.
#[derive(Debug, PartialEq)]
struct Payload(u64);

impl BinCodec for Payload {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut ByteReader) -> Result<Self, CodecError> {
        Ok(Payload(r.get_u64()?))
    }
}

#[test]
fn fsync_and_byte_counters_are_exact_for_a_known_sequence() {
    let tmp = TempDir::new("counts");
    let reg = registry();
    reg.reset();
    reg.set_enabled(true);

    // Segment creation: header fsync + directory fsync.
    let mut wal = Wal::create(tmp.path(), 0).expect("create");
    let header_len = wal.len_bytes();
    assert_eq!(
        reg.counter("storage.fsync_count"),
        2,
        "create = header + dir"
    );
    assert_eq!(reg.counter("storage.wal_appends"), 0);

    // Three appends: exactly one fsync each, bytes accounted exactly.
    for round in 1..=3 {
        wal.append_round(round, &batch(round)).expect("append");
    }
    assert_eq!(
        reg.counter("storage.fsync_count"),
        5,
        "3 appends = 3 fsyncs"
    );
    assert_eq!(reg.counter("storage.wal_appends"), 3);
    assert_eq!(
        reg.counter("storage.wal_bytes_appended"),
        wal.len_bytes() - header_len,
        "byte counter matches the segment growth"
    );

    // One snapshot write: tmp-file fsync + directory fsync.
    let snapshotter = Snapshotter::new(tmp.path()).expect("snapshotter");
    snapshotter.write(3, &Payload(3)).expect("snapshot");
    assert_eq!(
        reg.counter("storage.fsync_count"),
        7,
        "snapshot = tmp + dir"
    );
    assert_eq!(reg.counter("storage.snapshots_written"), 1);
    let snapshot_bytes = reg.counter("storage.snapshot_bytes_written");
    assert!(snapshot_bytes > 8, "header + payload bytes are counted");

    // Prune after the round-3 snapshot: the round-0 segment goes, one
    // directory fsync seals the deletions.
    drop(wal);
    let report = snapshotter.prune_obsolete(3).expect("prune");
    assert_eq!(report.segments_deleted, 1);
    assert_eq!(reg.counter("storage.fsync_count"), 8, "prune = 1 dir fsync");
    assert_eq!(reg.counter("storage.segments_pruned"), 1);
    assert_eq!(reg.counter("storage.snapshots_pruned"), 0);

    // The fsync histogram saw every one of the 8 fsyncs.
    let snap = reg.snapshot();
    assert_eq!(snap.histograms.get("storage.fsync").unwrap().count(), 8);
    assert_eq!(
        snap.histograms.get("storage.wal_append").unwrap().count(),
        3
    );
    assert_eq!(
        snap.histograms
            .get("storage.snapshot_write")
            .unwrap()
            .count(),
        1
    );

    reg.set_enabled(false);
    reg.reset();
}

#[test]
fn storage_telemetry_is_silent_when_disabled() {
    let tmp = TempDir::new("off");
    let reg = registry();
    reg.reset();
    assert!(!reg.is_enabled(), "telemetry defaults to off");

    let mut wal = Wal::create(tmp.path(), 0).expect("create");
    wal.append_round(1, &batch(1)).expect("append");
    let snapshotter = Snapshotter::new(tmp.path()).expect("snapshotter");
    snapshotter.write(1, &Payload(1)).expect("snapshot");

    assert_eq!(reg.counter("storage.fsync_count"), 0);
    assert_eq!(reg.counter("storage.wal_bytes_appended"), 0);
    assert!(reg.snapshot().is_empty(), "off mode records nothing");
    reg.reset();
}
