//! Crash-consistency tests for the WAL and the snapshot files.
//!
//! The central property: recovery after a crash always lands on exactly the
//! last *complete* round.  A torn append (any prefix of the final frame on
//! disk, or a checksum failure at the physical tail) is dropped; corruption
//! anywhere before the tail is reported, never silently skipped.  The torn
//! tail case is checked *exhaustively*: the fixture log is truncated at
//! every byte offset inside its final record.

use dc_storage::wal::{list_segments, segment_file_name};
use dc_storage::{snapshot, StorageError, Wal, WalRecord};
use dc_types::codec::BinCodec;
use dc_types::{ObjectId, Operation, OperationBatch, RecordBuilder};
use std::path::{Path, PathBuf};

/// A scratch directory deleted on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dc-storage-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn batch(round: u64, ops: usize) -> OperationBatch {
    let mut b = OperationBatch::new();
    for i in 0..ops {
        b.push(Operation::Add {
            id: ObjectId::new(round * 100 + i as u64),
            record: RecordBuilder::new()
                .text("name", format!("object {round}/{i}"))
                .number("round", round as f64)
                .build(),
        });
    }
    b
}

fn record(round: u64) -> WalRecord {
    WalRecord {
        round,
        batch: batch(round, 3),
    }
}

/// Write a 3-record segment and return (path, bytes, offset where the final
/// record's frame starts).
fn fixture_segment(dir: &Path) -> (PathBuf, Vec<u8>, u64) {
    let mut wal = Wal::create(dir, 0).expect("create");
    wal.append(&record(1)).unwrap();
    wal.append(&record(2)).unwrap();
    let before_last = wal.len_bytes();
    wal.append(&record(3)).unwrap();
    let path = wal.path().to_path_buf();
    drop(wal);
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes, before_last)
}

#[test]
fn append_then_reopen_replays_every_record() {
    let tmp = TempDir::new("roundtrip");
    let (path, _, _) = fixture_segment(tmp.path());
    let (wal, records, outcome) = Wal::open(&path).expect("open");
    assert_eq!(records, vec![record(1), record(2), record(3)]);
    assert!(!outcome.dropped_torn_tail);
    assert_eq!(outcome.truncated_bytes, 0);
    assert_eq!(wal.last_round(), 3);
    assert_eq!(wal.start_round(), 0);
}

#[test]
fn truncation_at_every_offset_of_the_final_record_recovers_the_prefix() {
    let tmp = TempDir::new("torn-tail");
    let (path, bytes, last_start) = fixture_segment(tmp.path());
    // Every strictly-partial prefix of the final frame, including the empty
    // one (clean truncation right after round 2).
    for cut in last_start..bytes.len() as u64 {
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();
        let (mut wal, records, outcome) =
            Wal::open(&path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(
            records,
            vec![record(1), record(2)],
            "cut at {cut}: recovery must land on the last complete round"
        );
        assert_eq!(outcome.dropped_torn_tail, cut != last_start, "cut at {cut}");
        assert_eq!(outcome.truncated_bytes, cut - last_start, "cut at {cut}");
        // The torn tail is physically gone and the log accepts round 3 again.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), last_start);
        wal.append(&record(3)).unwrap();
        let (_, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 3);
    }
}

#[test]
fn open_capped_truncates_beyond_cap_records_like_a_torn_tail() {
    let tmp = TempDir::new("capped");
    let (path, bytes, _) = fixture_segment(tmp.path());

    // Cap at round 1: rounds 2 and 3 are an unacknowledged suffix and must
    // be physically truncated so a later uncapped open does not resurrect
    // them.
    let (mut wal, records, outcome) = Wal::open_capped(&path, Some(1)).expect("capped open");
    assert_eq!(records, vec![record(1)]);
    assert_eq!(outcome.dropped_beyond_cap, 2);
    assert!(outcome.truncated_bytes > 0);
    assert!(!outcome.dropped_torn_tail);
    assert_eq!(wal.last_round(), 1);
    // The segment accepts round 2 again and the stale suffix stays gone.
    wal.append(&record(2)).unwrap();
    drop(wal);
    let (_, records, outcome) = Wal::open(&path).expect("reopen");
    assert_eq!(records, vec![record(1), record(2)]);
    assert_eq!(outcome.dropped_beyond_cap, 0);

    // A cap at or above the last round changes nothing.
    std::fs::write(&path, &bytes).unwrap();
    let (_, records, outcome) = Wal::open_capped(&path, Some(3)).unwrap();
    assert_eq!(records.len(), 3);
    assert_eq!(outcome, Default::default());
}

#[test]
fn open_capped_handles_a_torn_tail_behind_the_cap_cut() {
    let tmp = TempDir::new("capped-torn");
    let (path, bytes, last_start) = fixture_segment(tmp.path());
    // Tear the final record *and* cap below the surviving ones: the cut
    // lands at the cap, subsuming the torn-tail cut.
    std::fs::write(&path, &bytes[..last_start as usize + 5]).unwrap();
    let (wal, records, outcome) = Wal::open_capped(&path, Some(1)).expect("capped open");
    assert_eq!(records, vec![record(1)]);
    assert_eq!(outcome.dropped_beyond_cap, 1);
    assert!(outcome.dropped_torn_tail);
    assert_eq!(wal.last_round(), 1);
}

#[test]
fn tail_checksum_failure_is_dropped_but_midlog_failure_is_an_error() {
    let tmp = TempDir::new("crc");
    let (path, bytes, last_start) = fixture_segment(tmp.path());

    // Flip one payload byte of the *final* record: torn tail, dropped.
    let mut corrupt = bytes.clone();
    let idx = last_start as usize + 8;
    corrupt[idx] ^= 0xFF;
    std::fs::write(&path, &corrupt).unwrap();
    let (_, records, outcome) = Wal::open(&path).expect("tail corruption is recoverable");
    assert_eq!(records, vec![record(1), record(2)]);
    assert!(outcome.dropped_torn_tail);

    // Flip one payload byte of the *first* record: mid-log corruption, and
    // silently dropping it would lose acknowledged rounds 2 and 3 — so it
    // must be a hard error.
    let mut corrupt = bytes.clone();
    corrupt[16 + 8] ^= 0xFF; // segment header is 16 bytes, frame header 8
    std::fs::write(&path, &corrupt).unwrap();
    match Wal::open(&path) {
        Err(StorageError::Corrupt { detail, .. }) => {
            assert!(detail.contains("mid-log"), "unexpected detail: {detail}")
        }
        other => panic!("mid-log corruption must be rejected, got {other:?}"),
    }
}

#[test]
fn torn_segment_creation_is_reinitialized() {
    let tmp = TempDir::new("torn-header");
    let path = tmp.path().join(segment_file_name(7));
    std::fs::write(&path, b"DCWL\x01").unwrap(); // header cut mid-write
    let (wal, records, outcome) = Wal::open(&path).expect("torn header is recoverable");
    assert!(records.is_empty());
    assert_eq!(outcome.truncated_bytes, 5);
    assert_eq!(wal.start_round(), 7);
    assert_eq!(wal.last_round(), 7);
}

#[test]
fn header_and_round_sequence_corruption_are_rejected() {
    let tmp = TempDir::new("bad-header");
    let (path, bytes, _) = fixture_segment(tmp.path());

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        Wal::open(&path),
        Err(StorageError::Corrupt { .. })
    ));

    // Unsupported version.
    let mut bad = bytes.clone();
    bad[4] = 99;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        Wal::open(&path),
        Err(StorageError::Corrupt { .. })
    ));

    // Header start round disagreeing with the file name.
    let mut bad = bytes.clone();
    bad[8] = 9;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        Wal::open(&path),
        Err(StorageError::Corrupt { .. })
    ));

    // Out-of-order appends are refused at write time too.
    std::fs::write(&path, &bytes).unwrap();
    let (mut wal, _, _) = Wal::open(&path).unwrap();
    assert!(matches!(
        wal.append(&record(9)),
        Err(StorageError::Inconsistent(_))
    ));
}

#[test]
fn snapshots_roundtrip_and_reject_corruption() {
    let tmp = TempDir::new("snapshot");
    let snapshotter = dc_storage::Snapshotter::new(tmp.path()).unwrap();
    assert_eq!(snapshotter.load_latest::<OperationBatch>().unwrap(), None);

    let payload = batch(5, 4);
    snapshotter.write(5, &payload).unwrap();
    let (round, loaded) = snapshotter
        .load_latest::<OperationBatch>()
        .unwrap()
        .expect("snapshot present");
    assert_eq!(round, 5);
    assert_eq!(loaded, payload);

    // Newer snapshots win; a stray .tmp is ignored.
    let newer = batch(6, 2);
    snapshotter.write(6, &newer).unwrap();
    std::fs::write(
        tmp.path()
            .join(format!("{}.tmp", snapshot::snapshot_file_name(7))),
        b"half-written",
    )
    .unwrap();
    let (round, loaded) = snapshotter
        .load_latest::<OperationBatch>()
        .unwrap()
        .expect("snapshot present");
    assert_eq!(round, 6);
    assert_eq!(loaded, newer);

    // Corrupting the latest snapshot's payload is a loud error.
    let path = tmp.path().join(snapshot::snapshot_file_name(6));
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        snapshotter.load_latest::<OperationBatch>(),
        Err(StorageError::Corrupt { .. })
    ));
}

/// A snapshot truncated at *every* byte offset — short header, short frame
/// fields, short payload — must surface as a typed error, never a panic or
/// a silent partial load.
#[test]
fn truncated_snapshots_error_at_every_offset() {
    let tmp = TempDir::new("snapshot-truncation");
    let snapshotter = dc_storage::Snapshotter::new(tmp.path()).unwrap();
    snapshotter.write(3, &batch(3, 2)).unwrap();
    let path = tmp.path().join(snapshot::snapshot_file_name(3));
    let full = std::fs::read(&path).unwrap();
    for keep in 0..full.len() {
        std::fs::write(&path, &full[..keep]).unwrap();
        assert!(
            matches!(
                snapshotter.load_latest::<OperationBatch>(),
                Err(StorageError::Corrupt { .. })
            ),
            "truncation to {keep} bytes must be a corruption error"
        );
    }
    std::fs::write(&path, &full).unwrap();
    assert!(snapshotter
        .load_latest::<OperationBatch>()
        .unwrap()
        .is_some());
}

#[test]
fn checkpoint_prune_deletes_only_obsolete_artifacts() {
    let tmp = TempDir::new("prune");
    let snapshotter = dc_storage::Snapshotter::new(tmp.path()).unwrap();

    // Rounds 1..=2 in segment wal-0; checkpoint at 2 starts segment wal-2.
    let mut seg0 = Wal::create(tmp.path(), 0).unwrap();
    seg0.append(&record(1)).unwrap();
    seg0.append(&record(2)).unwrap();
    snapshotter.write(2, &batch(2, 1)).unwrap();
    let _seg2 = Wal::create(tmp.path(), 2).unwrap();
    std::fs::write(tmp.path().join("leftover.tmp"), b"junk").unwrap();

    let report = snapshotter.prune_obsolete(2).unwrap();
    assert_eq!(report.segments_deleted, 1);
    assert_eq!(report.snapshots_deleted, 0);
    assert_eq!(report.tmp_files_deleted, 1);

    let segments = list_segments(tmp.path()).unwrap();
    assert_eq!(segments.len(), 1);
    assert_eq!(segments[0].0, 2);

    // A later checkpoint deletes the round-2 snapshot and segment wal-2.
    snapshotter.write(4, &batch(4, 1)).unwrap();
    let _seg4 = Wal::create(tmp.path(), 4).unwrap();
    let report = snapshotter.prune_obsolete(4).unwrap();
    assert_eq!(report.snapshots_deleted, 1);
    assert_eq!(report.segments_deleted, 1);
    assert_eq!(snapshotter.list().unwrap().len(), 1);
}

#[test]
fn wal_record_codec_roundtrips() {
    let r = record(12);
    let bytes = r.encode_to_vec();
    assert_eq!(WalRecord::decode_exact(&bytes).unwrap(), r);
}
