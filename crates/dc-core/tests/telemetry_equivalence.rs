//! Observation must not perturb the system: serving the same workload with
//! telemetry **on** and **off** produces bit-identical clusterings, reports,
//! and durable state.
//!
//! This is the headline correctness claim of the telemetry layer.  Every
//! instrumentation point is either a counter/gauge write (no effect on
//! control flow) or a span (two clock reads); none of them may influence a
//! clustering decision, a WAL byte, or a report field other than the
//! explicitly nondeterministic `repair_wall_ns`.  The test serves the febrl
//! fixture through the sharded engine and the sharded durable engine twice —
//! once per mode — and compares everything.

use dc_core::{DurabilityOptions, ShardedDurableEngine, ShardedEngine};
use dc_datagen::fixtures::small_febrl_workload;
use dc_objective::DbIndexObjective;
use dc_similarity::{GraphConfig, ShardRouter};
use dc_telemetry::registry;
use std::sync::Arc;

mod common;
use common::{assert_clusterings_identical, trained_setup, TempDir};

const TRAIN_ROUNDS: usize = 2;

/// Serve the fixture's held-out snapshots through a 2-shard refined engine
/// with the given telemetry mode, returning the refined clustering and the
/// per-round reports (with the nondeterministic wall-time field zeroed).
fn serve_sharded(enabled: bool) -> (dc_types::Clustering, Vec<dc_core::ShardedRoundReport>) {
    let reg = registry();
    reg.reset();
    reg.set_enabled(enabled);
    let workload = small_febrl_workload();
    let (graph, previous, serve, dynamicc) = trained_setup(
        &workload,
        || GraphConfig::textual_febrl(0.6),
        Arc::new(DbIndexObjective),
        TRAIN_ROUNDS,
    );
    let router = ShardRouter::for_config(2, graph.config());
    let mut engine = ShardedEngine::new(router, graph, previous, dynamicc).expect("valid config");
    let mut reports = Vec::new();
    for snapshot in &serve {
        let mut report = engine.apply_round(&snapshot.batch);
        if let Some(refine) = &mut report.refine {
            refine.repair_wall_ns = 0;
        }
        reports.push(report);
    }
    let clustering = engine.refined_clustering();
    reg.set_enabled(false);
    reg.reset();
    (clustering, reports)
}

#[test]
fn sharded_serving_is_bit_identical_with_telemetry_on_and_off() {
    let (off, reports_off) = serve_sharded(false);
    let (on, reports_on) = serve_sharded(true);
    assert_clusterings_identical(&off, &on, "telemetry on vs off");
    assert_eq!(
        reports_off, reports_on,
        "round reports must not change under observation"
    );
}

#[test]
fn durable_serving_and_recovery_are_bit_identical_with_telemetry_on_and_off() {
    let serve_durable = |enabled: bool, tag: &str| {
        let reg = registry();
        reg.reset();
        reg.set_enabled(enabled);
        let tmp = TempDir::new(tag);
        let workload = small_febrl_workload();
        let (graph, previous, serve, dynamicc) = trained_setup(
            &workload,
            || GraphConfig::textual_febrl(0.6),
            Arc::new(DbIndexObjective),
            TRAIN_ROUNDS,
        );
        let router = ShardRouter::for_config(2, graph.config());
        let options = DurabilityOptions {
            checkpoint_every_rounds: 2,
            group_commit: false,
        };
        let (mut engine, _) = ShardedDurableEngine::open(
            tmp.path(),
            router,
            GraphConfig::textual_febrl(0.6),
            dynamicc.clone(),
            options,
            move || (graph, previous),
        )
        .expect("fresh open");
        for snapshot in &serve {
            engine.apply_round(&snapshot.batch).expect("serve");
        }
        let served = engine.refined_clustering();
        drop(engine);

        // Recover from disk (same mode) and compare the recovered view.
        let router = ShardRouter::for_config(2, &GraphConfig::textual_febrl(0.6));
        let (recovered, report) = ShardedDurableEngine::open(
            tmp.path(),
            router,
            GraphConfig::textual_febrl(0.6),
            dynamicc,
            options,
            || unreachable!("durable state exists"),
        )
        .expect("reopen");
        assert!(report.recovered, "{tag}: must recover, not bootstrap");
        let recovered_clustering = recovered.refined_clustering();
        reg.set_enabled(false);
        reg.reset();
        (served, recovered_clustering)
    };

    let (served_off, recovered_off) = serve_durable(false, "telemetry-off");
    let (served_on, recovered_on) = serve_durable(true, "telemetry-on");
    assert_clusterings_identical(&served_off, &served_on, "served: on vs off");
    assert_clusterings_identical(&recovered_off, &recovered_on, "recovered: on vs off");
    assert_clusterings_identical(&served_off, &recovered_off, "off: served vs recovered");
}
