//! Incremental dirty-region repair == full global fixed point, bit-for-bit.
//!
//! The cross-shard refiner restricts each round's merge/split repair to the
//! dirty closure of the clusters the round touched (`dc_core::refine`,
//! `dc_core::dirty`).  That restriction is only sound if it is *invisible*:
//! the refined clustering, the applied merges and splits, the allocated
//! cluster ids, and the recovered-edge accounting must all be exactly what
//! the pre-incremental full fixed point produces — the only permitted
//! difference is *less work* (skipped evaluations whose rejection the
//! previous fixed point already proved).
//!
//! Pinned here property-style: both fixture families, N ∈ {2, 4}, the
//! fixture serve rounds plus a deterministic pseudo-random tail of
//! remove/re-add/update rounds (the add→delete→re-add shapes that stress the
//! seed collection), plus explicit zero-activity rounds.  After **every**
//! round, the incremental engine and a `set_full_repair(true)` reference
//! must agree bit-for-bit on the refined clustering (ids, members,
//! watermark) and on every applied-work counter, with the incremental
//! engine's evaluation/rejection counters bounded by the reference's.
//! Zero-activity rounds must report an empty dirty set and zero repair work.

use dc_core::{RefineReport, ShardedEngine};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, TokenBlocking};
use dc_types::{ObjectId, Operation, OperationBatch, Record};
use std::collections::BTreeMap;
use std::sync::Arc;

mod common;

const TRAIN_ROUNDS: usize = 2;

/// Febrl under exact token blocking (see `tests/shard_quality.rs`).
fn exact_febrl_config() -> GraphConfig {
    GraphConfig::new(
        Box::new(dc_similarity::measures::CompositeMeasure::febrl_default()),
        Box::new(TokenBlocking::new(0)),
        0.6,
    )
}

/// Deterministic xorshift64* — no RNG dependency, stable across runs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> Option<T> {
        if items.is_empty() {
            None
        } else {
            Some(items[(self.next() % items.len() as u64) as usize])
        }
    }
}

/// Every record the workload ever mentions, keyed by id — the pool the
/// synthetic remove/re-add/update tail draws payloads from.
fn record_pool(workload: &DynamicWorkload) -> BTreeMap<ObjectId, Record> {
    let mut pool: BTreeMap<ObjectId, Record> = workload
        .initial
        .iter()
        .map(|(id, record)| (id, record.clone()))
        .collect();
    for snapshot in &workload.snapshots {
        for op in snapshot.batch.iter() {
            match op {
                Operation::Add { id, record } | Operation::Update { id, record } => {
                    pool.insert(*id, record.clone());
                }
                Operation::Remove { .. } => {}
            }
        }
    }
    pool
}

/// A deterministic pseudo-random tail of rounds over the record pool:
/// removes of live objects, re-adds of previously removed ones (the
/// add→delete→re-add shape), same-record updates, and interspersed empty
/// rounds.  Liveness is tracked against the engine under test.
fn synthetic_batches(
    engine: &ShardedEngine,
    pool: &BTreeMap<ObjectId, Record>,
    rng: &mut XorShift,
    rounds: usize,
) -> Vec<OperationBatch> {
    let mut live: Vec<ObjectId> = pool
        .keys()
        .copied()
        .filter(|&id| engine.shard_of(id).is_some())
        .collect();
    let mut dead: Vec<ObjectId> = Vec::new();
    let mut batches = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut batch = OperationBatch::new();
        if round % 3 == 2 {
            batches.push(batch); // an explicit zero-activity round
            continue;
        }
        for _ in 0..3 {
            match rng.next() % 3 {
                0 => {
                    if let Some(id) = rng.pick(&live) {
                        batch.push(Operation::Remove { id });
                        live.retain(|&x| x != id);
                        dead.push(id);
                    }
                }
                1 => {
                    if let Some(id) = rng.pick(&dead) {
                        batch.push(Operation::Add {
                            id,
                            record: pool[&id].clone(),
                        });
                        dead.retain(|&x| x != id);
                        live.push(id);
                    }
                }
                _ => {
                    if let Some(id) = rng.pick(&live) {
                        batch.push(Operation::Update {
                            id,
                            record: pool[&id].clone(),
                        });
                    }
                }
            }
        }
        batches.push(batch);
    }
    batches
}

/// Identical outcome, bounded work: every applied-work field equal (score
/// down to the bit), evaluation and rejection counters ≤ the reference's.
fn assert_reports_equivalent(inc: &RefineReport, full: &RefineReport, context: &str) {
    assert_eq!(
        inc.boundary_pairs_computed, full.boundary_pairs_computed,
        "{context}: boundary pairs"
    );
    assert_eq!(
        inc.cross_edges_recovered, full.cross_edges_recovered,
        "{context}: recovered edges"
    );
    assert_eq!(
        inc.merges_applied, full.merges_applied,
        "{context}: merges applied"
    );
    assert_eq!(
        inc.splits_applied, full.splits_applied,
        "{context}: splits applied"
    );
    assert_eq!(inc.clusters, full.clusters, "{context}: cluster count");
    assert_eq!(
        inc.score.to_bits(),
        full.score.to_bits(),
        "{context}: score must match bit-for-bit ({} vs {})",
        inc.score,
        full.score
    );
    assert!(
        inc.objective_evaluations <= full.objective_evaluations,
        "{context}: incremental did MORE evaluations ({} > {})",
        inc.objective_evaluations,
        full.objective_evaluations
    );
    assert!(
        inc.merges_rejected <= full.merges_rejected,
        "{context}: merge rejections"
    );
    assert!(
        inc.splits_rejected <= full.splits_rejected,
        "{context}: split rejections"
    );
}

fn check_incremental_matches_full(
    tag: &str,
    n_shards: usize,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
) {
    let (graph_a, prev_a, serve, dynamicc_a) =
        common::trained_setup(workload, graph_config, objective.clone(), TRAIN_ROUNDS);
    let (graph_b, prev_b, _, dynamicc_b) =
        common::trained_setup(workload, graph_config, objective, TRAIN_ROUNDS);

    let router = ShardRouter::for_config(n_shards, graph_a.config());
    let mut incremental =
        ShardedEngine::new(router, graph_a, prev_a, dynamicc_a).expect("valid shard config");
    let router = ShardRouter::for_config(n_shards, graph_b.config());
    let mut full =
        ShardedEngine::new(router, graph_b, prev_b, dynamicc_b).expect("valid shard config");
    full.set_full_repair(true);

    let pool = record_pool(workload);
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15 ^ (n_shards as u64) << 32 ^ tag.len() as u64);
    let mut rounds: Vec<OperationBatch> = serve.iter().map(|s| s.batch.clone()).collect();
    rounds.extend(synthetic_batches(&incremental, &pool, &mut rng, 9));

    let mut saw_restricted_round = false;
    for (i, batch) in rounds.iter().enumerate() {
        let context = format!("{tag}: {n_shards} shards: round {i}");
        let inc_report = incremental
            .apply_round(batch)
            .refine
            .expect("multi-shard rounds refine");
        let full_report = full
            .apply_round(batch)
            .refine
            .expect("multi-shard rounds refine");

        assert_reports_equivalent(&inc_report, &full_report, &context);
        let a = incremental.refined_clustering();
        let b = full.refined_clustering();
        a.check_invariants().unwrap();
        common::assert_clusterings_identical(&a, &b, &context);

        if batch.is_empty() {
            assert_eq!(
                (inc_report.dirty_clusters, inc_report.regions),
                (0, 0),
                "{context}: an empty round must leave the dirty set empty"
            );
            assert_eq!(
                inc_report.objective_evaluations, 0,
                "{context}: an empty round must do zero repair work"
            );
            assert_eq!(
                (inc_report.merges_applied, inc_report.splits_applied),
                (0, 0),
                "{context}"
            );
        }
        saw_restricted_round |= inc_report.dirty_clusters < full_report.dirty_clusters;
    }
    assert!(
        saw_restricted_round,
        "{tag}: {n_shards} shards: the dirty set never shrank below the full \
         cluster set, so this workload does not exercise the restriction"
    );
}

#[test]
fn incremental_repair_matches_full_repair_on_febrl() {
    for n_shards in [2, 4] {
        check_incremental_matches_full(
            "febrl",
            n_shards,
            &small_febrl_workload(),
            exact_febrl_config,
            Arc::new(DbIndexObjective),
        );
    }
}

#[test]
fn incremental_repair_matches_full_repair_on_access() {
    for n_shards in [2, 4] {
        check_incremental_matches_full(
            "access",
            n_shards,
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
        );
    }
}
