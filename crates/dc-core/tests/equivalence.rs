//! End-to-end equivalence regression tests for the incremental-aggregates
//! serving path.
//!
//! Three facts are locked down on the canned `dc_datagen::fixtures`
//! workloads:
//!
//! 1. serving with the aggregate-reusing objective hooks produces the
//!    *identical* clustering and `DynamicCStats` counters as serving with the
//!    rebuild-per-delta slow path ([`SlowPathObjective`]);
//! 2. the persistent [`Engine`] round loop produces the identical clustering
//!    as the stateless `DynamicC::recluster`, with **zero** full aggregate
//!    builds per round (recluster itself performs exactly one);
//! 3. the served clustering and counters are pinned as golden values, so any
//!    behavioural drift in the serving path fails loudly.

use dc_baselines::IncrementalClusterer;
use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DynamicC, Engine};
use dc_datagen::fixtures::small_febrl_workload;
use dc_objective::{DbIndexObjective, ObjectiveFunction, SlowPathObjective};
use dc_similarity::{BuildCounter, GraphConfig, SimilarityGraph};
use dc_types::{Clustering, Snapshot};
use std::sync::Arc;

const TRAIN_ROUNDS: usize = 2;

/// Build the graph up to the end of the training prefix, train a DynamicC
/// with the given verification objective on it, and return everything needed
/// to serve the remaining snapshots.
fn trained_setup(
    objective: Arc<dyn ObjectiveFunction>,
) -> (SimilarityGraph, Clustering, Vec<Snapshot>, DynamicC) {
    let workload = small_febrl_workload();
    let mut graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &workload.initial);
    let batch = HillClimbing::with_objective(Arc::new(DbIndexObjective));
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let (train, serve) = workload.snapshots.split_at(TRAIN_ROUNDS);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, serve.to_vec(), dynamicc)
}

/// Serve every remaining snapshot through `DynamicC::recluster`, returning
/// the per-round clusterings and the full-build count consumed while
/// serving.
fn serve_all(
    graph: &mut SimilarityGraph,
    mut previous: Clustering,
    serve: &[Snapshot],
    dynamicc: &mut DynamicC,
) -> (Vec<Clustering>, u64) {
    BuildCounter::scope(|| {
        let mut produced = Vec::new();
        for snapshot in serve {
            graph.apply_batch(&snapshot.batch);
            let result = dynamicc.recluster(graph, &previous, &snapshot.batch);
            result.check_invariants().unwrap();
            produced.push(result.clone());
            previous = result;
        }
        produced
    })
}

#[test]
fn fast_and_slow_objective_paths_produce_identical_clusterings_and_stats() {
    let (mut fast_graph, fast_prev, serve, mut fast) = trained_setup(Arc::new(DbIndexObjective));
    let (mut slow_graph, slow_prev, _, mut slow) =
        trained_setup(Arc::new(SlowPathObjective::new(Arc::new(DbIndexObjective))));

    let fast_stats_before = *fast.stats();
    let slow_stats_before = *slow.stats();
    assert_eq!(
        fast_stats_before, slow_stats_before,
        "identical training must produce identical pre-serving stats"
    );

    let (fast_rounds, fast_builds) = serve_all(&mut fast_graph, fast_prev, &serve, &mut fast);
    let (slow_rounds, slow_builds) = serve_all(&mut slow_graph, slow_prev, &serve, &mut slow);

    for (i, (f, s)) in fast_rounds.iter().zip(&slow_rounds).enumerate() {
        assert!(
            f.delta(s).is_unchanged(),
            "round {i}: fast and slow paths diverged"
        );
    }
    assert_eq!(
        fast.stats(),
        slow.stats(),
        "verification counters must not depend on the aggregate fast path"
    );

    // The whole point: one O(E) build per round on the fast path, and at
    // least 5x that on the rebuild-per-delta slow path.
    assert_eq!(
        fast_builds,
        serve.len() as u64,
        "recluster must perform exactly one full aggregate build per round"
    );
    assert!(
        slow_builds >= 5 * fast_builds,
        "slow path performed {slow_builds} builds vs {fast_builds} fast — expected >= 5x"
    );
}

#[test]
fn engine_rounds_match_recluster_exactly() {
    let (mut graph_a, prev_a, serve, mut via_recluster) = trained_setup(Arc::new(DbIndexObjective));
    let (graph_b, prev_b, _, via_engine) = trained_setup(Arc::new(DbIndexObjective));

    let mut engine = Engine::new(graph_b, prev_b.clone(), via_engine);
    let mut previous = prev_a;
    for (i, snapshot) in serve.iter().enumerate() {
        graph_a.apply_batch(&snapshot.batch);
        let expected = via_recluster.recluster(&graph_a, &previous, &snapshot.batch);

        let report = engine.apply_round(&snapshot.batch);
        assert!(
            engine.clustering().delta(&expected).is_unchanged(),
            "round {i}: engine and recluster diverged"
        );
        assert_eq!(
            report.full_aggregate_builds, 0,
            "round {i}: the engine must not rebuild aggregates"
        );
        assert_eq!(report.objects, expected.object_count());
        assert_eq!(report.clusters, expected.cluster_count());
        previous = expected;
    }
    // Identical decisions imply identical counters (the engine's DynamicC
    // observed the same training rounds).
    assert_eq!(engine.stats(), via_recluster.stats());
    assert_eq!(engine.rounds_served(), serve.len());
}

#[test]
fn served_clustering_and_counters_match_golden_values() {
    // Run the full train-then-serve pipeline twice and require bit-identical
    // outcomes (determinism), then pin the outcome itself.
    let mut finals = Vec::new();
    for _ in 0..2 {
        let (mut graph, previous, serve, mut dynamicc) = trained_setup(Arc::new(DbIndexObjective));
        let (rounds, _) = serve_all(&mut graph, previous, &serve, &mut dynamicc);
        finals.push((rounds.last().unwrap().clone(), *dynamicc.stats()));
    }
    let (ref final_a, stats_a) = finals[0];
    let (ref final_b, stats_b) = finals[1];
    assert!(
        final_a.delta(final_b).is_unchanged(),
        "non-deterministic serving"
    );
    assert_eq!(stats_a, stats_b, "non-deterministic counters");

    // Golden values for the small Febrl fixture (seed 3, threshold 0.6,
    // 2 training + 3 served rounds).  These pin the *behaviour* of the
    // serving path: a change here means the refactor changed what DynamicC
    // does, not just how fast it does it.
    assert_eq!(final_a.object_count(), 193, "golden: served objects");
    assert_eq!(final_a.cluster_count(), 71, "golden: served clusters");
    assert_eq!(stats_a.observed_rounds, 2, "golden: observed rounds");
    assert_eq!(stats_a.merges_applied, 94, "golden: merges applied");
    assert_eq!(stats_a.merges_rejected, 2, "golden: merges rejected");
    assert_eq!(stats_a.splits_applied, 1, "golden: splits applied");
    assert_eq!(stats_a.splits_rejected, 920, "golden: splits rejected");
    assert_eq!(stats_a.merge_candidates, 172, "golden: merge candidates");
    assert_eq!(stats_a.split_candidates, 349, "golden: split candidates");
    assert_eq!(
        stats_a.objective_evaluations, 1017,
        "golden: objective evaluations"
    );
}
