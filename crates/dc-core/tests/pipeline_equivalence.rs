//! Drain-state bit-identity for the pipelined ingestion front-end.
//!
//! The headline invariant of `dc_core::pipeline`: a [`PipelinedEngine`]
//! that admits a workload op-by-op — batches formed by the coordinator,
//! rounds group-committed with one fsync, refinement overlapped with shard
//! apply — must, after drain, hold **bit-identical** state to a synchronous
//! [`ShardedDurableEngine`] serving the same batches: merged clustering,
//! refined clustering, [`DynamicCStats`], per-shard comparison counters,
//! and the recovered-after-reopen state.
//!
//! Round boundaries are made deterministic with flush barriers: each
//! workload snapshot's ops are submitted and flushed, so pipelined round
//! `i+1` holds exactly snapshot `i`'s batch, which the synchronous
//! reference replays verbatim.

use dc_core::{DurabilityOptions, PipelineOptions, PipelinedEngine, ShardedDurableEngine};
use dc_datagen::fixtures::small_febrl_workload;
use dc_datagen::DynamicWorkload;
use dc_objective::{DbIndexObjective, ObjectiveFunction};
use dc_similarity::ShardRouter;
use dc_types::OperationBatch;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{assert_clusterings_identical, TempDir};

const TRAIN_ROUNDS: usize = 2;

/// The non-empty serve batches: the pipeline never commits an empty round
/// (a flush with nothing pending is a no-op), so the reference sequence is
/// the non-empty batches only.
fn serve_batches(
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
) -> Vec<OperationBatch> {
    let (_, _, serve, _) = common::trained_setup(
        workload,
        || dc_similarity::GraphConfig::textual_febrl(0.6),
        objective,
        TRAIN_ROUNDS,
    );
    serve
        .into_iter()
        .map(|s| s.batch)
        .filter(|b| !b.is_empty())
        .collect()
}

/// Open a sharded durable engine at `dir`, bootstrapping the deterministic
/// trained state on first open and refusing to bootstrap on recovery.
fn open_engine(
    dir: &Path,
    n_shards: usize,
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
    options: DurabilityOptions,
) -> (ShardedDurableEngine, dc_core::ShardedRecoveryReport) {
    let (graph, previous, _, dynamicc) = common::trained_setup(
        workload,
        || dc_similarity::GraphConfig::textual_febrl(0.6),
        objective,
        TRAIN_ROUNDS,
    );
    let router = ShardRouter::for_config(n_shards, graph.config());
    let config = graph.config().clone();
    ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
        (graph, previous)
    })
    .expect("open")
}

/// Flush-barrier options: an effectively unbounded batch target and a long
/// formation deadline, so every flush-delimited segment becomes exactly one
/// round regardless of scheduling.
fn barrier_options() -> PipelineOptions {
    PipelineOptions {
        max_batch_delay: Duration::from_secs(30),
        record_batches: true,
        ..PipelineOptions::fixed(1_000_000)
    }
}

/// Submit each batch op-by-op followed by a flush barrier, so pipelined
/// round `i+1` holds exactly `batches[i]`.
fn submit_rounds(pipe: &PipelinedEngine, batches: &[OperationBatch]) {
    for batch in batches {
        for op in batch.iter() {
            pipe.submit(op.clone()).expect("submit");
        }
        pipe.flush().expect("flush");
    }
}

#[test]
fn pipelined_drain_is_bit_identical_to_synchronous_engine() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    assert!(batches.len() >= 3, "fixture must serve several rounds");
    let total_ops: usize = batches.iter().map(OperationBatch::len).sum();

    // Exercise the pipelined checkpoint path too (it waits for refine
    // catch-up before snapshotting).
    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };

    // Pipelined run.
    let tmp_pipe = TempDir::new("pipe-equivalence");
    let report = {
        let (engine, open_report) =
            open_engine(tmp_pipe.path(), 4, &workload, objective.clone(), options);
        assert!(!open_report.recovered);
        let pipe = PipelinedEngine::start(engine, barrier_options());
        submit_rounds(&pipe, &batches);
        let (engine, report) = pipe.close().expect("clean close");

        // Round structure: one round per flush-delimited segment, holding
        // exactly that segment's ops in admission order.
        assert_eq!(report.rounds_committed, batches.len() as u64);
        assert_eq!(report.ops_committed, total_ops as u64);
        assert_eq!(report.op_latencies_ns.len(), total_ops);
        assert_eq!(
            report.recorded_batches.as_deref(),
            Some(&batches[..]),
            "recorded rounds must be exactly the flush-delimited segments"
        );
        assert_eq!(engine.rounds_served(), batches.len());
        report
        // The reassembled engine is dropped here — a clean kill.
    };

    // Synchronous reference over the same batches.
    let tmp_sync = TempDir::new("sync-reference");
    let (mut reference, _) = open_engine(tmp_sync.path(), 4, &workload, objective.clone(), options);
    for batch in report.recorded_batches.as_deref().unwrap() {
        reference.apply_round(batch).expect("reference round");
    }

    // Reopen the pipelined directory: recovered state must be bit-identical
    // to the synchronous reference.
    let (recovered, recovery) = open_engine(tmp_pipe.path(), 4, &workload, objective, options);
    assert!(recovery.recovered);
    assert_eq!(recovery.committed_round, batches.len() as u64);
    assert_eq!(recovery.rolled_back_rounds, 0, "clean close loses nothing");
    assert_eq!(recovered.rounds_served(), reference.rounds_served());
    assert_clusterings_identical(
        &recovered.merged_clustering(),
        &reference.merged_clustering(),
        "recovered merged",
    );
    assert_clusterings_identical(
        &recovered.refined_clustering(),
        &reference.refined_clustering(),
        "recovered refined",
    );
    assert_eq!(recovered.stats(), reference.stats(), "stats diverged");
    assert_eq!(
        recovered.shard_comparisons(),
        reference.shard_comparisons(),
        "per-shard similarity work diverged"
    );
}

#[test]
fn single_shard_pipeline_drains_identically() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };

    let tmp_pipe = TempDir::new("pipe-single");
    {
        let (engine, _) = open_engine(tmp_pipe.path(), 1, &workload, objective.clone(), options);
        let pipe = PipelinedEngine::start(engine, barrier_options());
        submit_rounds(&pipe, &batches);
        let (engine, report) = pipe.close().expect("clean close");
        assert_eq!(report.rounds_committed, batches.len() as u64);
        assert_eq!(engine.rounds_served(), batches.len());
        assert_eq!(
            report.overlap_stalls, 0,
            "one shard has no refine worker to stall on"
        );
    }

    let tmp_sync = TempDir::new("sync-single");
    let (mut reference, _) = open_engine(tmp_sync.path(), 1, &workload, objective.clone(), options);
    for batch in &batches {
        reference.apply_round(batch).expect("reference round");
    }

    let (recovered, recovery) = open_engine(tmp_pipe.path(), 1, &workload, objective, options);
    assert!(recovery.recovered);
    assert_eq!(recovery.healed_rounds, 0, "one shard never heals");
    assert_clusterings_identical(
        &recovered.merged_clustering(),
        &reference.merged_clustering(),
        "single-shard merged",
    );
    assert_eq!(recovered.stats(), reference.stats());
}

/// Backpressure never loses or reorders work: a two-slot admission queue
/// with free-running (adaptive, no barriers) batch formation still commits
/// every op exactly once, and the recorded rounds replayed synchronously
/// land on bit-identical state.
#[test]
fn tiny_admission_queue_applies_backpressure_without_loss() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    let total_ops: usize = batches.iter().map(OperationBatch::len).sum();
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };

    let tmp_pipe = TempDir::new("pipe-backpressure");
    let (engine, _) = open_engine(tmp_pipe.path(), 2, &workload, objective.clone(), options);
    let pipe = PipelinedEngine::start(
        engine,
        PipelineOptions {
            queue_capacity: 2,
            min_batch_ops: 1,
            max_batch_ops: 8,
            initial_batch_ops: 4,
            max_batch_delay: Duration::from_millis(1),
            record_batches: true,
            ..PipelineOptions::default()
        },
    );
    for batch in &batches {
        for op in batch.iter() {
            pipe.submit(op.clone()).expect("submit");
        }
    }
    let (engine, report) = pipe.close().expect("clean close");
    assert_eq!(report.ops_committed, total_ops as u64);
    let recorded = report.recorded_batches.expect("recording on");
    assert_eq!(
        recorded.iter().map(OperationBatch::len).sum::<usize>(),
        total_ops,
        "every admitted op lands in exactly one round"
    );
    let submitted_order: Vec<_> = batches.iter().flat_map(|b| b.iter().cloned()).collect();
    let committed_order: Vec<_> = recorded.iter().flat_map(|b| b.iter().cloned()).collect();
    assert_eq!(
        submitted_order, committed_order,
        "admission order preserved"
    );

    // Replaying the formed rounds synchronously reproduces the state.
    let tmp_sync = TempDir::new("sync-backpressure");
    let (mut reference, _) = open_engine(tmp_sync.path(), 2, &workload, objective, options);
    for batch in &recorded {
        reference.apply_round(batch).expect("reference round");
    }
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &reference.merged_clustering(),
        "backpressure merged",
    );
    assert_clusterings_identical(
        &engine.refined_clustering(),
        &reference.refined_clustering(),
        "backpressure refined",
    );
    assert_eq!(engine.stats(), reference.stats());
}

/// `kill` abandons in-flight work without blocking, and everything that was
/// flushed before the kill is durably committed and reopenable.
#[test]
fn killed_pipeline_leaves_a_committed_reopenable_state() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };
    let tmp = TempDir::new("pipe-closed");
    let (engine, _) = open_engine(tmp.path(), 2, &workload, objective, options);
    let pipe = PipelinedEngine::start(engine, barrier_options());
    let op = batches[0].iter().next().expect("non-empty batch").clone();
    pipe.submit(op.clone()).expect("submit while open");
    pipe.flush().expect("flush while open");
    pipe.kill();
    // The engine value is consumed by kill; a fresh start over the same dir
    // proves the killed pipeline left a committed, reopenable state.
    let (engine, report) = open_engine(
        tmp.path(),
        2,
        &workload,
        Arc::new(DbIndexObjective),
        options,
    );
    assert!(report.recovered);
    assert_eq!(
        engine.rounds_served(),
        1,
        "the flushed round survived the kill"
    );
}
