//! Recovery-equivalence tests for the sharded durable serving path,
//! mirroring the `durable_recovery.rs` harness.
//!
//! The invariant: a 4-shard [`ShardedDurableEngine`] that is killed and
//! reopened around **every** round produces bit-identical merged *and
//! refined* clusterings, [`DynamicCStats`], per-round reports (including the
//! cross-shard refinement metrics), per-shard comparison counters, and
//! recovered-edge counts to a [`ShardedEngine`] that served the same
//! workload in memory without ever restarting.  (The one deliberately
//! process-scoped quantity is the cumulative cross-shard comparison counter:
//! recovery rebuilds the derived cross-shard index from the recovered
//! per-shard graphs, so a restarted process reports the rebuild's work —
//! see `dc_core::refine`.)  Additionally, tearing the tail of **one
//! shard's** WAL no longer costs the round: the refine WAL logs the full
//! batch and syncs last, so recovery heals the torn shard by replaying the
//! staged batch from it (see `group_commit.rs` for the full tear matrix),
//! and the healed engine converges to the same final state.

use dc_core::{DurabilityOptions, ShardedDurableEngine, ShardedEngine, ShardedRoundReport};
use dc_datagen::fixtures::small_febrl_workload;
use dc_datagen::DynamicWorkload;
use dc_objective::{DbIndexObjective, ObjectiveFunction};
use dc_similarity::{BuildCounter, GraphConfig, ShardRouter, SimilarityGraph};
use dc_storage::wal::list_segments;
use dc_types::{Clustering, Snapshot};
use std::sync::Arc;

mod common;
use common::{assert_clusterings_identical, TempDir};

const TRAIN_ROUNDS: usize = 2;
const N_SHARDS: usize = 4;

fn trained_setup(
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
) -> (
    SimilarityGraph,
    Clustering,
    Vec<Snapshot>,
    dc_core::DynamicC,
) {
    common::trained_setup(
        workload,
        || GraphConfig::textual_febrl(0.6),
        objective,
        TRAIN_ROUNDS,
    )
}

/// The never-restarted in-memory reference: per-round reports and merged
/// clusterings.
#[allow(clippy::type_complexity)]
fn reference_run(
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
) -> (
    ShardedEngine,
    Vec<ShardedRoundReport>,
    Vec<Clustering>,
    Vec<Clustering>,
) {
    let (graph, previous, serve, dynamicc) = trained_setup(workload, objective);
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let mut engine =
        ShardedEngine::new(router, graph, previous, dynamicc).expect("valid shard config");
    let mut reports = Vec::new();
    let mut clusterings = Vec::new();
    let mut refined = Vec::new();
    for snapshot in &serve {
        reports.push(engine.apply_round(&snapshot.batch));
        clusterings.push(engine.merged_clustering());
        refined.push(engine.refined_clustering());
    }
    (engine, reports, clusterings, refined)
}

#[test]
fn four_shard_kill_reopen_around_every_round_is_bit_identical() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let (reference, expected_reports, expected_clusterings, expected_refined) =
        reference_run(&workload, objective.clone());
    let (_, _, serve, _) = trained_setup(&workload, objective.clone());

    let options = DurabilityOptions {
        checkpoint_every_rounds: 2,
        group_commit: false,
    };
    let tmp = TempDir::new("kill-reopen");
    let dir = tmp.path();
    {
        let (graph, previous, _, dynamicc) = trained_setup(&workload, objective.clone());
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let config = graph.config().clone();
        let (_engine, report) =
            ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
                (graph, previous)
            })
            .unwrap();
        assert!(!report.recovered, "first open must be fresh");
        // Killed before serving anything.
    }

    for (i, snapshot) in serve.iter().enumerate() {
        // A fresh "process": reconstruct the deterministic open-time inputs.
        let (graph, _, _, dynamicc) = trained_setup(&workload, objective.clone());
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let config = graph.config().clone();
        let ((mut engine, report), recovery_builds) = BuildCounter::scope(|| {
            ShardedDurableEngine::open(dir, router, config, dynamicc, options, || {
                unreachable!("recovery must not bootstrap")
            })
            .unwrap()
        });
        assert!(report.recovered, "round {i}: open must recover");
        assert_eq!(report.committed_round, i as u64, "round {i}: resume point");
        assert_eq!(report.rolled_back_rounds, 0, "round {i}: clean kill");
        assert_eq!(
            recovery_builds, 0,
            "round {i}: recovery must not rebuild aggregates"
        );
        assert_eq!(engine.rounds_served(), i);

        let round_report = engine.apply_round(&snapshot.batch).unwrap();
        assert_eq!(
            round_report, expected_reports[i],
            "round {i}: report diverged"
        );
        assert_clusterings_identical(
            &engine.merged_clustering(),
            &expected_clusterings[i],
            &format!("round {i}"),
        );
        assert_clusterings_identical(
            &engine.refined_clustering(),
            &expected_refined[i],
            &format!("round {i}: refined"),
        );
        // Killed here: dropped without a shutdown hook.
    }

    // Final recovery, then compare everything.
    let (graph, _, _, dynamicc) = trained_setup(&workload, objective.clone());
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let config = graph.config().clone();
    let (engine, report) =
        ShardedDurableEngine::open(dir, router, config, dynamicc, options, || {
            unreachable!("recovery must not bootstrap")
        })
        .unwrap();
    assert!(report.recovered);
    assert_eq!(engine.rounds_served(), serve.len());
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &reference.merged_clustering(),
        "final",
    );
    assert_clusterings_identical(
        &engine.refined_clustering(),
        &reference.refined_clustering(),
        "final refined",
    );
    assert_eq!(engine.stats(), reference.stats(), "stats diverged");
    assert_eq!(
        engine.shard_comparisons(),
        reference.shard_comparisons(),
        "per-shard similarity work counters diverged"
    );
    assert_eq!(
        engine.cross_shard_edges_recovered(),
        reference.cross_shard_edges_recovered(),
        "recovered-edge counts diverged"
    );
}

#[test]
fn one_shard_torn_tail_is_healed_from_the_refine_log() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let (reference, expected_reports, expected_clusterings, expected_refined) =
        reference_run(&workload, objective.clone());
    let (_, _, serve, _) = trained_setup(&workload, objective.clone());
    assert!(serve.len() >= 2, "need at least two rounds for this test");

    // No automatic checkpoints: the torn round must be recovered from the
    // WAL alone.
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };
    let tmp = TempDir::new("torn-tail");
    let dir = tmp.path();
    {
        let (graph, previous, _, dynamicc) = trained_setup(&workload, objective.clone());
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let config = graph.config().clone();
        let (mut engine, _) =
            ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
                (graph, previous)
            })
            .unwrap();
        let report = engine.apply_round(&serve[0].batch).unwrap();
        assert_eq!(report, expected_reports[0]);
        // Killed after round 1 was fully served and logged everywhere.
    }

    // Tear the tail of shard 2's round-1 WAL record: every shard logged the
    // round, but one of them now cannot recover it.
    let shard_dir = dir.join("shard-002");
    let (_, seg_path) = list_segments(&shard_dir).unwrap().pop().expect("segment");
    let len = std::fs::metadata(&seg_path).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg_path)
        .unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    // Reopen: the committed round is the refine WAL's durable round (1) —
    // the refine WAL logs the full batch and is synced last, so the torn
    // shard is healed by replaying the staged round from it instead of
    // rolling the acknowledged round back everywhere.
    let (graph, _, _, dynamicc) = trained_setup(&workload, objective.clone());
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let config = graph.config().clone();
    let (mut engine, report) =
        ShardedDurableEngine::open(dir, router, config, dynamicc, options, || {
            unreachable!("recovery must not bootstrap")
        })
        .unwrap();
    assert!(report.recovered);
    assert!(report.dropped_torn_tail, "the torn tail must be detected");
    assert_eq!(report.committed_round, 1, "round 1 was fully acknowledged");
    assert_eq!(report.rolled_back_rounds, 0, "no shard rolled back");
    assert_eq!(report.healed_rounds, 1, "the torn shard replayed one round");
    assert_eq!(engine.rounds_served(), 1);
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &expected_clusterings[0],
        "healed round 1",
    );

    // Serving the rest of the workload lands on the reference state.
    for (i, snapshot) in serve.iter().enumerate().skip(1) {
        let round_report = engine.apply_round(&snapshot.batch).unwrap();
        assert_eq!(
            round_report, expected_reports[i],
            "round {i}: report diverged after healing"
        );
        assert_clusterings_identical(
            &engine.merged_clustering(),
            &expected_clusterings[i],
            &format!("post-heal round {i}"),
        );
        assert_clusterings_identical(
            &engine.refined_clustering(),
            &expected_refined[i],
            &format!("post-heal round {i}: refined"),
        );
    }
    assert_eq!(engine.stats(), reference.stats());
    assert_eq!(engine.shard_comparisons(), reference.shard_comparisons());
    assert_eq!(
        engine.cross_shard_edges_recovered(),
        reference.cross_shard_edges_recovered()
    );
}

/// Satellite regression for the refine-restore panic: a round sequence that
/// **adds** an object, **checkpoints** (so the refine snapshot holds it),
/// **deletes** it, and **re-adds** it — killed and reopened around every
/// round — must recover through `CrossShardRefiner::import_state` without
/// panicking (the historical code `expect`ed every restored mirror object to
/// be live) and stay bit-identical to a never-restarted run.
#[test]
fn add_delete_readd_across_checkpoints_recovers_bit_identically() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let (_, _, serve, _) = trained_setup(&workload, objective.clone());

    // The synthetic tail: add a brand-new object, remove it, re-add it —
    // with a checkpoint after every round, so each shape crosses a
    // snapshot/replay boundary.
    let novel = dc_types::ObjectId::new(1_000_000);
    let record = workload
        .initial
        .iter()
        .next()
        .expect("non-empty fixture")
        .1
        .clone();
    let mut rounds: Vec<dc_types::OperationBatch> =
        serve.iter().take(1).map(|s| s.batch.clone()).collect();
    for op in [
        dc_types::Operation::Add {
            id: novel,
            record: record.clone(),
        },
        dc_types::Operation::Remove { id: novel },
        dc_types::Operation::Add {
            id: novel,
            record: record.clone(),
        },
    ] {
        let mut batch = dc_types::OperationBatch::new();
        batch.push(op);
        rounds.push(batch);
    }

    // Never-restarted reference over the same rounds.
    let (graph, previous, _, dynamicc) = trained_setup(&workload, objective.clone());
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let mut reference =
        ShardedEngine::new(router, graph, previous, dynamicc).expect("valid shard config");
    let mut expected_reports = Vec::new();
    let mut expected_refined = Vec::new();
    for batch in &rounds {
        expected_reports.push(reference.apply_round(batch));
        expected_refined.push(reference.refined_clustering());
    }

    let options = DurabilityOptions {
        checkpoint_every_rounds: 1,
        group_commit: false,
    };
    let tmp = TempDir::new("add-delete-readd");
    let dir = tmp.path();
    {
        let (graph, previous, _, dynamicc) = trained_setup(&workload, objective.clone());
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let config = graph.config().clone();
        ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
            (graph, previous)
        })
        .unwrap();
    }
    for (i, batch) in rounds.iter().enumerate() {
        let (graph, _, _, dynamicc) = trained_setup(&workload, objective.clone());
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let config = graph.config().clone();
        let (mut engine, report) =
            ShardedDurableEngine::open(dir, router, config, dynamicc, options, || {
                unreachable!("recovery must not bootstrap")
            })
            .unwrap();
        assert!(report.recovered, "round {i}: open must recover");
        let round_report = engine.apply_round(batch).unwrap();
        assert_eq!(
            round_report.refine, expected_reports[i].refine,
            "round {i}: refine report diverged"
        );
        assert_clusterings_identical(
            &engine.refined_clustering(),
            &expected_refined[i],
            &format!("round {i}: refined"),
        );
        // Killed here.
    }
    let (graph, _, _, dynamicc) = trained_setup(&workload, objective);
    let router = ShardRouter::for_config(N_SHARDS, graph.config());
    let config = graph.config().clone();
    let (engine, report) =
        ShardedDurableEngine::open(dir, router, config, dynamicc, options, || {
            unreachable!("recovery must not bootstrap")
        })
        .unwrap();
    assert!(report.recovered);
    assert_eq!(engine.shard_of(novel), reference.shard_of(novel));
    assert_clusterings_identical(
        &engine.refined_clustering(),
        &reference.refined_clustering(),
        "final refined",
    );
}

#[test]
fn reopening_with_a_different_shard_count_is_rejected() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let options = DurabilityOptions::default();
    let tmp = TempDir::new("shard-count");
    let dir = tmp.path();
    {
        let (graph, previous, _, dynamicc) = trained_setup(&workload, objective.clone());
        let router = ShardRouter::for_config(N_SHARDS, graph.config());
        let config = graph.config().clone();
        ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
            (graph, previous)
        })
        .unwrap();
    }
    let (graph, previous, _, dynamicc) = trained_setup(&workload, objective);
    let router = ShardRouter::for_config(2, graph.config());
    let config = graph.config().clone();
    let result = ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
        (graph, previous)
    });
    assert!(
        matches!(result, Err(dc_core::StorageError::Inconsistent(_))),
        "fewer shards than on disk must be rejected, got {result:?}"
    );
}
