//! Recovery-equivalence regression tests for the durable serving path.
//!
//! The invariant under test: a [`DurableEngine`] that is killed and reopened
//! between (every pair of) rounds produces **bit-identical** clusterings —
//! down to the cluster ids — and bit-identical [`DynamicCStats`] counters to
//! an [`Engine`] that served the same workload without ever restarting.
//! Checked on both fixture families (textual Febrl + DB-index objective,
//! numeric Access + correlation objective), with checkpoints landing both on
//! and off the kill points, and with recovery required to perform **zero**
//! full O(E) aggregate builds (the snapshot restores the maintained
//! aggregates bit-for-bit instead of rebuilding them).

use dc_core::{DurabilityOptions, DurableEngine, DynamicC, Engine, RoundReport};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{BuildCounter, GraphConfig, SimilarityGraph};
use dc_types::{Clustering, Snapshot};
use std::sync::Arc;

mod common;
use common::{assert_clusterings_identical, TempDir};

const TRAIN_ROUNDS: usize = 2;

/// Deterministically build the graph over the training prefix and train a
/// DynamicC on it — called repeatedly to model independent process starts
/// that all load "the same trained model".
fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
) -> (SimilarityGraph, Clustering, Vec<Snapshot>, DynamicC) {
    common::trained_setup(workload, graph_config, objective, TRAIN_ROUNDS)
}

/// Serve every round through an uninterrupted engine, then again through a
/// durable engine that is killed and reopened around every single round, and
/// require the two runs to be indistinguishable.
fn check_recovery_equivalence(
    tag: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
    options: DurabilityOptions,
) {
    // Reference: never restarted.
    let (graph, previous, serve, dynamicc) =
        trained_setup(workload, graph_config, objective.clone());
    let mut uninterrupted = Engine::new(graph, previous, dynamicc);
    let mut expected_reports: Vec<RoundReport> = Vec::new();
    let mut expected_clusterings: Vec<Clustering> = Vec::new();
    for snapshot in &serve {
        expected_reports.push(uninterrupted.apply_round(&snapshot.batch));
        expected_clusterings.push(uninterrupted.clustering().clone());
    }

    // Durable twin: a fresh process for every round.
    let tmp = TempDir::new(tag);
    let dir = tmp.path();
    {
        let (graph, previous, _, dynamicc) =
            trained_setup(workload, graph_config, objective.clone());
        let config = graph.config().clone();
        let (_engine, report) =
            DurableEngine::open(dir, config, dynamicc, options, move || (graph, previous)).unwrap();
        assert!(!report.recovered, "{tag}: first open must be fresh");
    }
    for (i, snapshot) in serve.iter().enumerate() {
        // Every reopen is a simulated crash recovery: a new process with the
        // same config and the same deterministically trained models.
        let (graph, _, _, dynamicc) = trained_setup(workload, graph_config, objective.clone());
        let config = graph.config().clone();
        let ((mut engine, report), recovery_builds) = BuildCounter::scope(|| {
            DurableEngine::open(dir, config, dynamicc, options, || {
                unreachable!("recovery must not bootstrap")
            })
            .unwrap()
        });
        assert!(report.recovered, "{tag}: round {i}: open must recover");
        assert_eq!(
            recovery_builds, 0,
            "{tag}: round {i}: recovery must not rebuild aggregates"
        );
        assert_eq!(engine.rounds_served(), i, "{tag}: round {i}: resume point");

        let round_report = engine.apply_round(&snapshot.batch).unwrap();
        assert_eq!(
            round_report, expected_reports[i],
            "{tag}: round {i}: report diverged"
        );
        assert_clusterings_identical(
            engine.clustering(),
            &expected_clusterings[i],
            &format!("{tag}: round {i}"),
        );
        // Killed here: `engine` is dropped without any shutdown hook.
    }

    // Final state: one more recovery, then compare everything.
    let (graph, _, _, dynamicc) = trained_setup(workload, graph_config, objective.clone());
    let config = graph.config().clone();
    let (engine, report) = DurableEngine::open(dir, config, dynamicc, options, || {
        unreachable!("recovery must not bootstrap")
    })
    .unwrap();
    assert!(report.recovered);
    assert_eq!(engine.rounds_served(), serve.len());
    assert_clusterings_identical(
        engine.clustering(),
        uninterrupted.clustering(),
        &format!("{tag}: final"),
    );
    assert_eq!(
        engine.stats(),
        uninterrupted.stats(),
        "{tag}: DynamicCStats diverged across restarts"
    );
    assert_eq!(
        engine.engine().graph().comparisons(),
        uninterrupted.graph().comparisons(),
        "{tag}: similarity work counters diverged"
    );
}

#[test]
fn febrl_dbindex_recovery_is_bit_identical_with_checkpoints_on_kill_points() {
    check_recovery_equivalence(
        "febrl-ckpt2",
        &small_febrl_workload(),
        || GraphConfig::textual_febrl(0.6),
        Arc::new(DbIndexObjective),
        DurabilityOptions {
            checkpoint_every_rounds: 2,
            group_commit: false,
        },
    );
}

#[test]
fn febrl_dbindex_recovery_is_bit_identical_replaying_the_whole_log() {
    // No automatic checkpoints: every recovery replays every round from the
    // initial snapshot.
    check_recovery_equivalence(
        "febrl-replay",
        &small_febrl_workload(),
        || GraphConfig::textual_febrl(0.6),
        Arc::new(DbIndexObjective),
        DurabilityOptions {
            checkpoint_every_rounds: 0,
            group_commit: false,
        },
    );
}

#[test]
fn access_correlation_recovery_is_bit_identical() {
    check_recovery_equivalence(
        "access",
        &small_access_workload(),
        || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
        Arc::new(CorrelationObjective),
        DurabilityOptions {
            checkpoint_every_rounds: 1,
            group_commit: false,
        },
    );
}

#[test]
fn manual_checkpoint_prunes_the_log_and_survives_recovery() {
    let workload = small_febrl_workload();
    let graph_config = || GraphConfig::textual_febrl(0.6);
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let tmp = TempDir::new("manual-ckpt");
    let dir = tmp.path();

    let (graph, previous, serve, dynamicc) =
        trained_setup(&workload, graph_config, objective.clone());
    let config = graph.config().clone();
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };
    let (mut engine, _) =
        DurableEngine::open(dir, config, dynamicc, options, move || (graph, previous)).unwrap();
    for snapshot in &serve {
        engine.apply_round(&snapshot.batch).unwrap();
    }
    assert_eq!(engine.rounds_since_checkpoint(), serve.len() as u64);
    let round = engine.checkpoint().unwrap();
    assert_eq!(round, serve.len() as u64);
    assert_eq!(engine.rounds_since_checkpoint(), 0);
    // Exactly one snapshot and one (fresh, empty) segment remain.
    assert_eq!(engine.artifact_paths().unwrap().len(), 2);
    let final_clustering = engine.clustering().clone();
    let final_stats = *engine.stats();
    drop(engine);

    let (graph, _, _, dynamicc) = trained_setup(&workload, graph_config, objective);
    let config = graph.config().clone();
    let (engine, report) = DurableEngine::open(dir, config, dynamicc, options, || {
        unreachable!("recovery must not bootstrap")
    })
    .unwrap();
    assert!(report.recovered);
    assert_eq!(report.snapshot_round, serve.len() as u64);
    assert_eq!(
        report.replayed_rounds, 0,
        "post-checkpoint recovery replays nothing"
    );
    assert_clusterings_identical(engine.clustering(), &final_clustering, "manual checkpoint");
    assert_eq!(engine.stats(), &final_stats);
}
