//! Group-commit schedule and crash-stage tests for the pipelined front-end.
//!
//! Two things are pinned here.  First, the **fsync schedule**: with N
//! shards, a classic round costs N per-shard WAL fsyncs plus one refine-WAL
//! fsync (N+1), while a group-committed round — synchronous or pipelined —
//! costs exactly **one** fsync, observed through the
//! `storage.fsync_count` telemetry counter.  Second, **stage-boundary
//! crashes**: a round interrupted between its staged (nosync) shard appends
//! and the group fsync is rolled back everywhere, a round interrupted after
//! the group fsync but before the shard tails reached disk is healed from
//! the group-commit log, and in neither case does a partially-committed
//! round survive reopen.
//!
//! Crash simulation note: an in-process kill cannot lose page-cache bytes,
//! so "the fsync never happened" is modelled by tearing the tail frame off
//! the relevant WAL segment after close — exactly the prefix an OS crash
//! would have left.

use dc_core::{
    DurabilityOptions, PipelineOptions, PipelinedEngine, ShardedDurableEngine,
    ShardedRecoveryReport,
};
use dc_datagen::fixtures::small_febrl_workload;
use dc_datagen::DynamicWorkload;
use dc_objective::{DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter};
use dc_storage::wal::list_segments;
use dc_types::OperationBatch;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::{assert_clusterings_identical, TempDir};

const TRAIN_ROUNDS: usize = 2;
const N_SHARDS: usize = 4;

fn serve_batches(
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
) -> Vec<OperationBatch> {
    let (_, _, serve, _) = common::trained_setup(
        workload,
        || GraphConfig::textual_febrl(0.6),
        objective,
        TRAIN_ROUNDS,
    );
    serve
        .into_iter()
        .map(|s| s.batch)
        .filter(|b| !b.is_empty())
        .collect()
}

fn open_engine(
    dir: &Path,
    n_shards: usize,
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
    options: DurabilityOptions,
) -> (ShardedDurableEngine, ShardedRecoveryReport) {
    let (graph, previous, _, dynamicc) = common::trained_setup(
        workload,
        || GraphConfig::textual_febrl(0.6),
        objective,
        TRAIN_ROUNDS,
    );
    let router = ShardRouter::for_config(n_shards, graph.config());
    let config = graph.config().clone();
    ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
        (graph, previous)
    })
    .expect("open")
}

/// One flush-delimited pipelined round per batch (see
/// `pipeline_equivalence.rs` for why these options force that shape).
fn barrier_options() -> PipelineOptions {
    PipelineOptions {
        max_batch_delay: Duration::from_secs(30),
        record_batches: false,
        ..PipelineOptions::fixed(1_000_000)
    }
}

/// Serve `batches` through a pipelined engine over `dir` and close cleanly.
fn pipelined_serve(
    dir: &Path,
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
    options: DurabilityOptions,
    batches: &[OperationBatch],
) {
    let (engine, report) = open_engine(dir, N_SHARDS, workload, objective, options);
    assert!(!report.recovered, "must start fresh");
    let pipe = PipelinedEngine::start(engine, barrier_options());
    for batch in batches {
        for op in batch.iter() {
            pipe.submit(op.clone()).expect("submit");
        }
        pipe.flush().expect("flush");
    }
    let (engine, report) = pipe.close().expect("clean close");
    assert_eq!(report.rounds_committed, batches.len() as u64);
    drop(engine);
}

/// Synchronous reference: a fresh engine at `dir` after applying `batches`.
fn sync_reference(
    dir: &Path,
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
    options: DurabilityOptions,
    batches: &[OperationBatch],
) -> ShardedDurableEngine {
    let (mut engine, _) = open_engine(dir, N_SHARDS, workload, objective, options);
    for batch in batches {
        engine.apply_round(batch).expect("reference round");
    }
    engine
}

/// Tear the final frame off the newest WAL segment under `state_dir`,
/// modelling an fsync that never reached that file before the crash.
fn tear_wal_tail(state_dir: &Path) {
    let (_, seg_path) = list_segments(state_dir)
        .expect("list segments")
        .pop()
        .expect("segment");
    let len = std::fs::metadata(&seg_path).expect("metadata").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg_path)
        .expect("open segment");
    file.set_len(len - 3).expect("truncate");
}

/// The per-round fsync schedule, pinned by telemetry: K classic rounds cost
/// K×(N+1) fsyncs; K group-committed rounds — synchronous or pipelined —
/// cost exactly K.  (Counters are thread-local; the pipelined engine's
/// worker deltas merge back into this thread at `close`.)
#[test]
fn group_commit_fsyncs_once_per_round_instead_of_once_per_shard() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    let k = batches.len() as u64;
    assert!(k >= 2);
    let reg = dc_telemetry::registry();
    reg.set_enabled(true);

    // No checkpoints: every fsync in the serve window belongs to a round.
    let classic = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };
    let grouped = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: true,
    };

    // Classic synchronous rounds: N shard-WAL fsyncs + 1 refine-WAL fsync.
    let tmp = TempDir::new("fsync-classic");
    let (mut engine, _) = open_engine(tmp.path(), N_SHARDS, &workload, objective.clone(), classic);
    let before = reg.counter("storage.fsync_count");
    for batch in &batches {
        engine.apply_round(batch).expect("round");
    }
    assert_eq!(
        reg.counter("storage.fsync_count") - before,
        k * (N_SHARDS as u64 + 1),
        "classic rounds fsync every shard WAL plus the refine WAL"
    );
    drop(engine);

    // Synchronous group commit: one fsync per round.
    let tmp = TempDir::new("fsync-grouped");
    let (mut engine, _) = open_engine(tmp.path(), N_SHARDS, &workload, objective.clone(), grouped);
    let before = reg.counter("storage.fsync_count");
    for batch in &batches {
        engine.apply_round(batch).expect("round");
    }
    assert_eq!(
        reg.counter("storage.fsync_count") - before,
        k,
        "group commit seals a round with a single refine-WAL fsync"
    );
    drop(engine);

    // Pipelined: identical schedule, one group fsync per committed round.
    let tmp = TempDir::new("fsync-pipelined");
    let (engine, _) = open_engine(tmp.path(), N_SHARDS, &workload, objective.clone(), grouped);
    let before = reg.counter("storage.fsync_count");
    let pipe = PipelinedEngine::start(engine, barrier_options());
    for batch in &batches {
        for op in batch.iter() {
            pipe.submit(op.clone()).expect("submit");
        }
        pipe.flush().expect("flush");
    }
    let (engine, report) = pipe.close().expect("clean close");
    assert_eq!(report.rounds_committed, k);
    assert_eq!(
        reg.counter("storage.fsync_count") - before,
        k,
        "pipelined rounds group-commit with one fsync each"
    );
    drop(engine);
    reg.set_enabled(false);
}

/// Crash between the staged shard appends and the group fsync: the shard
/// WALs hold the round but the group-commit log does not, so the round was
/// never acknowledged and every shard rolls it back on reopen.
#[test]
fn torn_group_commit_log_rolls_the_staged_round_back_everywhere() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    assert!(batches.len() >= 2);
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: true,
    };
    let committed = batches.len() - 1;

    let tmp = TempDir::new("torn-group-log");
    pipelined_serve(tmp.path(), &workload, objective.clone(), options, &batches);
    tear_wal_tail(&tmp.path().join("refine"));

    let (mut engine, report) =
        open_engine(tmp.path(), N_SHARDS, &workload, objective.clone(), options);
    assert!(report.recovered);
    assert!(report.dropped_torn_tail, "the torn tail must be detected");
    assert_eq!(
        report.committed_round, committed as u64,
        "the final round's group fsync never landed"
    );
    assert_eq!(
        report.rolled_back_rounds, 1,
        "every shard discards its staged copy of the uncommitted round"
    );
    assert_eq!(report.healed_rounds, 0);
    assert_eq!(engine.rounds_served(), committed);

    let tmp_ref = TempDir::new("torn-group-log-ref");
    let reference = sync_reference(
        tmp_ref.path(),
        &workload,
        objective.clone(),
        options,
        &batches[..committed],
    );
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &reference.merged_clustering(),
        "rolled-back merged",
    );
    assert_clusterings_identical(
        &engine.refined_clustering(),
        &reference.refined_clustering(),
        "rolled-back refined",
    );
    assert_eq!(engine.stats(), reference.stats());

    // Re-serving the lost round converges on the full-workload state.
    let tmp_full = TempDir::new("torn-group-log-full");
    let full = sync_reference(tmp_full.path(), &workload, objective, options, &batches);
    engine
        .apply_round(&batches[committed])
        .expect("re-serve the rolled-back round");
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &full.merged_clustering(),
        "re-served merged",
    );
    assert_eq!(engine.stats(), full.stats());
}

/// Crash after the group fsync but before the shard WAL tails reached disk:
/// the group-commit log holds the round, so the lagging shards are healed by
/// replaying their sub-batches from it — the acknowledged round survives.
#[test]
fn torn_shard_tails_are_healed_from_the_group_commit_log() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: true,
    };

    let tmp = TempDir::new("torn-shard-tails");
    pipelined_serve(tmp.path(), &workload, objective.clone(), options, &batches);
    // Two of the four shards lose their (staged, never individually
    // fsynced) tail frame; the group-commit log is intact.
    tear_wal_tail(&tmp.path().join("shard-001"));
    tear_wal_tail(&tmp.path().join("shard-003"));

    let (engine, report) = open_engine(tmp.path(), N_SHARDS, &workload, objective.clone(), options);
    assert!(report.recovered);
    assert!(report.dropped_torn_tail);
    assert_eq!(
        report.committed_round,
        batches.len() as u64,
        "the group fsync landed, so the round is committed"
    );
    assert_eq!(report.rolled_back_rounds, 0, "nothing is rolled back");
    assert_eq!(
        report.healed_rounds, 2,
        "two lagging shards each replay one round from the group-commit log"
    );
    assert_eq!(engine.rounds_served(), batches.len());

    let tmp_ref = TempDir::new("torn-shard-tails-ref");
    let reference = sync_reference(tmp_ref.path(), &workload, objective, options, &batches);
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &reference.merged_clustering(),
        "healed merged",
    );
    assert_clusterings_identical(
        &engine.refined_clustering(),
        &reference.refined_clustering(),
        "healed refined",
    );
    assert_eq!(engine.stats(), reference.stats());
    assert_eq!(engine.shard_comparisons(), reference.shard_comparisons());
}

/// Mixed crash: the group-commit log *and* one shard lose their tails.  The
/// torn group log caps the committed round, the torn shard is already at
/// that round, and the intact shards roll back — everyone converges on the
/// last acknowledged round with nothing to heal.
#[test]
fn mixed_torn_tails_converge_on_the_last_acknowledged_round() {
    let workload = small_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let batches = serve_batches(&workload, objective.clone());
    assert!(batches.len() >= 2);
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: true,
    };
    let committed = batches.len() - 1;

    let tmp = TempDir::new("mixed-torn");
    pipelined_serve(tmp.path(), &workload, objective.clone(), options, &batches);
    tear_wal_tail(&tmp.path().join("refine"));
    tear_wal_tail(&tmp.path().join("shard-002"));

    let (engine, report) = open_engine(tmp.path(), N_SHARDS, &workload, objective.clone(), options);
    assert!(report.recovered);
    assert!(report.dropped_torn_tail);
    assert_eq!(report.committed_round, committed as u64);
    assert_eq!(
        report.rolled_back_rounds, 1,
        "the intact shards discard the unacknowledged round"
    );
    assert_eq!(
        report.healed_rounds, 0,
        "no shard is behind the commit point"
    );
    assert_eq!(engine.rounds_served(), committed);

    let tmp_ref = TempDir::new("mixed-torn-ref");
    let reference = sync_reference(
        tmp_ref.path(),
        &workload,
        objective,
        options,
        &batches[..committed],
    );
    assert_clusterings_identical(
        &engine.merged_clustering(),
        &reference.merged_clustering(),
        "mixed-crash merged",
    );
    assert_clusterings_identical(
        &engine.refined_clustering(),
        &reference.refined_clustering(),
        "mixed-crash refined",
    );
    assert_eq!(engine.stats(), reference.stats());
}
