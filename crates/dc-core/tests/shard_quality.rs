//! Pair-level quality equivalence of sharded vs unsharded serving.
//!
//! The whole point of the cross-shard refinement pass (`dc_core::refine`):
//! at N > 1 the *merged* per-shard clustering silently loses the pairs whose
//! records route to different shards, but the *refined* clustering must be
//! pair-for-pair identical to what the unsharded [`Engine`] produces on the
//! same workload — under exact blocking there is no information the sharded
//! engine lacks, so any remaining gap is a bug, not a trade-off.
//!
//! Pinned here with `dc_eval::pair_counts` on both fixture families
//! (textual Febrl + DB-index, numeric Access + correlation), for N ∈ {2, 4},
//! after **every** served round:
//!
//! * post-refinement: the pair sets are **bit-equal** (zero pairs on either
//!   side of the disagreement counts — stronger than F1 within 1e-9);
//! * pre-refinement: the merged clustering's recall against the unsharded
//!   engine never exceeds the refined one's (refinement only closes the
//!   gap), and across the whole workload the partition demonstrably *had* a
//!   gap to close (otherwise this test would be vacuous).

use dc_core::{Engine, ShardedEngine};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_eval::pair_counts;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, TokenBlocking};
use std::sync::Arc;

mod common;

const TRAIN_ROUNDS: usize = 2;

/// Febrl under **exact** token blocking (no stop-word cutoff), so blocking
/// semantics do not depend on shard size and the sharded engine provably has
/// the same information as the unsharded one.
fn exact_febrl_config() -> GraphConfig {
    GraphConfig::new(
        Box::new(dc_similarity::measures::CompositeMeasure::febrl_default()),
        Box::new(TokenBlocking::new(0)),
        0.6,
    )
}

fn check_refinement_closes_the_gap(
    tag: &str,
    n_shards: usize,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
) {
    let (graph_a, prev_a, serve, dynamicc_a) =
        common::trained_setup(workload, graph_config, objective.clone(), TRAIN_ROUNDS);
    let (graph_b, prev_b, _, dynamicc_b) =
        common::trained_setup(workload, graph_config, objective, TRAIN_ROUNDS);

    let mut unsharded = Engine::new(graph_a, prev_a, dynamicc_a);
    let router = ShardRouter::for_config(n_shards, graph_b.config());
    let mut sharded =
        ShardedEngine::new(router, graph_b, prev_b, dynamicc_b).expect("valid shard config");

    let mut gap_rounds = 0usize;
    for (i, snapshot) in serve.iter().enumerate() {
        let context = format!("{tag}: {n_shards} shards: round {i}");
        unsharded.apply_round(&snapshot.batch);
        sharded.apply_round(&snapshot.batch);

        let reference = unsharded.clustering();
        let refined = sharded.refined_clustering();
        refined.check_invariants().unwrap();
        let post = pair_counts(&refined, reference);
        assert_eq!(
            (post.together_result_only, post.together_reference_only),
            (0, 0),
            "{context}: refined pair sets must be bit-equal to the unsharded \
             engine's (F1 = {})",
            post.f1()
        );
        assert!((post.f1() - 1.0).abs() < 1e-9, "{context}");

        let pre = pair_counts(&sharded.merged_clustering(), reference);
        assert!(
            pre.recall() <= post.recall() + 1e-12,
            "{context}: refinement must not lose pairs the raw merge had"
        );
        if pre.together_reference_only > 0 {
            gap_rounds += 1;
        }
    }
    assert!(
        gap_rounds > 0,
        "{tag}: {n_shards} shards: the partition never dropped a pair, so \
         this workload does not exercise refinement at all"
    );
    assert!(
        sharded.cross_shard_edges_recovered() > 0,
        "{tag}: {n_shards} shards: no cross-shard edge was ever recovered"
    );
}

#[test]
fn refined_sharding_matches_the_unsharded_engine_on_febrl() {
    for n_shards in [2, 4] {
        check_refinement_closes_the_gap(
            "febrl",
            n_shards,
            &small_febrl_workload(),
            exact_febrl_config,
            Arc::new(DbIndexObjective),
        );
    }
}

#[test]
fn refined_sharding_matches_the_unsharded_engine_on_access() {
    for n_shards in [2, 4] {
        check_refinement_closes_the_gap(
            "access",
            n_shards,
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
        );
    }
}
