//! Shared helpers for dc-core's integration-test binaries.
//!
//! Each test binary compiles this module independently and uses a different
//! subset of it, so unused-item warnings are expected per binary.
#![allow(dead_code)]

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DynamicC};
use dc_datagen::DynamicWorkload;
use dc_objective::ObjectiveFunction;
use dc_similarity::{GraphConfig, SimilarityGraph};
use dc_types::{Clustering, Snapshot};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Deterministically build the graph over the first `train_rounds` snapshots
/// and train a DynamicC on them — called repeatedly to model independent
/// process starts that all reconstruct "the same trained model".
pub fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> (SimilarityGraph, Clustering, Vec<Snapshot>, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let (train, serve) = workload
        .snapshots
        .split_at(train_rounds.min(workload.snapshots.len()));
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, serve.to_vec(), dynamicc)
}

/// Bit-identity for clusterings: identical cluster ids mapping to identical
/// member sets, and an identical id watermark (so the *next* allocation
/// agrees too).  Strictly stronger than `delta().is_unchanged()`.
pub fn assert_clusterings_identical(a: &Clustering, b: &Clustering, context: &str) {
    assert_eq!(a.cluster_ids(), b.cluster_ids(), "{context}: cluster ids");
    for cid in a.cluster_ids() {
        assert_eq!(
            a.cluster(cid).unwrap().members(),
            b.cluster(cid).unwrap().members(),
            "{context}: members of {cid}"
        );
    }
    assert_eq!(a.id_watermark(), b.id_watermark(), "{context}: watermark");
}

/// Scratch state directory removed on drop, so failed assertions do not
/// leave litter behind.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dc-core-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
