//! Equivalence battery for the sharded serving path.
//!
//! Two families of facts are locked down on the canned fixture workloads
//! (textual Febrl + DB-index objective, numeric Access + correlation
//! objective):
//!
//! 1. **N = 1 is the identity.**  A [`ShardedEngine`] with one shard is
//!    *bit-identical* to a plain [`Engine`] on the same workload: the same
//!    clusterings down to the cluster ids and the id watermark, the same
//!    [`DynamicCStats`], the same comparison counters, and the same
//!    per-round [`RoundReport`]s.
//! 2. **N > 1 partitions, never duplicates or loses.**  For 2 and 4 shards,
//!    every live object is owned by exactly one shard and appears in exactly
//!    one cluster of the merged clustering; the merged statistics are the
//!    field-wise sum of the per-shard statistics; cluster-id namespaces stay
//!    disjoint; and no shard performs a full aggregate build in steady
//!    state.

use dc_core::{DynamicC, DynamicCStats, Engine, ShardedEngine};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, SimilarityGraph};
use dc_types::{Clustering, Snapshot};
use std::collections::BTreeSet;
use std::sync::Arc;

mod common;
use common::assert_clusterings_identical;

const TRAIN_ROUNDS: usize = 2;

fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
) -> (SimilarityGraph, Clustering, Vec<Snapshot>, DynamicC) {
    common::trained_setup(workload, graph_config, objective, TRAIN_ROUNDS)
}

fn check_one_shard_bit_identity(
    tag: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
) {
    let (graph_a, prev_a, serve, dynamicc_a) =
        trained_setup(workload, graph_config, objective.clone());
    let (graph_b, prev_b, _, dynamicc_b) = trained_setup(workload, graph_config, objective);

    let mut engine = Engine::new(graph_a, prev_a, dynamicc_a);
    let router = ShardRouter::for_config(1, graph_b.config());
    let mut sharded =
        ShardedEngine::new(router, graph_b, prev_b, dynamicc_b).expect("valid shard config");
    assert_eq!(sharded.cross_shard_edges_recovered(), 0, "{tag}: one shard");

    for (i, snapshot) in serve.iter().enumerate() {
        let expected = engine.apply_round(&snapshot.batch);
        let report = sharded.apply_round(&snapshot.batch);
        assert_eq!(
            report.merged, expected,
            "{tag}: round {i}: merged report diverged"
        );
        assert_eq!(report.per_shard.len(), 1);
        assert_eq!(report.per_shard[0], expected, "{tag}: round {i}");
        assert_clusterings_identical(
            &sharded.merged_clustering(),
            engine.clustering(),
            &format!("{tag}: round {i}"),
        );
    }
    assert_eq!(&sharded.stats(), engine.stats(), "{tag}: stats diverged");
    assert_eq!(
        sharded.comparisons(),
        engine.graph().comparisons(),
        "{tag}: comparison counters diverged"
    );
    assert_eq!(sharded.rounds_served(), serve.len());
}

#[test]
fn one_shard_is_bit_identical_to_the_engine_on_febrl() {
    check_one_shard_bit_identity(
        "febrl",
        &small_febrl_workload(),
        || GraphConfig::textual_febrl(0.6),
        Arc::new(DbIndexObjective),
    );
}

#[test]
fn one_shard_is_bit_identical_to_the_engine_on_access() {
    check_one_shard_bit_identity(
        "access",
        &small_access_workload(),
        || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
        Arc::new(CorrelationObjective),
    );
}

fn check_multi_shard_invariants(
    tag: &str,
    n_shards: usize,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
) {
    let (graph, previous, serve, dynamicc) = trained_setup(workload, graph_config, objective);
    let donor_stats = *dynamicc.stats();
    let donor_objects = graph.object_count();
    let router = ShardRouter::for_config(n_shards, graph.config());
    let mut sharded =
        ShardedEngine::new(router, graph, previous, dynamicc).expect("valid shard config");
    assert_eq!(sharded.shard_count(), n_shards);
    assert_eq!(sharded.object_count(), donor_objects, "{tag}: coverage");

    for (i, snapshot) in serve.iter().enumerate() {
        let context = format!("{tag}: {n_shards} shards: round {i}");
        let report = sharded.apply_round(&snapshot.batch);

        // Zero full aggregate builds per shard per round in steady state.
        assert_eq!(report.merged.full_aggregate_builds, 0, "{context}: builds");
        for (s, shard_report) in report.per_shard.iter().enumerate() {
            assert_eq!(
                shard_report.full_aggregate_builds, 0,
                "{context}: shard {s} rebuilt aggregates"
            );
        }
        assert_eq!(
            report.merged.operations,
            snapshot.batch.len(),
            "{context}: sub-batches must partition the batch"
        );

        // Merged stats are the field-wise sum of the per-shard stats.
        let summed = DynamicCStats::merged(sharded.shards().iter().map(|s| *s.stats()));
        assert_eq!(sharded.stats(), summed, "{context}: stats sum");
        assert_eq!(
            sharded.stats().observed_rounds,
            donor_stats.observed_rounds,
            "{context}: only shard 0 carries the training history"
        );

        // Every live object is owned by exactly one shard and appears in
        // exactly one cluster of exactly that shard's clustering.
        let mut seen: BTreeSet<dc_types::ObjectId> = BTreeSet::new();
        for (s, shard) in sharded.shards().iter().enumerate() {
            shard.clustering().check_invariants().unwrap();
            assert_eq!(
                shard.clustering().object_count(),
                shard.graph().object_count(),
                "{context}: shard {s} graph/clustering disagree"
            );
            for id in shard.clustering().object_ids() {
                assert!(seen.insert(id), "{context}: {id} lives in two shards");
                assert_eq!(
                    sharded.shard_of(id),
                    Some(s),
                    "{context}: assignment disagrees for {id}"
                );
            }
        }
        assert_eq!(seen.len(), sharded.object_count(), "{context}: coverage");

        // Cluster-id namespaces stay disjoint: the merged clustering is a
        // valid partition covering every live object, and its size is the
        // sum of the per-shard clusterings.
        let merged = sharded.merged_clustering();
        merged.check_invariants().unwrap();
        assert_eq!(merged.object_count(), seen.len(), "{context}");
        // The refined view is a valid partition over exactly the same
        // objects (its pair-level quality is pinned by shard_quality.rs).
        let refined = sharded.refined_clustering();
        refined.check_invariants().unwrap();
        assert_eq!(refined.object_count(), seen.len(), "{context}: refined");
        assert_eq!(
            merged.cluster_count(),
            sharded
                .shards()
                .iter()
                .map(|s| s.clustering().cluster_count())
                .sum::<usize>(),
            "{context}: merged clusters"
        );
        assert_eq!(report.merged.objects, merged.object_count(), "{context}");
        assert_eq!(report.merged.clusters, merged.cluster_count(), "{context}");
    }
}

#[test]
fn multi_shard_runs_partition_objects_stats_and_ids_on_febrl() {
    for n_shards in [2, 4] {
        check_multi_shard_invariants(
            "febrl",
            n_shards,
            &small_febrl_workload(),
            || GraphConfig::textual_febrl(0.6),
            Arc::new(DbIndexObjective),
        );
    }
}

#[test]
fn multi_shard_runs_partition_objects_stats_and_ids_on_access() {
    for n_shards in [2, 4] {
        check_multi_shard_invariants(
            "access",
            n_shards,
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
        );
    }
}

/// Thread count must never change results: the same sharded workload served
/// with one worker thread and with one thread per shard is bit-identical.
#[test]
fn thread_count_does_not_change_results() {
    let workload = small_febrl_workload();
    let graph_config = || GraphConfig::textual_febrl(0.6);
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let (graph_a, prev_a, serve, dynamicc_a) =
        trained_setup(&workload, graph_config, objective.clone());
    let (graph_b, prev_b, _, dynamicc_b) = trained_setup(&workload, graph_config, objective);

    let router_a = ShardRouter::for_config(4, graph_a.config());
    let router_b = ShardRouter::for_config(4, graph_b.config());
    let mut wide =
        ShardedEngine::new(router_a, graph_a, prev_a, dynamicc_a).expect("valid shard config");
    let mut narrow = ShardedEngine::new(router_b, graph_b, prev_b, dynamicc_b)
        .expect("valid shard config")
        .with_max_threads(1);
    for snapshot in &serve {
        let ra = wide.apply_round(&snapshot.batch);
        let rb = narrow.apply_round(&snapshot.batch);
        assert_eq!(ra, rb, "thread count changed a round report");
    }
    assert_clusterings_identical(
        &wide.merged_clustering(),
        &narrow.merged_clustering(),
        "threads",
    );
    assert_eq!(wide.stats(), narrow.stats());
}
