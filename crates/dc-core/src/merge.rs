//! The merge algorithm (Algorithm 1, §6.2).
//!
//! The merge model only says *whether* a cluster is likely to merge — not
//! with whom.  Algorithm 1 resolves that: clusters flagged by the model form
//! the candidate set `Cl_merge`; for each candidate the partner chosen is
//! the one whose hypothetical merged cluster is the most *stable* (the
//! lowest probability of merging again, evaluated through the same model on
//! the merged cluster's features); the pair is then verified against the
//! objective function and only applied when the objective improves.
//!
//! Two efficiency refinements from the paper are kept: candidates can only
//! pair with other candidates (the "both sides are predicted to merge"
//! observation that avoids the `O(n²)` pairwise check), and partners are
//! further restricted to clusters that share at least one similarity-graph
//! edge with the candidate — merging edge-less clusters can never improve
//! any of the objectives and would be vetoed by verification anyway.

use crate::config::DynamicCStats;
use crate::dirty::PassScope;
use crate::models::ModelPair;
use dc_evolution::{merge_features, merge_features_of_members};
use dc_objective::{improves, ObjectiveFunction};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::{BTreeSet, VecDeque};

/// One pass of the merge algorithm.  Returns `true` when at least one merge
/// was applied.
///
/// `agg` is the round's maintained aggregate: the pass reads every feature
/// and candidate neighbourhood from it and folds every applied merge back in
/// via [`ClusterAggregates::apply_merge`], so no candidate triggers a full
/// rebuild.
pub(crate) fn merge_pass(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
) -> bool {
    merge_pass_impl(
        graph,
        clustering,
        agg,
        objective,
        models,
        theta_scale,
        stats,
        None,
        None,
    )
}

/// The candidate-restricted entry point of the merge pass, used by the
/// incremental cross-shard refiner.  The pass walks the *same* candidate
/// queue as [`merge_pass`] (flags come from the scope's cache, which holds
/// exactly the values the full pass would compute), but a dequeued candidate
/// outside the scope's evaluation set is removed without being evaluated —
/// replaying the rejection the previous fixed point already proved for it.
/// Applied merges grow the evaluation set through
/// [`PassScope::after_merge`], so cascades are chased exactly like the full
/// pass chases them.  The unsharded serving path never calls this.
///
/// `global_score` is the pass's running objective score, threaded in (and
/// kept current across applied merges) when the objective declares
/// [`dc_objective::DecisionLocality::GlobalMean`]: clean-skip decisions are
/// then gated on the scope's recorded score-validity intervals at the skip
/// site, and every fully rejected candidate records a fresh interval.  Pass
/// `None` for sum-decomposable objectives, whose rejections hold at any
/// score.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_pass_scoped(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
    scope: &mut PassScope,
    global_score: Option<&mut f64>,
) -> bool {
    merge_pass_impl(
        graph,
        clustering,
        agg,
        objective,
        models,
        theta_scale,
        stats,
        Some(scope),
        global_score,
    )
}

#[allow(clippy::too_many_arguments)]
fn merge_pass_impl(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
    mut scope: Option<&mut PassScope>,
    mut global_score: Option<&mut f64>,
) -> bool {
    // Line 2 of Algorithm 1: collect the clusters the merge model flags.
    let mut candidates: BTreeSet<ClusterId> = BTreeSet::new();
    for cid in clustering.cluster_ids() {
        let flagged = match scope.as_mut() {
            Some(s) => s.merge_flag(cid, agg, models, theta_scale),
            None => models.predicts_merge(&merge_features(agg, cid), theta_scale),
        };
        if flagged {
            candidates.insert(cid);
        }
    }
    stats.merge_candidates += candidates.len();

    let mut queue: VecDeque<ClusterId> = candidates.iter().copied().collect();
    let mut changed = false;

    // Lines 3–13: repeatedly dequeue a candidate, pick its best partner, and
    // verify the merge against the objective.
    while let Some(cid) = queue.pop_front() {
        if !candidates.contains(&cid) || !clustering.contains_cluster(cid) {
            continue;
        }
        if let Some(s) = scope.as_ref() {
            let current_score = global_score.as_deref().copied();
            if !s.in_eval(cid) && s.merge_rejection_holds(cid, current_score) {
                // Clean candidate: nothing within decision reach changed
                // since the previous fixed point rejected its merges, and —
                // for global-mean objectives — the running score is still
                // inside the rejection's validity interval, so replay that
                // rejection (the full pass would evaluate and remove it here
                // too, with the same set evolution).  A clean candidate
                // whose interval the score has drifted out of falls through
                // and is evaluated in place, exactly like the full pass
                // evaluates it at this queue position.
                candidates.remove(&cid);
                continue;
            }
        }
        // Partners: candidate clusters sharing at least one edge with `cid`.
        // When no neighbouring cluster was flagged (the merge model can be
        // conservative about large, already-cohesive clusters that are about
        // to absorb a newcomer), fall back to all neighbouring clusters —
        // the objective verification below still vetoes unhelpful merges.
        let all_neighbours = agg.neighbour_clusters(cid);
        let mut neighbours: Vec<ClusterId> = all_neighbours
            .iter()
            .copied()
            .filter(|n| candidates.contains(n) && clustering.contains_cluster(*n))
            .collect();
        if neighbours.is_empty() {
            neighbours = all_neighbours
                .into_iter()
                .filter(|n| clustering.contains_cluster(*n))
                .collect();
        }
        if neighbours.is_empty() {
            candidates.remove(&cid);
            continue;
        }

        // Rank partners by the stability of the hypothetical merged cluster:
        // the partner minimizing P(C_new = 1) under the merge model is tried
        // first; if the objective vetoes it, the next most stable partner is
        // tried, so a single misleading candidate cannot starve the merge.
        let members: BTreeSet<ObjectId> = clustering
            .cluster(cid)
            .expect("live candidate")
            .members()
            .clone();
        let mut ranked: Vec<(ClusterId, f64)> = neighbours
            .into_iter()
            .map(|other| {
                let mut merged = members.clone();
                merged.extend(clustering.cluster(other).expect("live candidate").iter());
                let features = merge_features_of_members(graph, clustering, &merged);
                (other, models.merge_probability(&features))
            })
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut applied = false;
        let mut min_rejected_delta = f64::INFINITY;
        for (partner, _) in ranked {
            // Verification: only apply the merge if the objective improves.
            stats.objective_evaluations += 1;
            let delta = objective.merge_delta_with(agg, graph, clustering, cid, partner);
            if improves(delta) {
                let merged = clustering
                    .merge(cid, partner)
                    .expect("both clusters are live");
                agg.apply_merge(cid, partner, merged);
                if let Some(s) = scope.as_mut() {
                    s.after_merge(cid, partner, merged, agg);
                }
                if let Some(score) = global_score.as_deref_mut() {
                    *score += delta;
                }
                candidates.remove(&cid);
                candidates.remove(&partner);
                // The merged cluster may merge again; enqueue it so
                // convergence does not depend on the outer loop alone.
                candidates.insert(merged);
                queue.push_back(merged);
                stats.merges_applied += 1;
                changed = true;
                applied = true;
                break;
            } else {
                stats.merges_rejected += 1;
                min_rejected_delta = min_rejected_delta.min(delta);
            }
        }
        if !applied {
            // Every partner was rejected: for a global-mean objective,
            // record how far the score may drift before the *tightest*
            // rejection (the smallest delta) could flip, so future rounds
            // can replay this proof while it provably still holds.
            if let (Some(s), Some(score)) = (scope.as_mut(), global_score.as_deref().copied()) {
                if min_rejected_delta.is_finite() {
                    let floor = objective.merge_rejection_score_floor(
                        min_rejected_delta,
                        score,
                        clustering.cluster_count(),
                    );
                    s.record_merge_rejection(cid, floor);
                }
            }
            candidates.remove(&cid);
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPair;
    use dc_evolution::{LabeledExample, TrainingBuffer};
    use dc_ml::ModelKind;
    use dc_objective::CorrelationObjective;
    use dc_similarity::fixtures::graph_from_edges;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// Train a model pair on synthetic data where "high max-inter similarity
    /// ⇒ merge" — the dominant real pattern.  The other features are drawn
    /// from the same ranges for both classes so the learned decision is
    /// driven by the inter-similarity feature, mirroring what the paper
    /// reports about the learned coefficients.
    fn trained_models() -> ModelPair {
        let mut pair = ModelPair::new(ModelKind::LogisticRegression, 1000);
        let mut merge_buf = TrainingBuffer::new(1000);
        let mut split_buf = TrainingBuffer::new(1000);
        for i in 0..60 {
            let j = (i % 10) as f64 / 50.0;
            let f1 = 1.0 - (i % 5) as f64 * 0.05;
            let f3 = 1.0 + (i % 3) as f64;
            let f4 = 1.0 + (i % 4) as f64;
            merge_buf.push(LabeledExample::new(vec![f1, 0.5 + j, f3, f4], true));
            merge_buf.push(LabeledExample::new(
                vec![f1, 0.02 + j / 10.0, f3, f4],
                false,
            ));
            split_buf.push(LabeledExample::new(vec![0.3 - j / 2.0, 0.6, 5.0], true));
            split_buf.push(LabeledExample::new(vec![0.95 - j / 10.0, 0.1, 3.0], false));
        }
        // Transplant the buffers through the public API: absorb a fake round.
        let mut round = dc_evolution::RoundExamples::default();
        for e in merge_buf.iter() {
            if e.label {
                round.merge_positives.push(e.features.clone());
            } else {
                round.merge_negatives_active.push(e.features.clone());
            }
        }
        for e in split_buf.iter() {
            if e.label {
                round.split_positives.push(e.features.clone());
            } else {
                round.split_negatives_active.push(e.features.clone());
            }
        }
        let mut sampler =
            dc_evolution::NegativeSampler::new(dc_evolution::SamplerConfig::default());
        pair.absorb_round(&round, &mut sampler);
        pair.retrain();
        pair
    }

    #[test]
    fn strongly_connected_singletons_are_merged() {
        // Two duplicates with similarity 0.95 sitting in separate singleton
        // clusters must be flagged and merged; the far-away pair with no
        // edges must be left alone.
        let graph = graph_from_edges(4, &[(1, 2, 0.95)]);
        let mut clustering = Clustering::singletons((1..=4).map(oid));
        let models = trained_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = merge_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(changed);
        assert_eq!(clustering.cluster_of(oid(1)), clustering.cluster_of(oid(2)));
        assert_ne!(clustering.cluster_of(oid(3)), clustering.cluster_of(oid(4)));
        assert!(stats.merges_applied >= 1);
        clustering.check_invariants().unwrap();
    }

    #[test]
    fn objective_verification_vetoes_bad_merges() {
        // The model may flag weakly-linked clusters, but the correlation
        // objective worsens if they merge (similarity 0.2 < 0.5), so the
        // merge must be rejected and counted as such.
        let graph = graph_from_edges(2, &[(1, 2, 0.2)]);
        let mut clustering = Clustering::singletons((1..=2).map(oid));
        let models = trained_models();
        let mut stats = DynamicCStats::default();
        // Force candidate generation by scaling θ down to near zero.
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = merge_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            0.01,
            &mut stats,
        );
        assert!(!changed);
        assert_eq!(clustering.cluster_count(), 2);
        assert!(stats.merges_rejected >= 1);
        assert_eq!(stats.merges_applied, 0);
    }

    #[test]
    fn chains_of_merges_converge_within_one_pass_queue() {
        // Three mutual duplicates as singletons: the pass should be able to
        // produce the full 3-cluster merge by re-enqueueing merged results.
        let graph = graph_from_edges(3, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9)]);
        let mut clustering = Clustering::singletons((1..=3).map(oid));
        let models = trained_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        merge_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert_eq!(clustering.cluster_count(), 1);
        assert!(stats.merges_applied >= 2);
    }

    #[test]
    fn untrained_models_flag_everything_but_objective_keeps_it_sound() {
        // An untrained pair predicts probability 0.5 ≥ default θ 0.5 for all
        // clusters, so everything is a candidate — verification must still
        // only allow genuinely improving merges.
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (3, 4, 0.1)]);
        let mut clustering = Clustering::singletons((1..=4).map(oid));
        let models = ModelPair::new(ModelKind::LogisticRegression, 10);
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        merge_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert_eq!(clustering.cluster_of(oid(1)), clustering.cluster_of(oid(2)));
        assert_ne!(clustering.cluster_of(oid(3)), clustering.cluster_of(oid(4)));
    }
}
