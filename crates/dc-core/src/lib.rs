//! # dc-core — DynamicC
//!
//! The paper's primary contribution: a machine-learning-augmented dynamic
//! clustering system that learns, from historical cluster evolution, whether
//! a cluster is about to **merge** or **split** when the database changes,
//! and uses those predictions — verified against the clustering objective —
//! to update the clustering without re-running the batch algorithm.
//!
//! The lifecycle mirrors the paper exactly:
//!
//! 1. **Training phase** (§4, §5).  The underlying batch algorithm keeps
//!    answering re-clustering requests while DynamicC observes: each round's
//!    difference between the old and new clustering is converted into
//!    merge/split evolution steps ([`dc_evolution::derive_transformation`]),
//!    turned into per-cluster feature vectors, balanced with weighted
//!    negative samples, and appended to bounded training buffers
//!    ([`models::ModelPair`]).  Fitting the two classifiers and selecting
//!    the recall-first thresholds happens in [`DynamicC::retrain`].
//! 2. **Serving phase** (§6).  [`DynamicC`] implements
//!    [`dc_baselines::IncrementalClusterer`]: initial processing places new
//!    and updated objects into singleton clusters, then the merge algorithm
//!    (Algorithm 1, [`merge`]) and the split algorithm (Algorithm 2,
//!    [`split`]) alternate until a fixed point (Algorithm 3, [`dynamic`]).
//!    Every change proposed by a model is verified against the objective
//!    function before it is applied, so false positives cost one evaluation
//!    and never harm quality.
//! 3. **Continual learning** (§5.3, §8).  New rounds can keep being
//!    observed (e.g. whenever the batch algorithm is run occasionally to
//!    establish a quality baseline), old examples age out of the buffers,
//!    and [`DynamicC::retrain`] refreshes the models and thresholds.
//! 4. **Serving at scale** ([`engine`]).  The persistent [`Engine`] owns the
//!    similarity graph, the clustering, and the incrementally maintained
//!    cluster aggregates across rounds, so a steady-state round performs no
//!    full O(E) aggregate rebuild at all — `apply_round(batch)` folds the
//!    operations into all three states at O(degree) per operation and then
//!    runs Algorithm 3 against the maintained aggregate.
//! 5. **Durable serving** ([`durable`]).  The [`DurableEngine`] wraps the
//!    engine with `dc-storage`'s write-ahead log and snapshot subsystem:
//!    rounds are logged before they are applied, checkpoints bound recovery
//!    replay, and a recovered instance is bit-identical to a never-restarted
//!    one.
//! 6. **Sharded serving** ([`shard`]).  The [`ShardedEngine`] partitions
//!    the live objects across N independent engines by their blocking keys
//!    (`dc_similarity::ShardRouter`) and serves each round's sub-batches in
//!    parallel on a scoped-thread pool; [`ShardedDurableEngine`] adds one
//!    WAL + snapshot directory per shard with min-committed-round crash
//!    recovery.  One shard is bit-identical to the unsharded engine.
//! 7. **Cross-shard refinement** ([`refine`]).  After the parallel per-shard
//!    rounds, a deterministic boundary pass recovers the cross-shard
//!    similarity edges the partition dropped and repairs the merged
//!    clustering by running the trained merge/split passes — making
//!    multi-shard serving quality-equivalent to the unsharded engine instead
//!    of silently lossy.  Repair is **incremental**: the refiner maintains
//!    the global mirror, boundary index, and aggregates across rounds,
//!    computes each shard pair's cross edges once per pair lifetime, and
//!    restricts the merge/split fixed point to the dirty closure of the
//!    round's changes, partitioned into connected repair regions.  For
//!    objectives whose accept/reject decisions depend on the global score
//!    (declared via [`dc_objective::DecisionLocality`]), recorded rejection
//!    validity intervals keep the restricted fixed point decision-identical
//!    to a full repair.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub(crate) mod dirty;
pub mod durable;
pub mod dynamic;
pub mod engine;
pub mod merge;
pub mod models;
pub mod pipeline;
pub mod refine;
pub mod shard;
pub mod split;
pub mod trainer;

pub use config::{DynamicCConfig, DynamicCStats};
pub use durable::{DurabilityOptions, DurableEngine, RecoveryReport};
pub use dynamic::DynamicC;
pub use engine::{Engine, RoundReport};
pub use models::ModelPair;
pub use pipeline::{
    AdaptiveBatcher, PipelineError, PipelineOptions, PipelineReport, PipelinedEngine,
};
pub use refine::RefineReport;
pub use shard::{
    ShardConfigError, ShardedDurableEngine, ShardedEngine, ShardedRecoveryReport,
    ShardedRoundReport,
};
pub use trainer::{train_on_workload, RoundObservation, TrainingReport};

pub use dc_storage::StorageError;
