//! Training-phase driver: run the underlying batch algorithm over a dynamic
//! workload while DynamicC observes every round (§5.2 "Training the Model").

use crate::dynamic::DynamicC;
use dc_batch::BatchClusterer;
use dc_similarity::SimilarityGraph;
use dc_types::{Clustering, Snapshot};

/// What happened in one observed round.
#[derive(Debug, Clone)]
pub struct RoundObservation {
    /// 1-based snapshot index.
    pub snapshot_index: usize,
    /// Number of operations in the round.
    pub operations: usize,
    /// The clustering the batch algorithm produced for this round.
    pub batch_clustering: Clustering,
    /// Wall-clock seconds the batch algorithm needed for this round.
    pub batch_seconds: f64,
}

/// The outcome of the whole training phase.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Per-round observations, in replay order.
    pub rounds: Vec<RoundObservation>,
}

impl TrainingReport {
    /// The batch clustering of the last observed round (or the provided
    /// fallback when no round was observed).
    pub fn final_clustering(&self, fallback: &Clustering) -> Clustering {
        self.rounds
            .last()
            .map(|r| r.batch_clustering.clone())
            .unwrap_or_else(|| fallback.clone())
    }

    /// Total batch wall-clock time across the observed rounds.
    pub fn total_batch_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.batch_seconds).sum()
    }
}

/// Replay `snapshots` onto `graph`, answering every round with the batch
/// algorithm while `dynamicc` observes the evolution.  After the last round
/// the models are retrained once more so the freshest evolution is included.
///
/// * `graph` must already contain the initial dataset and
///   `initial_clustering` must be the batch clustering of that initial data;
/// * on return, `graph` reflects all snapshots and the report carries each
///   round's batch clustering (the last one is the natural starting point
///   for the serving phase).
pub fn train_on_workload(
    dynamicc: &mut DynamicC,
    graph: &mut SimilarityGraph,
    initial_clustering: &Clustering,
    snapshots: &[Snapshot],
    batch: &dyn BatchClusterer,
) -> TrainingReport {
    let mut previous = initial_clustering.clone();
    let mut rounds = Vec::with_capacity(snapshots.len());
    for snapshot in snapshots {
        graph.apply_batch(&snapshot.batch);
        let span = dc_telemetry::registry().span("train.batch_recluster");
        let outcome = batch.recluster(graph, &previous);
        let batch_seconds = span.finish_ns() as f64 / 1e9;
        dynamicc.observe_round(graph, &previous, &snapshot.batch, &outcome.clustering);
        rounds.push(RoundObservation {
            snapshot_index: snapshot.index,
            operations: snapshot.batch.len(),
            batch_clustering: outcome.clustering.clone(),
            batch_seconds,
        });
        previous = outcome.clustering;
    }
    dynamicc.retrain();
    TrainingReport { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_baselines::IncrementalClusterer;
    use dc_batch::HillClimbing;
    use dc_datagen::{DynamicWorkload, FebrlLikeGenerator, WorkloadConfig};
    use dc_eval::quality_report;
    use dc_objective::DbIndexObjective;
    use dc_similarity::GraphConfig;
    use std::sync::Arc;

    /// End-to-end: generate a Febrl-like workload, train DynamicC by
    /// observing hill-climbing, then serve an unseen snapshot and compare
    /// against the batch result — the paper's core claim is that the served
    /// clustering stays close to the batch clustering (within a few percent
    /// pair-F1) while doing far less work.
    #[test]
    fn trained_dynamicc_tracks_the_batch_result_on_a_heldout_round() {
        let full = FebrlLikeGenerator {
            originals: 80,
            duplicates_per_original: 2.0,
            seed: 21,
            ..FebrlLikeGenerator::default()
        }
        .generate();
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                initial_fraction: 0.4,
                snapshots: 4,
                add_fraction: 0.2,
                remove_fraction: 0.02,
                update_fraction: 0.03,
                seed: 7,
                ..WorkloadConfig::default()
            },
        );

        let objective = Arc::new(DbIndexObjective);
        let batch = HillClimbing::with_objective(objective.clone());
        let mut graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &workload.initial);
        let initial = batch.cluster(&graph).clustering;

        let mut dynamicc = DynamicC::with_objective(objective.clone());
        let (train_snaps, heldout) = workload.snapshots.split_at(3);
        let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train_snaps, &batch);
        assert_eq!(report.rounds.len(), 3);
        assert!(dynamicc.is_trained());
        assert!(report.total_batch_seconds() >= 0.0);
        let previous = report.final_clustering(&initial);

        // Serve the held-out snapshot with DynamicC and with the batch
        // algorithm, then compare.
        let snapshot = &heldout[0];
        graph.apply_batch(&snapshot.batch);
        let served = dynamicc.recluster(&graph, &previous, &snapshot.batch);
        served.check_invariants().unwrap();
        let batch_truth = batch.recluster(&graph, &previous).clustering;
        let quality = quality_report(&served, &batch_truth);
        assert!(
            quality.f1 > 0.9,
            "DynamicC strayed too far from the batch result: {quality:?}"
        );
        // DynamicC must actually have made structural changes (the snapshot
        // adds dozens of duplicate objects).
        assert!(dynamicc.stats().changes_applied() > 0);
    }

    #[test]
    fn empty_snapshot_list_returns_the_initial_clustering() {
        let full = FebrlLikeGenerator {
            originals: 10,
            duplicates_per_original: 1.0,
            ..FebrlLikeGenerator::default()
        }
        .generate();
        let objective = Arc::new(DbIndexObjective);
        let batch = HillClimbing::with_objective(objective.clone());
        let mut graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &full);
        let initial = batch.cluster(&graph).clustering;
        let mut dynamicc = DynamicC::with_objective(objective);
        let report = train_on_workload(&mut dynamicc, &mut graph, &initial, &[], &batch);
        assert!(report.rounds.is_empty());
        assert!(report
            .final_clustering(&initial)
            .delta(&initial)
            .is_unchanged());
        assert!(!dynamicc.is_trained());
    }
}
