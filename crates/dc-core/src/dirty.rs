//! Dirty-set tracking for the incremental refinement pass.
//!
//! The cross-shard refiner ([`crate::refine`]) runs the same trained merge
//! and split passes as the unsharded engine, but over a *global* mirror of
//! all shards — so a full fixed point each round costs about one unsharded
//! pass, erasing the sharded throughput win.  The fix is the paper's own
//! discipline applied one layer up: a round only changes aggregates within
//! O(degree) of the touched objects, so only clusters near those changes can
//! flip a merge/split decision.  Everything else ended the previous round at
//! a rejection fixed point that still stands verbatim.
//!
//! [`PassScope`] carries the two pieces of cross-round state that make the
//! restricted pass both cheap and **decision-identical** to the full one:
//!
//! * a **model-flag cache** — the merge/split model predictions per cluster.
//!   Models are frozen while serving and the features are pure functions of
//!   the maintained aggregates, so a flag stays valid until a round (or an
//!   applied merge/split) touches the cluster's aggregate neighbourhood, at
//!   which point it is invalidated and lazily recomputed.  Candidate
//!   collection therefore sees *exactly* the candidate set the full pass
//!   would compute, without re-deriving features for every live cluster.
//! * the **evaluation set** (`eval`) — the dirty closure: clusters whose
//!   decision inputs may have changed since the previous fixed point.  The
//!   scoped pass walks the full candidate queue (so the candidate-set
//!   evolution and cluster-id allocation order match the full pass), but a
//!   dequeued candidate outside `eval` is removed without evaluation — it
//!   replays the rejection the previous fixed point already proved.  Applied
//!   merges and splits grow `eval` with the affected neighbourhood (out to
//!   two hops, the reach of the partner-ranking features), so in-pass
//!   cascades are chased exactly like the full pass chases them.
//!
//! The closure radii mirror the feature locality: a cluster's own flag reads
//! its aggregate row and its neighbours' sizes (1 hop), and a merge decision
//! ranks partners by hypothetical merged-cluster features (2 hops).  Rounds
//! whose batch touches nothing leave `eval` empty and the pass loop is
//! skipped outright — zero objective evaluations, zero repair work.
//!
//! **Global-mean objectives need one more piece.**  For a sum-decomposable
//! objective ([`DecisionLocality::Local`]) an unchanged neighbourhood really
//! does pin the decision, and the clean-skip above is exact.  But an
//! objective that is a *mean* over clusters (db-index) couples every delta
//! to the global score through the denominator: a rejection proven at one
//! score can flip when the score drifts far enough, even though nothing near
//! the cluster changed.  So alongside the flags, [`PassScope`] records each
//! proven rejection's **score-validity interval** (a merge floor / split
//! ceiling reported by the objective itself).  The scoped passes consult the
//! interval *at the skip site* with the pass's running score: while the
//! score stays inside, the skip replays a rejection that provably still
//! holds; once it leaves, the cluster is evaluated in place exactly like the
//! full pass would evaluate it — so the restricted pass stays
//! decision-identical even under score drift.  The intervals are genuine
//! cross-round decision state and are persisted in the refine snapshot (a
//! recovered run must make the same skip decisions as a never-restarted
//! one); the flags stay derived-only.
//!
//! [`DecisionLocality::Local`]: dc_objective::DecisionLocality

use crate::models::ModelPair;
use dc_evolution::{merge_features, split_features};
use dc_objective::IMPROVEMENT_EPSILON;
use dc_similarity::ClusterAggregates;
use dc_types::ClusterId;
use std::collections::{BTreeMap, BTreeSet};

/// Cross-round dirty-tracking state threaded through the scoped merge and
/// split passes.  See the module docs for the invariants.
#[derive(Debug, Default)]
pub(crate) struct PassScope {
    /// Clusters whose merge/split decisions must be (re-)evaluated.
    eval: BTreeSet<ClusterId>,
    /// Cached merge-model flags for clusters whose features are unchanged.
    merge_flags: BTreeMap<ClusterId, bool>,
    /// Cached split-model flags (only consulted for clusters of size ≥ 2).
    split_flags: BTreeMap<ClusterId, bool>,
    /// Score floors of proven merge rejections (global-mean objectives): the
    /// rejection of every merge of this cluster is guaranteed while the
    /// current score stays at or above the floor.  Persisted in snapshots.
    merge_floors: BTreeMap<ClusterId, f64>,
    /// Score ceilings of proven split rejections — the mirror image of
    /// `merge_floors`.  Persisted in snapshots.
    split_ceils: BTreeMap<ClusterId, f64>,
}

impl PassScope {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Replace the evaluation set for this round's passes.
    pub(crate) fn set_eval(&mut self, eval: BTreeSet<ClusterId>) {
        self.eval = eval;
    }

    /// Whether `cid`'s decisions must be evaluated (dirty) rather than
    /// replayed from the previous fixed point (clean).
    pub(crate) fn in_eval(&self, cid: ClusterId) -> bool {
        self.eval.contains(&cid)
    }

    /// Drop the cached flags and rejection intervals of one cluster (its
    /// features — and therefore its local delta contributions — may have
    /// changed, so neither the model prediction nor a previously proven
    /// rejection can be trusted).
    pub(crate) fn invalidate(&mut self, cid: ClusterId) {
        self.merge_flags.remove(&cid);
        self.split_flags.remove(&cid);
        self.merge_floors.remove(&cid);
        self.split_ceils.remove(&cid);
    }

    /// Drop every cached flag and rejection interval (the all-dirty
    /// fallback: the following full pass re-proves and re-records
    /// everything it rejects).
    pub(crate) fn clear_flags(&mut self) {
        self.merge_flags.clear();
        self.split_flags.clear();
        self.merge_floors.clear();
        self.split_ceils.clear();
    }

    /// Whether both flags of `cid` are cached (used to find the stale set
    /// for the parallel pre-pass refresh).
    pub(crate) fn has_flags(&self, cid: ClusterId) -> bool {
        self.merge_flags.contains_key(&cid) && self.split_flags.contains_key(&cid)
    }

    /// Record a proven merge rejection's validity floor: every merge of
    /// `cid` is guaranteed rejected while the global score stays at or above
    /// `floor` (and `cid`'s decision neighbourhood is unchanged).  Replaces
    /// any earlier proof.
    pub(crate) fn record_merge_rejection(&mut self, cid: ClusterId, floor: f64) {
        self.merge_floors.insert(cid, floor);
    }

    /// Record a proven split rejection's validity ceiling — the mirror image
    /// of [`PassScope::record_merge_rejection`].
    pub(crate) fn record_split_rejection(&mut self, cid: ClusterId, ceil: f64) {
        self.split_ceils.insert(cid, ceil);
    }

    /// Whether `cid`'s proven merge rejection still holds at the current
    /// global score.  `score` is `None` for sum-decomposable objectives
    /// (rejections hold at any score) and for clusters with no recorded
    /// interval the skip is unconditional: the only evaluated-and-rejected
    /// path that records nothing is the no-partner case, whose outcome does
    /// not depend on the score at all (an unchanged neighbourhood keeps the
    /// partner set empty).  The epsilon guard band makes the check
    /// conservative against the running score's accumulated rounding: a
    /// borderline cluster is re-evaluated rather than skipped, which can
    /// only add work, never change a decision.
    pub(crate) fn merge_rejection_holds(&self, cid: ClusterId, score: Option<f64>) -> bool {
        let Some(score) = score else { return true };
        match self.merge_floors.get(&cid) {
            Some(&floor) => score >= floor + IMPROVEMENT_EPSILON,
            None => true,
        }
    }

    /// Whether `cid`'s proven split rejection still holds at the current
    /// global score — see [`PassScope::merge_rejection_holds`].
    pub(crate) fn split_rejection_holds(&self, cid: ClusterId, score: Option<f64>) -> bool {
        let Some(score) = score else { return true };
        match self.split_ceils.get(&cid) {
            Some(&ceil) => score <= ceil - IMPROVEMENT_EPSILON,
            None => true,
        }
    }

    /// The persisted rejection intervals, for snapshot encoding.
    pub(crate) fn rejection_intervals(
        &self,
    ) -> (&BTreeMap<ClusterId, f64>, &BTreeMap<ClusterId, f64>) {
        (&self.merge_floors, &self.split_ceils)
    }

    /// Rebuild a scope from snapshot-restored rejection intervals (the
    /// flags and the evaluation set are derived state and start empty).
    pub(crate) fn from_rejection_intervals(
        merge_floors: BTreeMap<ClusterId, f64>,
        split_ceils: BTreeMap<ClusterId, f64>,
    ) -> Self {
        PassScope {
            merge_floors,
            split_ceils,
            ..Self::default()
        }
    }

    /// Install externally computed flags (the parallel refresh writes
    /// through this; the values must equal what the lazy path would compute,
    /// which holds because both are the same pure function).
    pub(crate) fn store_flags(&mut self, cid: ClusterId, merge: bool, split: bool) {
        self.merge_flags.insert(cid, merge);
        self.split_flags.insert(cid, split);
    }

    /// The merge-model flag of `cid`, from cache or computed on miss.
    pub(crate) fn merge_flag(
        &mut self,
        cid: ClusterId,
        agg: &ClusterAggregates,
        models: &ModelPair,
        theta_scale: f64,
    ) -> bool {
        if let Some(&f) = self.merge_flags.get(&cid) {
            return f;
        }
        let f = models.predicts_merge(&merge_features(agg, cid), theta_scale);
        self.merge_flags.insert(cid, f);
        f
    }

    /// The split-model flag of `cid`, from cache or computed on miss.  Only
    /// meaningful for clusters of size ≥ 2 (the pass guards that before
    /// consulting the cache, like the full pass guards it before computing
    /// features).
    pub(crate) fn split_flag(
        &mut self,
        cid: ClusterId,
        agg: &ClusterAggregates,
        models: &ModelPair,
        theta_scale: f64,
    ) -> bool {
        if let Some(&f) = self.split_flags.get(&cid) {
            return f;
        }
        let f = models.predicts_split(&split_features(agg, cid), theta_scale);
        self.split_flags.insert(cid, f);
        f
    }

    /// Fold an applied merge into the dirty state: the merged cluster and
    /// its neighbours have new features (invalidate their flags), and every
    /// cluster within two hops of the merged one may rank or verify
    /// differently (grow `eval`).  Call *after* the aggregates absorbed the
    /// merge so the neighbourhood walked here is the post-merge one.
    pub(crate) fn after_merge(
        &mut self,
        a: ClusterId,
        b: ClusterId,
        merged: ClusterId,
        agg: &ClusterAggregates,
    ) {
        self.invalidate(a);
        self.invalidate(b);
        self.eval.remove(&a);
        self.eval.remove(&b);
        self.absorb_new_cluster(merged, agg);
    }

    /// Fold an applied split into the dirty state; the analogue of
    /// [`PassScope::after_merge`], called after
    /// `ClusterAggregates::apply_split`.
    pub(crate) fn after_split(
        &mut self,
        parent: ClusterId,
        part: ClusterId,
        rest: ClusterId,
        agg: &ClusterAggregates,
    ) {
        self.invalidate(parent);
        self.eval.remove(&parent);
        self.absorb_new_cluster(part, agg);
        self.absorb_new_cluster(rest, agg);
    }

    fn absorb_new_cluster(&mut self, cid: ClusterId, agg: &ClusterAggregates) {
        self.invalidate(cid);
        self.eval.insert(cid);
        for n in agg.neighbour_clusters(cid) {
            self.invalidate(n);
            self.eval.insert(n);
            for m in agg.neighbour_clusters(n) {
                self.eval.insert(m);
            }
        }
    }
}

/// Partition the evaluation set into its connected components under the
/// maintained aggregate adjacency (two dirty clusters are connected when
/// they share cross-cluster edge mass) — the independent *repair regions*.
/// Regions are returned with their members in id order, ordered by smallest
/// member id, so region enumeration is a pure function of the set and the
/// adjacency: replay walks the same regions in the same order.
pub(crate) fn repair_regions(
    eval: &BTreeSet<ClusterId>,
    agg: &ClusterAggregates,
) -> Vec<Vec<ClusterId>> {
    let ids: Vec<ClusterId> = eval.iter().copied().collect();
    let index: BTreeMap<ClusterId, usize> =
        ids.iter().enumerate().map(|(i, &cid)| (cid, i)).collect();
    let mut parent: Vec<usize> = (0..ids.len()).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (i, &cid) in ids.iter().enumerate() {
        for n in agg.neighbour_clusters(cid) {
            if let Some(&j) = index.get(&n) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    // Union by smaller root index keeps roots deterministic.
                    let (lo, hi) = (ri.min(rj), ri.max(rj));
                    parent[hi] = lo;
                }
            }
        }
    }

    let mut groups: BTreeMap<usize, Vec<ClusterId>> = BTreeMap::new();
    for (i, &cid) in ids.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(cid);
    }
    // Roots are the smallest index of their component and `ids` is sorted,
    // so iterating the BTreeMap yields regions ordered by smallest member,
    // each region already in id order.
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::fixtures::graph_from_edges;
    use dc_types::{Clustering, ObjectId};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn regions_are_connected_components_in_deterministic_order() {
        // Two components: {1,2} joined by an edge, {4,5} joined by an edge,
        // and 3 isolated.
        let graph = graph_from_edges(5, &[(1, 2, 0.9), (4, 5, 0.8)]);
        let clustering = Clustering::singletons((1..=5).map(oid));
        let agg = ClusterAggregates::new(&graph, &clustering);
        let all: BTreeSet<ClusterId> = clustering.cluster_ids().into_iter().collect();
        let cid_of = |raw: u64| clustering.cluster_of(oid(raw)).unwrap();

        let regions = repair_regions(&all, &agg);
        assert_eq!(regions.len(), 3);
        // Ordered by smallest member; members in id order.
        let expected: Vec<Vec<ClusterId>> = {
            let mut r = vec![
                vec![cid_of(1), cid_of(2)],
                vec![cid_of(3)],
                vec![cid_of(4), cid_of(5)],
            ];
            for g in &mut r {
                g.sort();
            }
            r.sort();
            r
        };
        assert_eq!(regions, expected);

        // Restricting the eval set splits components accordingly.
        let partial: BTreeSet<ClusterId> = [cid_of(1), cid_of(4)].into_iter().collect();
        let regions = repair_regions(&partial, &agg);
        assert_eq!(regions.len(), 2, "neighbours outside the set do not join");
    }

    #[test]
    fn flag_cache_is_invalidated_by_neighbourhood_changes() {
        let graph = graph_from_edges(3, &[(1, 2, 0.9), (2, 3, 0.9)]);
        let clustering = Clustering::singletons((1..=3).map(oid));
        let agg = ClusterAggregates::new(&graph, &clustering);
        let models = ModelPair::new(dc_ml::ModelKind::LogisticRegression, 10);
        let c1 = clustering.cluster_of(oid(1)).unwrap();

        let mut scope = PassScope::new();
        let f = scope.merge_flag(c1, &agg, &models, 1.0);
        assert!(scope.has_flags(c1) || !scope.split_flags.contains_key(&c1));
        assert_eq!(scope.merge_flag(c1, &agg, &models, 1.0), f, "cached");
        scope.invalidate(c1);
        assert!(!scope.merge_flags.contains_key(&c1));
    }

    #[test]
    fn rejection_intervals_gate_skips_and_die_with_invalidation() {
        let c = ClusterId::new(7);
        let mut scope = PassScope::new();

        // No recorded proof and no score dependence: skips unconditionally.
        assert!(scope.merge_rejection_holds(c, None));
        assert!(scope.merge_rejection_holds(c, Some(0.2)));
        assert!(scope.split_rejection_holds(c, Some(0.2)));

        scope.record_merge_rejection(c, 0.3);
        scope.record_split_rejection(c, 0.5);
        // Inside the interval the proof stands, outside it must re-evaluate.
        assert!(scope.merge_rejection_holds(c, Some(0.4)));
        assert!(!scope.merge_rejection_holds(c, Some(0.2)));
        assert!(!scope.merge_rejection_holds(c, Some(0.3)), "guard band");
        assert!(scope.split_rejection_holds(c, Some(0.4)));
        assert!(!scope.split_rejection_holds(c, Some(0.6)));
        // A sum-decomposable objective (no score) never consults intervals.
        assert!(scope.merge_rejection_holds(c, None));

        // Invalidation drops the proofs along with the flags.
        scope.invalidate(c);
        assert!(scope.merge_rejection_holds(c, Some(0.0)));
        assert!(scope.split_rejection_holds(c, Some(9.0)));

        // Restore-from-snapshot carries exactly the recorded intervals.
        let mut scope = PassScope::new();
        scope.record_merge_rejection(c, 0.25);
        let (floors, ceils) = scope.rejection_intervals();
        let restored = PassScope::from_rejection_intervals(floors.clone(), ceils.clone());
        assert!(!restored.merge_rejection_holds(c, Some(0.1)));
        assert!(restored.merge_rejection_holds(c, Some(0.9)));
    }
}
