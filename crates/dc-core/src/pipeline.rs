//! Pipelined ingestion front-end: adaptive batching, cross-shard group
//! commit, and apply/refine overlap over a [`ShardedDurableEngine`].
//!
//! The synchronous sharded round is a strict sequence — route → log (one
//! fsync **per shard** plus one for the refine WAL) → apply → refine — so
//! op latency is gated by the slowest phase and every round pays N+1 fsyncs.
//! This module turns that loop into a three-stage pipeline:
//!
//! 1. **Admission.**  Callers [`PipelinedEngine::submit`] single operations
//!    into a bounded hand-rolled MPSC channel ([`bounded_channel`]; the
//!    workspace vendors no crates).  A full queue blocks the submitter —
//!    backpressure is the protocol; nothing is ever dropped or reordered.
//! 2. **Batch formation + group commit.**  A coordinator thread drains the
//!    queue into rounds sized by an [`AdaptiveBatcher`] (grow while commit
//!    latency is under target, shrink when over), routes each round, then
//!    **stages** every shard's WAL append and the refine WAL's full-batch
//!    append without fsync and commits the whole round with **one** fsync
//!    of the refine WAL — the group-commit log.  The commit rule is
//!    unchanged: a round is acknowledged only once a WAL durably holds it;
//!    because the refine WAL holds the *full* batch, recovery re-derives
//!    (heals) any shard WAL tail the crash cut off.  With one shard there
//!    is no refine WAL and the single fsync lands on the shard's own WAL.
//! 3. **Apply/refine overlap.**  After the commit fsync the round is handed
//!    to a refine worker thread through a second bounded channel (capacity
//!    = the in-flight window), then the shards apply it in parallel on the
//!    existing scoped pool — cross-shard refinement of round R−1 runs
//!    concurrently with shard apply of round R.  A full window blocks the
//!    coordinator (`pipeline.overlap_stall`), bounding how far the refined
//!    view may trail the shards.
//!
//! Refinement uses [`CrossShardRefiner::replay_round`] — the reuse-free
//! path that recomputes every cross-shard pair against the mirror's own
//! records — so the worker needs no access to the shard engines at all,
//! and its result is bit-identical to the synchronous engine's.  The
//! headline invariant, pinned by `tests/pipeline_equivalence.rs`: after
//! [`PipelinedEngine::close`], the clustering, the refined clustering, and
//! the recovered-after-crash state are all bit-identical to a synchronous
//! [`ShardedDurableEngine`] serving the same batches.
//!
//! Telemetry: `pipeline.admit` (submitter-side backpressure wait),
//! `pipeline.batch_form`, `pipeline.group_commit`, `pipeline.overlap_stall`
//! and `pipeline.refine` spans, a `pipeline.queue_depth` gauge, and a
//! `pipeline.op_latency` histogram (submit → durable commit).  The
//! coordinator and refine worker record into their own thread-local sinks;
//! their deltas merge back into the closing thread's sink, coordinator
//! first, on [`PipelinedEngine::close`].

use crate::refine::CrossShardRefiner;
use crate::shard::{
    parallel_shard_rounds, record_batch_imbalance, DurableRefine, PipelineParts,
    ShardedDurableEngine,
};
use dc_storage::{Snapshotter, StorageError, Wal};
use dc_telemetry::{clock, Span};
use dc_types::{Operation, OperationBatch};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Poison recovery.
// ---------------------------------------------------------------------------

/// Lock `m`, recovering from poisoning.
///
/// Every mutex in this module guards state whose invariants hold between
/// critical sections (a queue, a set of counters): a panic on another
/// thread mid-section cannot leave them torn in a way later readers would
/// misinterpret, so propagating the poison as a second panic would only
/// turn one failure into two.  Worker panics are surfaced once, as typed
/// errors, at the join points in [`PipelinedEngine::close`].
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison-recovery rationale as
/// [`lock_unpoisoned`].
fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison-recovery rationale as
/// [`lock_unpoisoned`] (the timeout flag is dropped: callers re-check
/// their deadline against the clock, which is authoritative).
fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    let (guard, _timed_out) = cv
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner);
    guard
}

// ---------------------------------------------------------------------------
// Bounded MPSC channel (hand-rolled: the workspace vendors no crates).
// ---------------------------------------------------------------------------

/// Shared state of a [`bounded_channel`].
struct ChannelInner<T> {
    state: Mutex<ChannelState<T>>,
    /// Signalled when an item is enqueued or the last sender goes away.
    not_empty: Condvar,
    /// Signalled when an item is dequeued or the receiver goes away.
    not_full: Condvar,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
    /// Senders currently parked in [`BoundedSender::send`] waiting for a
    /// slot.  Tests observe this (via `not_empty`, which send signals on
    /// entering the wait) to synchronize on "the send is now blocked"
    /// without sleeping.
    blocked_senders: usize,
}

/// The sending half of a [`bounded_channel`].  Cloneable (MPSC); dropping
/// the last clone disconnects the channel, which the receiver observes once
/// the queue drains.
pub struct BoundedSender<T> {
    inner: Arc<ChannelInner<T>>,
}

/// The receiving half of a [`bounded_channel`].  Single consumer; dropping
/// it wakes all blocked senders with a [`SendError`].
pub struct BoundedReceiver<T> {
    inner: Arc<ChannelInner<T>>,
}

/// The channel is disconnected: the receiver was dropped before (or while)
/// this value could be enqueued.  The value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(
    /// The value that could not be enqueued.
    pub T,
);

/// Outcome of a [`BoundedReceiver::recv_deadline`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// An item was dequeued before the deadline.
    Item(
        /// The dequeued item.
        T,
    ),
    /// The deadline passed with the queue empty (senders still connected).
    TimedOut,
    /// Every sender is gone and the queue is empty.
    Disconnected,
}

/// Create a bounded FIFO MPSC channel with room for `capacity` items
/// (minimum 1).  [`BoundedSender::send`] **blocks** while the queue is full
/// — this is the pipeline's backpressure: admission stalls the submitter
/// instead of dropping work or buffering unboundedly.
pub fn bounded_channel<T>(capacity: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    let inner = Arc::new(ChannelInner {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
            blocked_senders: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        BoundedSender {
            inner: Arc::clone(&inner),
        },
        BoundedReceiver { inner },
    )
}

impl<T> BoundedSender<T> {
    /// Enqueue `value`, blocking while the queue is at capacity.  Returns
    /// the value in [`SendError`] if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock_unpoisoned(&self.inner.state);
        loop {
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state.blocked_senders += 1;
            // Wake anyone watching for a sender to park (the queue is full,
            // so a receiver-side waiter is not waiting for items anyway).
            self.inner.not_empty.notify_all();
            state = wait_unpoisoned(&self.inner.not_full, state);
            state.blocked_senders -= 1;
        }
    }

    /// Current queue length (a racy snapshot).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner.state).queue.len()
    }

    /// Whether the queue is currently empty (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        lock_unpoisoned(&self.inner.state).senders += 1;
        BoundedSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for BoundedSender<T> {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.inner.state);
        state.senders -= 1;
        if state.senders == 0 {
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> BoundedReceiver<T> {
    /// Dequeue the next item, blocking while the queue is empty.  Returns
    /// `None` once every sender is gone *and* the queue has drained — no
    /// enqueued item is ever lost to a disconnect.
    pub fn recv(&self) -> Option<T> {
        let mut state = lock_unpoisoned(&self.inner.state);
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = wait_unpoisoned(&self.inner.not_empty, state);
        }
    }

    /// Block until some sender is parked in [`BoundedSender::send`] waiting
    /// for a slot (or every sender is gone).  Test-only synchronization:
    /// replaces sleep-and-hope in the backpressure tests with an exact
    /// "the send has blocked" rendezvous on the channel's own state.
    #[cfg(test)]
    fn wait_for_blocked_sender(&self) {
        let mut state = lock_unpoisoned(&self.inner.state);
        while state.blocked_senders == 0 && state.senders > 0 {
            state = wait_unpoisoned(&self.inner.not_empty, state);
        }
    }

    /// [`BoundedReceiver::recv`] with a deadline: blocks until an item
    /// arrives, the deadline passes, or the channel disconnects empty.
    pub fn recv_deadline(&self, deadline: Instant) -> RecvTimeout<T> {
        let mut state = lock_unpoisoned(&self.inner.state);
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return RecvTimeout::Item(value);
            }
            if state.senders == 0 {
                return RecvTimeout::Disconnected;
            }
            let Some(wait) = deadline
                .checked_duration_since(clock::now())
                .filter(|d| !d.is_zero())
            else {
                return RecvTimeout::TimedOut;
            };
            state = wait_timeout_unpoisoned(&self.inner.not_empty, state, wait);
        }
    }

    /// Current queue length (a racy snapshot).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner.state).queue.len()
    }

    /// Whether the queue is currently empty (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        let mut state = lock_unpoisoned(&self.inner.state);
        state.receiver_alive = false;
        self.inner.not_full.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Adaptive batching.
// ---------------------------------------------------------------------------

/// The batch-sizing control law: a pure, deterministic function of the
/// observed commit latencies, kept free of clocks and threads so it can be
/// unit-tested exactly.
///
/// The batcher holds a current **batch target** in `[min, max]`.  After
/// every committed round it observes the round's group-commit latency:
///
/// * latency above the target → **halve** the target (multiplicative
///   decrease: each op waits less, at the price of amortizing the fsync
///   over fewer ops);
/// * latency under half the target *and* a round that actually filled the
///   current target → grow it by 25% + 1 (gentle increase: more ops
///   amortize each fsync);
/// * otherwise → hold steady.
///
/// With `min == max` this is a fixed-size batcher — the mode the
/// deterministic equivalence tests and benchmarks use
/// ([`PipelineOptions::fixed`]).
#[derive(Debug, Clone)]
pub struct AdaptiveBatcher {
    min: usize,
    max: usize,
    target_latency_ns: u64,
    size: usize,
}

impl AdaptiveBatcher {
    /// Build a batcher clamped to `[min, max]` starting at `initial`,
    /// steering toward `target_latency` per group commit.
    pub fn new(min: usize, max: usize, initial: usize, target_latency: Duration) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        AdaptiveBatcher {
            min,
            max,
            target_latency_ns: target_latency.as_nanos() as u64,
            size: initial.clamp(min, max),
        }
    }

    /// The number of operations the next round should aim for.
    pub fn batch_target(&self) -> usize {
        self.size
    }

    /// Feed back one committed round: `ops` operations group-committed in
    /// `commit_ns` nanoseconds (fsync included).
    pub fn observe(&mut self, ops: usize, commit_ns: u64) {
        if commit_ns > self.target_latency_ns {
            self.size = (self.size / 2).max(self.min);
        } else if commit_ns.saturating_mul(2) < self.target_latency_ns && ops >= self.size {
            self.size = (self.size + self.size / 4 + 1).min(self.max);
        }
    }
}

// ---------------------------------------------------------------------------
// Options, errors, report.
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`PipelinedEngine`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Admission queue capacity in operations.  A full queue blocks
    /// [`PipelinedEngine::submit`] (backpressure).
    pub queue_capacity: usize,
    /// Smallest batch the adaptive batcher may shrink to.
    pub min_batch_ops: usize,
    /// Largest batch the adaptive batcher may grow to.
    pub max_batch_ops: usize,
    /// The batch target the adaptive batcher starts from.
    pub initial_batch_ops: usize,
    /// The per-round group-commit latency the batcher steers toward.
    pub target_commit_latency: Duration,
    /// How long batch formation waits for further operations after the
    /// first before closing an under-target round — the latency bound on a
    /// trickle workload.
    pub max_batch_delay: Duration,
    /// How many committed rounds may sit in the refine worker's window
    /// before the coordinator stalls (`pipeline.overlap_stall`) — the bound
    /// on how far the refined view trails the shards.
    pub max_inflight_refine_rounds: usize,
    /// Record every formed batch and hand the sequence back in the
    /// [`PipelineReport`]; the equivalence tests replay it through a
    /// synchronous engine to prove bit-identity.
    pub record_batches: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            queue_capacity: 4096,
            min_batch_ops: 1,
            max_batch_ops: 1024,
            initial_batch_ops: 256,
            target_commit_latency: Duration::from_millis(20),
            max_batch_delay: Duration::from_millis(2),
            max_inflight_refine_rounds: 2,
            record_batches: false,
        }
    }
}

impl PipelineOptions {
    /// A deterministic fixed-size configuration: every round holds exactly
    /// `ops` operations (the final round before a flush barrier or close
    /// may be smaller).  The equivalence tests and benchmarks use this so
    /// round structure is identical across runs.
    pub fn fixed(ops: usize) -> Self {
        let ops = ops.max(1);
        PipelineOptions {
            min_batch_ops: ops,
            max_batch_ops: ops,
            initial_batch_ops: ops,
            ..PipelineOptions::default()
        }
    }
}

/// Why a pipelined call failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The pipeline has shut down — [`PipelinedEngine::close`] ran, or a
    /// storage failure stopped the coordinator (the underlying
    /// [`StorageError`] surfaces from [`PipelinedEngine::close`]).
    Closed,
    /// A storage operation failed on the serving path.
    Storage(
        /// The failure the coordinator stopped on.
        StorageError,
    ),
    /// A pipeline worker thread panicked, so the engine cannot be
    /// reassembled; the on-disk state holds every round that group-committed
    /// before the panic and recovers via [`ShardedDurableEngine::open`].
    WorkerPanicked(
        /// Which worker: `"coordinator"` or `"refine worker"`.
        &'static str,
    ),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Closed => write!(f, "the pipelined engine is closed"),
            PipelineError::Storage(e) => write!(f, "pipelined storage failure: {e}"),
            PipelineError::WorkerPanicked(which) => {
                write!(f, "pipeline {which} thread panicked; reopen to recover")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Closed | PipelineError::WorkerPanicked(_) => None,
            PipelineError::Storage(e) => Some(e),
        }
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

/// What a pipelined serving session did, returned by
/// [`PipelinedEngine::close`].
#[derive(Debug, Default)]
pub struct PipelineReport {
    /// Rounds group-committed by the coordinator.
    pub rounds_committed: u64,
    /// Operations durably committed (equals the submitted count after a
    /// clean close).
    pub ops_committed: u64,
    /// Per-operation submit→durable-commit latency in nanoseconds, in
    /// commit order.  The benchmark derives p50/p99 from this.
    pub op_latencies_ns: Vec<u64>,
    /// Every formed batch in commit order, when
    /// [`PipelineOptions::record_batches`] was set.
    pub recorded_batches: Option<Vec<OperationBatch>>,
    /// Rounds whose refine handoff found the in-flight window full, forcing
    /// the coordinator to stall.
    pub overlap_stalls: u64,
    /// Largest admission-queue depth observed right after closing a batch.
    pub max_queue_depth: usize,
}

// ---------------------------------------------------------------------------
// Internal plumbing.
// ---------------------------------------------------------------------------

/// What flows through the admission channel.
enum Admit {
    /// One operation, carrying its `pipeline.op_latency` span: started at
    /// submission, finished (on the coordinator thread) when the
    /// operation's round is durably committed.
    Op(Operation, Span),
    /// Close the current batch immediately (a flush barrier marker).
    Flush,
}

/// Commit/refine progress shared between submitters, coordinator, and
/// refine worker; the condvar wakes flush barriers and the coordinator's
/// pre-checkpoint refine-catch-up wait.
#[derive(Default)]
struct ProgressState {
    committed_ops: u64,
    committed_rounds: u64,
    refined_rounds: u64,
    failed: bool,
}

struct Progress {
    state: Mutex<ProgressState>,
    cond: Condvar,
}

impl Progress {
    fn new() -> Self {
        Progress {
            state: Mutex::new(ProgressState::default()),
            cond: Condvar::new(),
        }
    }

    fn update(&self, f: impl FnOnce(&mut ProgressState)) {
        let mut state = lock_unpoisoned(&self.state);
        f(&mut state);
        self.cond.notify_all();
    }
}

/// Everything the coordinator thread hands back when it exits.
struct CoordinatorExit {
    parts: PipelineParts,
    refine_wal: Option<Wal>,
    snapshotter: Option<Snapshotter>,
    error: Option<StorageError>,
    report: PipelineReport,
    telemetry: dc_telemetry::ThreadDelta,
}

/// The coordinator thread's working set: the engine parts it owns while
/// serving, plus its ends of the two channels.
struct Coordinator {
    parts: PipelineParts,
    options: PipelineOptions,
    admit_rx: BoundedReceiver<Admit>,
    refine_tx: Option<BoundedSender<(OperationBatch, Vec<usize>)>>,
    refiner: Option<Arc<Mutex<CrossShardRefiner>>>,
    refine_wal: Option<Wal>,
    snapshotter: Option<Snapshotter>,
    progress: Arc<Progress>,
    abort: Arc<AtomicBool>,
}

impl Coordinator {
    fn run(mut self) -> CoordinatorExit {
        let reg = dc_telemetry::registry();
        let mut batcher = AdaptiveBatcher::new(
            self.options.min_batch_ops,
            self.options.max_batch_ops,
            self.options.initial_batch_ops,
            self.options.target_commit_latency,
        );
        let mut report = PipelineReport {
            recorded_batches: self.options.record_batches.then(Vec::new),
            ..PipelineReport::default()
        };
        let mut error = None;
        // Block for the head of each round; a disconnect with the queue
        // drained is the clean-close signal.
        while let Some(first) = self.admit_rx.recv() {
            let span = reg.span("pipeline.batch_form");
            let mut batch = OperationBatch::new();
            let mut stamps = Vec::new();
            let mut flushed = false;
            match first {
                Admit::Op(op, latency) => {
                    batch.push(op);
                    stamps.push(latency);
                }
                Admit::Flush => flushed = true,
            }
            let deadline = clock::deadline(self.options.max_batch_delay);
            while !flushed && batch.len() < batcher.batch_target() {
                match self.admit_rx.recv_deadline(deadline) {
                    RecvTimeout::Item(Admit::Op(op, latency)) => {
                        batch.push(op);
                        stamps.push(latency);
                    }
                    RecvTimeout::Item(Admit::Flush) => flushed = true,
                    RecvTimeout::TimedOut | RecvTimeout::Disconnected => break,
                }
            }
            span.finish();
            let depth = self.admit_rx.len();
            report.max_queue_depth = report.max_queue_depth.max(depth);
            reg.gauge("pipeline.queue_depth", depth as f64);
            if self.abort.load(Ordering::Relaxed) {
                // Killed: discard the formed (still uncommitted) batch.
                break;
            }
            if batch.is_empty() {
                // A flush barrier with nothing pending commits nothing.
                continue;
            }
            if let Err(e) = self.serve_round(batch, stamps, &mut batcher, &mut report) {
                error = Some(e);
                self.progress.update(|p| p.failed = true);
                break;
            }
        }
        CoordinatorExit {
            parts: self.parts,
            refine_wal: self.refine_wal,
            snapshotter: self.snapshotter,
            error,
            report,
            telemetry: dc_telemetry::registry().drain(),
        }
        // Dropping the rest of `self` here closes `refine_tx`, which lets
        // the refine worker drain its window and exit.
    }

    /// Commit, acknowledge, hand off, and apply one formed round.
    fn serve_round(
        &mut self,
        batch: OperationBatch,
        stamps: Vec<Span>,
        batcher: &mut AdaptiveBatcher,
        report: &mut PipelineReport,
    ) -> Result<(), StorageError> {
        let reg = dc_telemetry::registry();
        let ops = batch.len();

        let span = reg.span("round.route");
        let routed = self
            .parts
            .router
            .route_batch(&batch, &mut self.parts.assignment);
        span.finish();
        record_batch_imbalance(&routed.sub_batches);

        // Group commit: stage all shard appends, seal with one fsync of the
        // group-commit log (the refine WAL; the lone shard's WAL at N=1).
        let round = self.parts.rounds_served as u64 + 1;
        let commit_span = reg.span("pipeline.group_commit");
        for (shard, sub) in self.parts.shards.iter_mut().zip(&routed.sub_batches) {
            let logged = shard.log_round_nosync(sub)?;
            debug_assert_eq!(logged, round, "shards advance in lock-step");
        }
        match self.refine_wal.as_mut() {
            Some(wal) => {
                wal.append_round_nosync(round, &batch)?;
                wal.sync()?;
            }
            None => self.parts.shards[0].wal_sync()?,
        }
        let commit_ns = commit_span.finish_ns();

        // The round is durable: acknowledge it before any in-memory work,
        // so flush barriers and latency spans see commit time.  Finishing
        // each span records into the `pipeline.op_latency` histogram on
        // this (the coordinator) thread, whose delta merges at close.
        for latency in stamps {
            report.op_latencies_ns.push(latency.finish_ns());
        }
        report.rounds_committed += 1;
        report.ops_committed += ops as u64;
        if let Some(recorded) = &mut report.recorded_batches {
            recorded.push(batch.clone());
        }
        let solo = self.refine_tx.is_none();
        self.progress.update(|p| {
            p.committed_ops += ops as u64;
            p.committed_rounds += 1;
            if solo {
                // No refine layer: the refined view is the merged view and
                // never trails.
                p.refined_rounds += 1;
            }
        });

        // Hand the round to the refine worker *before* applying it to the
        // shards: replay_round never touches the shard engines, so the two
        // run concurrently — that is the overlap.
        if let Some(tx) = &self.refine_tx {
            if tx.len() >= self.options.max_inflight_refine_rounds.max(1) {
                report.overlap_stalls += 1;
            }
            let span = reg.span("pipeline.overlap_stall");
            tx.send((batch, routed.op_shards.clone())).map_err(|_| {
                StorageError::Inconsistent(
                    "refine worker exited while rounds were in flight".into(),
                )
            })?;
            span.finish();
        }

        let span = reg.span("round.shard_apply");
        let _reports = parallel_shard_rounds(
            &mut self.parts.shards,
            &routed.sub_batches,
            self.parts.max_threads,
            |shard, sub| shard.apply_logged(sub),
        );
        span.finish();
        self.parts.rounds_served += 1;
        batcher.observe(ops, commit_ns);

        let every = self.parts.options.checkpoint_every_rounds as u64;
        if every > 0
            && (self.parts.rounds_served as u64).is_multiple_of(every)
            && !self.abort.load(Ordering::Relaxed)
        {
            // A checkpoint snapshots the refiner, so the refined view must
            // first catch up with every committed round.
            self.wait_refined();
            if !self.abort.load(Ordering::Relaxed) {
                let span = reg.span("round.checkpoint");
                self.checkpoint()?;
                span.finish();
            }
        }
        Ok(())
    }

    /// Block until the refine worker has folded in every committed round.
    fn wait_refined(&self) {
        let mut state = lock_unpoisoned(&self.progress.state);
        while state.refined_rounds < state.committed_rounds {
            state = wait_unpoisoned(&self.progress.cond, state);
        }
    }

    /// Checkpoint every shard, then the refinement layer — the same order
    /// and effect as [`ShardedDurableEngine::checkpoint`].
    fn checkpoint(&mut self) -> Result<u64, StorageError> {
        for shard in &mut self.parts.shards {
            shard.checkpoint()?;
        }
        let round = self.parts.rounds_served as u64;
        if let (Some(wal), Some(snapshotter), Some(refiner)) = (
            self.refine_wal.as_mut(),
            self.snapshotter.as_mut(),
            self.refiner.as_ref(),
        ) {
            {
                let refiner = lock_unpoisoned(refiner);
                snapshotter.write(round, &refiner.snapshot_ref())?;
            }
            if wal.start_round() != round {
                *wal = Wal::create(snapshotter.dir(), round)?;
            }
            snapshotter.prune_obsolete(round)?;
        }
        Ok(round)
    }
}

// ---------------------------------------------------------------------------
// The pipelined engine.
// ---------------------------------------------------------------------------

/// The pipelined ingestion front-end over a [`ShardedDurableEngine`]: a
/// bounded admission queue, an adaptively-batching group-committing
/// coordinator thread, and a refine worker overlapping cross-shard
/// refinement with shard apply.  See the [module docs](crate::pipeline)
/// for the full protocol.
///
/// Rounds are always **group-committed** (one fsync per round) regardless
/// of the engine's own [`crate::DurabilityOptions::group_commit`] flag;
/// the `checkpoint_every_rounds` cadence is honored, with each checkpoint
/// first waiting for the refine worker to catch up so no snapshot gets
/// ahead of the refined view.
///
/// [`PipelinedEngine::close`] drains everything and hands the engine back.
/// [`PipelinedEngine::kill`] (or a plain drop) abandons in-flight work:
/// whatever was already group-committed is exactly what the next
/// [`ShardedDurableEngine::open`] recovers — the crash tests rely on this.
pub struct PipelinedEngine {
    sender: Option<BoundedSender<Admit>>,
    submitted_ops: AtomicU64,
    progress: Arc<Progress>,
    abort: Arc<AtomicBool>,
    refiner: Option<Arc<Mutex<CrossShardRefiner>>>,
    coordinator: Option<std::thread::JoinHandle<CoordinatorExit>>,
    refine_worker: Option<std::thread::JoinHandle<dc_telemetry::ThreadDelta>>,
}

impl PipelinedEngine {
    /// Take ownership of an open [`ShardedDurableEngine`] and start serving
    /// its operation stream through the pipeline.
    pub fn start(engine: ShardedDurableEngine, options: PipelineOptions) -> Self {
        let mut parts = engine.into_pipeline_parts();
        let progress = Arc::new(Progress::new());
        let abort = Arc::new(AtomicBool::new(false));
        let enabled = dc_telemetry::registry().is_enabled();

        let (admit_tx, admit_rx) = bounded_channel::<Admit>(options.queue_capacity);

        // Split the refine plumbing: the coordinator keeps the WAL and
        // snapshotter; the worker (and checkpoints) share the refiner.
        let (refiner, refine_wal, snapshotter) = match parts.refine.take() {
            Some(refine) => (
                Some(Arc::new(Mutex::new(refine.refiner))),
                Some(refine.wal),
                Some(refine.snapshotter),
            ),
            None => (None, None, None),
        };

        // Refine worker: folds committed rounds into the shared refiner
        // using shard 0's pass configuration (all shards carry an identical
        // one — validated when the refiner was built).
        let (refine_tx, refine_worker) = match &refiner {
            Some(refiner) => {
                let (tx, rx) = bounded_channel::<(OperationBatch, Vec<usize>)>(
                    options.max_inflight_refine_rounds.max(1),
                );
                let refiner = Arc::clone(refiner);
                let dynamicc = parts.shards[0].engine().dynamicc().clone();
                let progress = Arc::clone(&progress);
                let abort = Arc::clone(&abort);
                let max_threads = parts.max_threads;
                let handle = std::thread::spawn(move || {
                    let reg = dc_telemetry::registry();
                    reg.set_enabled(enabled);
                    while let Some((batch, op_shards)) = rx.recv() {
                        if !abort.load(Ordering::Relaxed) {
                            let span = reg.span("pipeline.refine");
                            lock_unpoisoned(&refiner).replay_round(
                                &batch,
                                &op_shards,
                                &dynamicc,
                                max_threads,
                            );
                            span.finish();
                        }
                        // Count the round even when a kill discards it, so
                        // a coordinator waiting on catch-up always wakes.
                        progress.update(|p| p.refined_rounds += 1);
                    }
                    reg.drain()
                });
                (Some(tx), Some(handle))
            }
            None => (None, None),
        };

        let coordinator = {
            let coordinator = Coordinator {
                parts,
                options,
                admit_rx,
                refine_tx,
                refiner: refiner.clone(),
                refine_wal,
                snapshotter,
                progress: Arc::clone(&progress),
                abort: Arc::clone(&abort),
            };
            std::thread::spawn(move || {
                dc_telemetry::registry().set_enabled(enabled);
                coordinator.run()
            })
        };

        PipelinedEngine {
            sender: Some(admit_tx),
            submitted_ops: AtomicU64::new(0),
            progress,
            abort,
            refiner,
            coordinator: Some(coordinator),
            refine_worker,
        }
    }

    /// Admit one operation, blocking while the admission queue is full
    /// (backpressure).  The operation is durable once its round's group
    /// commit lands — at the latest when a subsequent
    /// [`PipelinedEngine::flush`] or [`PipelinedEngine::close`] returns.
    pub fn submit(&self, op: Operation) -> Result<(), PipelineError> {
        let sender = self.sender.as_ref().ok_or(PipelineError::Closed)?;
        let span = dc_telemetry::registry().span("pipeline.admit");
        let latency = Span::start("pipeline.op_latency");
        let sent = sender.send(Admit::Op(op, latency));
        span.finish();
        match sent {
            Ok(()) => {
                self.submitted_ops.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(PipelineError::Closed),
        }
    }

    /// Close the in-flight batch immediately and block until every
    /// operation submitted before this call is durably committed **and**
    /// the refine worker has caught up with every committed round.  The
    /// deterministic tests drive round boundaries with this.
    pub fn flush(&self) -> Result<(), PipelineError> {
        let sender = self.sender.as_ref().ok_or(PipelineError::Closed)?;
        let target = self.submitted_ops.load(Ordering::Relaxed);
        sender
            .send(Admit::Flush)
            .map_err(|_| PipelineError::Closed)?;
        let mut state = lock_unpoisoned(&self.progress.state);
        loop {
            if state.failed {
                return Err(PipelineError::Closed);
            }
            if state.committed_ops >= target && state.refined_rounds >= state.committed_rounds {
                return Ok(());
            }
            state = wait_unpoisoned(&self.progress.cond, state);
        }
    }

    /// Operations currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.sender.as_ref().map_or(0, BoundedSender::len)
    }

    /// Operations admitted so far (committed or still in flight).
    pub fn submitted_ops(&self) -> u64 {
        self.submitted_ops.load(Ordering::Relaxed)
    }

    /// Stop admitting, drain every queued operation through commit, apply,
    /// and refinement, join the worker threads (merging their telemetry
    /// into this thread's sink, coordinator first), and hand back the
    /// reassembled synchronous engine plus the session report.
    pub fn close(mut self) -> Result<(ShardedDurableEngine, PipelineReport), PipelineError> {
        drop(self.sender.take());
        let Some(coordinator) = self.coordinator.take() else {
            // Only reachable if close raced a kill on the same value, which
            // the ownership model forbids; a typed error beats a panic.
            return Err(PipelineError::Closed);
        };
        let mut exit = coordinator
            .join()
            .map_err(|_| PipelineError::WorkerPanicked("coordinator"))?;
        exit.telemetry.merge_into_current();
        if let Some(worker) = self.refine_worker.take() {
            worker
                .join()
                .map_err(|_| PipelineError::WorkerPanicked("refine worker"))?
                .merge_into_current();
        }
        if let Some(error) = exit.error.take() {
            return Err(PipelineError::Storage(error));
        }
        let refine = match self.refiner.take() {
            Some(refiner) => {
                // Both workers are joined, so this Arc is the last one; a
                // still-shared refiner means a worker leaked its clone.
                let refiner = Arc::try_unwrap(refiner)
                    .map_err(|_| PipelineError::WorkerPanicked("refine worker"))?
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner);
                let (Some(wal), Some(snapshotter)) =
                    (exit.refine_wal.take(), exit.snapshotter.take())
                else {
                    // The WAL and snapshotter ride with the refiner; losing
                    // them means the coordinator exited mid-teardown.
                    return Err(PipelineError::Storage(StorageError::Inconsistent(
                        "pipeline closed without its refine WAL and snapshotter".into(),
                    )));
                };
                Some(DurableRefine {
                    refiner,
                    wal,
                    snapshotter,
                })
            }
            None => None,
        };
        let mut parts = exit.parts;
        parts.refine = refine;
        Ok((
            ShardedDurableEngine::from_pipeline_parts(parts),
            exit.report,
        ))
    }

    /// Abandon the pipeline without draining: queued and in-flight work is
    /// discarded, the threads exit, and whatever was already
    /// group-committed on disk is exactly what the next open recovers —
    /// the simulated-kill half of the crash tests.
    pub fn kill(mut self) {
        self.shutdown_abandon();
    }

    fn shutdown_abandon(&mut self) {
        self.abort.store(true, Ordering::Relaxed);
        drop(self.sender.take());
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        if let Some(worker) = self.refine_worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for PipelinedEngine {
    fn drop(&mut self) {
        self.shutdown_abandon();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_fifo_and_drains_after_disconnect() {
        let (tx, rx) = bounded_channel(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        // Disconnected senders never lose enqueued items.
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn channel_send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded_channel(2);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn channel_blocks_at_capacity_until_a_slot_frees() {
        let (tx, rx) = bounded_channel(1);
        tx.send(1u32).unwrap();
        let blocked = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the receiver pops
            tx
        });
        // Rendezvous on the channel's own state — no sleeping, no latency
        // floor, no flaky "was 20ms long enough" assumption.
        rx.wait_for_blocked_sender();
        assert_eq!(rx.len(), 1, "second send must still be blocked");
        assert_eq!(rx.recv(), Some(1));
        let tx = blocked.join().unwrap();
        assert_eq!(rx.recv(), Some(2));
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn channel_recv_deadline_times_out_and_disconnects() {
        let (tx, rx) = bounded_channel::<u32>(2);
        assert_eq!(
            rx.recv_deadline(clock::deadline(Duration::from_millis(5))),
            RecvTimeout::TimedOut
        );
        tx.send(7).unwrap();
        assert_eq!(
            rx.recv_deadline(clock::deadline(Duration::from_millis(5))),
            RecvTimeout::Item(7)
        );
        drop(tx);
        assert_eq!(
            rx.recv_deadline(clock::deadline(Duration::from_secs(60))),
            RecvTimeout::Disconnected
        );
    }

    #[test]
    fn batcher_shrinks_over_target_and_grows_under_half() {
        let target = Duration::from_micros(1000);
        let mut b = AdaptiveBatcher::new(4, 64, 16, target);
        assert_eq!(b.batch_target(), 16);
        // Over-target commit: multiplicative decrease, floored at min.
        b.observe(16, 2_000_000);
        assert_eq!(b.batch_target(), 8);
        b.observe(8, 2_000_000);
        b.observe(4, 2_000_000);
        assert_eq!(b.batch_target(), 4, "never shrinks below min");
        // Fast commits of full batches: gentle growth, capped at max.
        for _ in 0..32 {
            b.observe(b.batch_target(), 100_000);
        }
        assert_eq!(b.batch_target(), 64, "never grows above max");
        // A fast commit of an UNDER-filled batch must not grow the target —
        // the workload is not producing enough to justify it.
        let mut b = AdaptiveBatcher::new(4, 64, 16, target);
        b.observe(3, 100_000);
        assert_eq!(b.batch_target(), 16);
        // In-band latency (between half and full target): hold steady.
        b.observe(16, 700_000);
        assert_eq!(b.batch_target(), 16);
    }

    #[test]
    fn batcher_with_min_equal_max_is_fixed() {
        let mut b = AdaptiveBatcher::new(8, 8, 8, Duration::from_nanos(1));
        b.observe(8, u64::MAX);
        assert_eq!(b.batch_target(), 8);
        b.observe(8, 0);
        assert_eq!(b.batch_target(), 8);
    }
}
