//! Cross-shard refinement: closing the quality gap of sharded serving.
//!
//! Sharded serving ([`crate::shard`]) partitions the live objects across N
//! independent engines and *drops every cross-shard similarity edge*: the
//! per-shard graphs never compare records that route to different shards, so
//! the merged clustering silently under-merges exactly where blocking says
//! two records could be duplicates.  This module recovers that loss:
//!
//! 1. **Boundary pair exchange.**  A [`BoundaryIndex`] over each record's
//!    *full* block-key set finds the cross-shard candidate pairs the
//!    per-shard graphs cannot see.  Their similarities are computed once,
//!    counted in the sharded engine's global comparison counter, cached, and
//!    maintained incrementally as rounds add, update, and remove records —
//!    turning the old `cross_shard_edges_dropped` loss into the exact
//!    recovered-edge metric (`CrossShardRefiner::cross_edges_recovered`).
//! 2. **Global merge repair.**  The refiner owns a *global serving view*
//!    maintained across rounds, exactly shaped like the unsharded
//!    [`Engine`]'s state:
//!
//!    * a **mirror** — a global union [`SimilarityGraph`] whose records and
//!      edge weights are copied verbatim from the per-shard graphs (no
//!      similarity is ever recomputed for them) plus the recovered
//!      cross-shard edges;
//!    * the **refined clustering** — seeded by an initial repair of the
//!      partition (merged per-shard clusterings + union aggregates + the
//!      trained passes run globally), then evolved per round exactly like
//!      the unsharded engine evolves its clustering: the batch's operations
//!      are folded in **in their original order** (new/updated objects enter
//!      as fresh singletons, removed objects leave), and then the *same*
//!      trained merge and split passes as the unsharded engine (Algorithm 3
//!      — literally `merge_pass` and `split_pass`) run against the mirror to
//!      a fixed point;
//!    * maintained [`ClusterAggregates`] for `(mirror, refined)`, updated at
//!      O(degree) per operation and folded through every applied merge and
//!      split — the refinement pass performs **zero** full aggregate builds,
//!      at construction or while serving.
//!
//!    Because the refined view sees the same records, the same edges (under
//!    exact blocking), and runs the same algorithm from the same previous
//!    clustering, it converges to the unsharded engine's clustering — the
//!    pair-level equivalence pinned by `tests/shard_quality.rs`.  Repair
//!    merges and splits allocate fresh cluster ids from the reserved refine
//!    namespace (`shard_id_base(MAX_SHARDS - 1)`), so they can never collide
//!    with any per-shard allocation.
//!
//! The per-shard clusterings are never mutated by the repair — each shard
//! keeps serving its own partition, and the refined view is a separate
//! global projection.  For durability, the refined view is genuine state
//! (it evolves with history): [`crate::ShardedDurableEngine`] logs every
//! round's full batch in a dedicated `refine/` directory and snapshots the
//! view at checkpoints, so recovery reloads the snapshot and *replays the
//! same pass deterministically* over the logged tail — restarted and
//! never-restarted runs produce bit-identical refined clusterings and
//! per-round [`RefineReport`]s.  (The cumulative cross-comparison work
//! counter (`CrossShardRefiner::cross_comparisons`) is the one
//! process-scoped quantity: replayed rounds recompute their boundary pairs,
//! which *is* the work the restarted process performed.)

use crate::config::DynamicCStats;
use crate::dirty::{repair_regions, PassScope};
use crate::dynamic::DynamicC;
use crate::engine::Engine;
use crate::merge::{merge_pass, merge_pass_scoped};
use crate::shard::{parallel_map, ShardConfigError};
use crate::split::{split_pass, split_pass_scoped};
use dc_evolution::{merge_features, split_features};
use dc_similarity::persist::{AggregatesState, GraphState};
use dc_similarity::{BoundaryIndex, ClusterAggregates, ShardRouter, SimilarityGraph};
use dc_types::codec::{BinCodec, ByteReader, ByteWriter, CodecError};
use dc_types::{
    shard_id_base, ClusterId, Clustering, ObjectId, Operation, OperationBatch, MAX_SHARDS,
};
use std::collections::{BTreeMap, BTreeSet};

/// What one cross-shard refinement pass did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefineReport {
    /// Cross-shard candidate-pair similarities computed by this pass (new or
    /// re-keyed boundary pairs; 0 in steady state when no touched record has
    /// cross-shard block collisions).
    pub boundary_pairs_computed: usize,
    /// Cross-shard edges (similarity at or above the graph threshold)
    /// currently recovered into the refined view — the exact count of edges
    /// the per-shard graphs are missing.
    pub cross_edges_recovered: usize,
    /// Merges applied by the global repair pass this round.
    pub merges_applied: usize,
    /// Merge proposals rejected by the objective check this round.
    pub merges_rejected: usize,
    /// Splits applied by the global repair pass this round.
    pub splits_applied: usize,
    /// Split proposals rejected by the objective check this round.
    pub splits_rejected: usize,
    /// Objective delta evaluations performed by the repair pass.
    pub objective_evaluations: u64,
    /// Clusters in the refined clustering after the pass.
    pub clusters: usize,
    /// Objective score of the refined clustering (lower is better).
    pub score: f64,
    /// Size of the dirty evaluation set the repair was restricted to (the
    /// fixed-point closure of the clusters this round's operations touched).
    /// 0 when the round changed nothing within decision reach — such rounds
    /// skip the pass loop entirely.  Equals the live cluster count when the
    /// repair fell back to a full fixed point (initial build, non-converged
    /// previous round, or diagnostic full-repair mode).
    pub dirty_clusters: usize,
    /// Number of connected repair regions the dirty set decomposed into
    /// (components of the dirty set under the aggregate adjacency).
    pub regions: usize,
    /// Wall-clock nanoseconds the repair pass took (dirty-set closure,
    /// region partitioning, flag refresh, and the pass loop).  Excluded from
    /// `PartialEq`: it is a measurement, not part of the deterministic
    /// outcome, so replayed and never-restarted reports still compare equal.
    pub repair_wall_ns: u64,
}

impl PartialEq for RefineReport {
    fn eq(&self, other: &Self) -> bool {
        self.boundary_pairs_computed == other.boundary_pairs_computed
            && self.cross_edges_recovered == other.cross_edges_recovered
            && self.merges_applied == other.merges_applied
            && self.merges_rejected == other.merges_rejected
            && self.splits_applied == other.splits_applied
            && self.splits_rejected == other.splits_rejected
            && self.objective_evaluations == other.objective_evaluations
            && self.clusters == other.clusters
            && self.score == other.score
            && self.dirty_clusters == other.dirty_clusters
            && self.regions == other.regions
    }
}

/// The cross-shard refinement subsystem of a sharded engine (N > 1 only).
///
/// Owns the boundary index, the recovered cross-edge cache, the global
/// mirror graph, and the refined clustering with its maintained aggregates.
/// The boundary/cross/mirror layers are pure derived state (rebuildable from
/// the per-shard graphs); the refined clustering and its aggregates are
/// history-bearing state that the durable engine snapshots and replays.
pub(crate) struct CrossShardRefiner {
    boundary: BoundaryIndex,
    /// Symmetric adjacency of recovered cross-shard edges (≥ threshold).
    cross: BTreeMap<ObjectId, BTreeMap<ObjectId, f64>>,
    cross_edge_count: usize,
    cross_comparisons: u64,
    /// Global union graph: per-shard records and edges mirrored verbatim,
    /// plus the recovered cross-shard edges.  Never computes a similarity
    /// for an intra-shard pair.
    mirror: SimilarityGraph,
    refined: Clustering,
    /// Maintained aggregates for `(mirror, refined)` — carried across
    /// rounds, so the repair performs zero full builds.
    agg: ClusterAggregates,
    /// Cross-round dirty-tracking state: cached model flags plus the current
    /// evaluation set (see [`crate::dirty`]).  Pure derived state — it is
    /// rebuilt lazily after recovery and never persisted.
    scope: PassScope,
    /// Whether the previous repair reached its fixed point within
    /// `max_passes`.  When it did not, the clean-skip induction has no base
    /// case, so the next round falls back to a full repair.  Persisted in
    /// the snapshot so replayed rounds make the same restriction decisions.
    converged: bool,
    /// Diagnostic mode: repair everything every round (the pre-incremental
    /// behaviour).  Equivalence tests and benchmarks use this as the
    /// reference the dirty-region path is compared against.
    full_repair: bool,
    last_report: RefineReport,
}

/// The raw cluster-id value repair allocations start from: the top shard
/// namespace is reserved for the refiner (shard counts are capped one below
/// [`MAX_SHARDS`] by the sharded engines), so repair ids can never collide
/// with a per-shard allocation.
pub(crate) fn refine_id_base() -> u64 {
    shard_id_base(MAX_SHARDS - 1)
}

/// Check that every shard carries the same [`crate::DynamicCConfig`] as
/// shard 0.  The refiner (and the pipelined engine's detached refine worker)
/// read the pass configuration from shard 0 only, so a shard with a divergent
/// config would be silently overridden — reject the construction instead.
pub(crate) fn validate_shard_configs(shards: &[&Engine]) -> Result<(), ShardConfigError> {
    let Some(first) = shards.first() else {
        return Ok(());
    };
    let reference = first.dynamicc().config();
    for (shard, engine) in shards.iter().enumerate().skip(1) {
        if engine.dynamicc().config() != reference {
            return Err(ShardConfigError::MismatchedDynamicCConfig { shard });
        }
    }
    Ok(())
}

impl CrossShardRefiner {
    /// Build the refiner from the current per-shard engines: mirror every
    /// record and intra-shard edge, index every record's block keys, compute
    /// the similarity of every cross-shard candidate pair, and run the
    /// initial repair that seeds the refined view.  `assignment` is the
    /// object-to-shard map the sharded engine maintains.
    ///
    /// Validates at construction that every shard carries an identical
    /// [`crate::DynamicCConfig`]: the refiner reads its pass configuration
    /// (theta scale, pass budget) from shard 0 for the rest of its life, so
    /// a divergent shard would be silently ignored — surfaced here as
    /// [`ShardConfigError::MismatchedDynamicCConfig`] instead.
    pub(crate) fn build(
        router: &ShardRouter,
        shards: &[&Engine],
        assignment: &BTreeMap<ObjectId, usize>,
        max_threads: usize,
    ) -> Result<Self, ShardConfigError> {
        validate_shard_configs(shards)?;
        let mut refiner = Self::derived_state(router, shards, assignment)?;

        // Seed the refined view: merged per-shard clusterings, the union of
        // the per-shard aggregates with the recovered cross edges injected,
        // then the trained passes run globally to a fixed point.
        let mut refined = crate::shard::merge_clusterings(shards.iter().map(|s| s.clustering()));
        refined.set_id_watermark(refine_id_base());
        let mut agg = ClusterAggregates::union(shards.iter().map(|s| s.aggregates()));
        for (&a, nbrs) in &refiner.cross {
            for (&b, &sim) in nbrs {
                if b > a {
                    // A recovered cross edge between objects the merged
                    // per-shard clusterings do not cover means the shard
                    // graphs and clusterings disagree — a typed error, not a
                    // panic (the historical code `expect`ed it).
                    let ca = refined
                        .cluster_of(a)
                        .ok_or(ShardConfigError::UnclusteredObject { id: a })?;
                    let cb = refined
                        .cluster_of(b)
                        .ok_or(ShardConfigError::UnclusteredObject { id: b })?;
                    agg.add_inter_edge(ca, cb, sim);
                }
            }
        }
        refiner.refined = refined;
        refiner.agg = agg;
        let pairs_computed = refiner.cross_comparisons as usize;
        let dynamicc = shards.first().expect("validated non-empty").dynamicc();
        // The initial repair has no previous fixed point to lean on: run it
        // as a full fixed point (seeds = None ⇒ everything is dirty).
        refiner.run_passes(dynamicc, pairs_computed, None, max_threads);
        Ok(refiner)
    }

    /// The derived (rebuildable) layers only: boundary index, cross-edge
    /// cache, and mirror.  The refined clustering and aggregates are left
    /// empty — [`CrossShardRefiner::build`] seeds them with the initial
    /// repair and the durable engine restores them from a snapshot.
    fn derived_state(
        router: &ShardRouter,
        shards: &[&Engine],
        assignment: &BTreeMap<ObjectId, usize>,
    ) -> Result<Self, ShardConfigError> {
        let config = shards
            .first()
            .expect("at least one shard")
            .graph()
            .config()
            .clone();
        let mut refiner = CrossShardRefiner {
            boundary: router.boundary_index(),
            cross: BTreeMap::new(),
            cross_edge_count: 0,
            cross_comparisons: 0,
            mirror: SimilarityGraph::empty(config),
            refined: Clustering::new(),
            agg: ClusterAggregates::empty(),
            scope: PassScope::new(),
            converged: false,
            full_repair: false,
            last_report: RefineReport::default(),
        };

        for (&id, &shard) in assignment {
            // An assignment naming an object its shard's graph does not hold
            // is an inconsistent input pair (the historical code panicked).
            let record = shards[shard]
                .graph()
                .record(id)
                .ok_or(ShardConfigError::AssignedObjectMissing { id, shard })?;
            refiner.mirror.install_record(id, record.clone());
            refiner.boundary.insert(id, shard, record);
        }
        for shard in shards {
            for (a, b, sim) in shard.graph().edges() {
                refiner.mirror.install_edge(a, b, sim);
            }
        }

        // Every cross-shard candidate pair, each computed exactly once.
        let mut pairs: BTreeSet<(ObjectId, ObjectId)> = BTreeSet::new();
        for &id in assignment.keys() {
            for cand in refiner.boundary.cross_shard_candidates(id) {
                pairs.insert((id.min(cand), id.max(cand)));
            }
        }
        for (a, b) in pairs {
            refiner.compute_cross_pair(a, b)?;
        }
        Ok(refiner)
    }

    /// Cumulative cross-shard similarity computations performed by this
    /// process (the boundary-pass share of the sharded engine's global
    /// comparison counter).
    pub(crate) fn cross_comparisons(&self) -> u64 {
        self.cross_comparisons
    }

    /// Cross-shard edges currently recovered into the refined view — exact
    /// across rounds (grows when a round introduces a cross-shard edge,
    /// shrinks when one endpoint is removed or re-keyed apart).
    pub(crate) fn cross_edges_recovered(&self) -> usize {
        self.cross_edge_count
    }

    /// The refined clustering.
    pub(crate) fn refined(&self) -> &Clustering {
        &self.refined
    }

    /// The object-to-shard ownership the refiner currently tracks (the
    /// sticky assignment durable replay re-routes batches from).
    pub(crate) fn shard_map(&self) -> BTreeMap<ObjectId, usize> {
        self.boundary.shard_map()
    }

    /// The report of the most recent refinement pass (the initial repair
    /// right after construction, then one per served round).
    pub(crate) fn last_report(&self) -> RefineReport {
        self.last_report
    }

    /// Compute the similarity of one cross-shard candidate pair and recover
    /// the edge if it reaches the graph threshold.
    ///
    /// Candidate pairs come from the boundary index, which is maintained in
    /// lock-step with the mirror; a candidate the mirror no longer holds is
    /// an internal inconsistency surfaced as a typed error (the historical
    /// code `expect`ed "live record" here).
    fn compute_cross_pair(&mut self, a: ObjectId, b: ObjectId) -> Result<(), ShardConfigError> {
        let ra = self
            .mirror
            .record(a)
            .ok_or(ShardConfigError::MirrorRecordMissing { id: a })?;
        let rb = self
            .mirror
            .record(b)
            .ok_or(ShardConfigError::MirrorRecordMissing { id: b })?;
        let sim = self.mirror.raw_similarity(ra, rb);
        self.cross_comparisons += 1;
        if sim >= self.mirror.edge_threshold() && sim > 0.0 {
            self.cross.entry(a).or_default().insert(b, sim);
            self.cross.entry(b).or_default().insert(a, sim);
            self.cross_edge_count += 1;
            self.mirror.install_edge(a, b, sim);
        }
        Ok(())
    }

    /// Drop a record from the boundary index, the cross-edge cache, and the
    /// mirror.
    fn detach(&mut self, id: ObjectId) {
        self.boundary.remove(id);
        if let Some(nbrs) = self.cross.remove(&id) {
            self.cross_edge_count -= nbrs.len();
            for n in nbrs.keys() {
                if let Some(m) = self.cross.get_mut(n) {
                    m.remove(&id);
                    if m.is_empty() {
                        self.cross.remove(n);
                    }
                }
            }
        }
        self.mirror.remove_object(id);
    }

    /// (Re-)install one record into the derived layers: mirror record and
    /// blocking keys, edges to every mirror candidate, and the cross-edge
    /// cache.
    ///
    /// Edge weights are **reused** from the owning shard's (post-round)
    /// graph whenever that graph holds both endpoints with the records the
    /// mirror currently sees — the steady-state case, where the shard
    /// already paid for the computation.  Everything else — cross-shard
    /// pairs, neighbours whose record is mid-batch stale, objects the shard
    /// graph no longer holds, and all pairs during durable replay
    /// (`reuse = None`) — is computed against the mirror's *current*
    /// records, which is exactly what the unsharded engine computed at this
    /// position of the batch.  Reused and computed weights are bit-identical
    /// (same measure, same records), so the normal and replay paths build
    /// the same mirror down to the bit.
    ///
    /// The pairs that do need the measure are computed on the scoped pool:
    /// the measure is a pure function of the two records and the serial
    /// install below walks the candidates in their original (sorted) order,
    /// so the mirror, the cross cache, and the comparison counters come out
    /// bit-identical at every thread count.  Without this, the refiner's
    /// fold would serialize the one per-op cost that actually grows with
    /// the workload and cap the sharded engine's refined-mode speedup.
    fn attach(
        &mut self,
        id: ObjectId,
        shard: usize,
        record: &dc_types::Record,
        reuse: Option<&[&Engine]>,
        max_threads: usize,
    ) {
        enum Pending {
            Reused { n: ObjectId, sim: f64 },
            Compute { n: ObjectId, cross: bool },
        }
        // Candidates are queried before the record is indexed, matching
        // `SimilarityGraph::add_object` (the unsharded order).
        let candidates = self.mirror.candidate_ids(record);
        self.mirror.install_record(id, record.clone());
        let graph = reuse.map(|shards| shards[shard].graph());
        let id_in_shard = graph.is_some_and(|g| g.contains(id));

        let mut plan = Vec::with_capacity(candidates.len());
        for n in candidates {
            if n == id || !self.mirror.contains(n) {
                continue;
            }
            let n_shard = self
                .boundary
                .shard_of(n)
                .expect("mirror and boundary track the same records");
            if n_shard == shard {
                let fresh =
                    id_in_shard && graph.is_some_and(|g| g.record(n) == self.mirror.record(n));
                if fresh {
                    // The shard computed this pair; 0 means sub-threshold.
                    let sim = graph.expect("fresh implies a graph").similarity(id, n);
                    plan.push(Pending::Reused { n, sim });
                } else {
                    plan.push(Pending::Compute { n, cross: false });
                }
            } else {
                plan.push(Pending::Compute { n, cross: true });
            }
        }

        let to_compute: Vec<ObjectId> = plan
            .iter()
            .filter_map(|p| match p {
                Pending::Compute { n, .. } => Some(*n),
                Pending::Reused { .. } => None,
            })
            .collect();
        let mirror = &self.mirror;
        let computed = parallel_map(&to_compute, max_threads, |&n| {
            let other = mirror.record(n).expect("live record");
            mirror.raw_similarity(record, other)
        });

        let mut computed = computed.into_iter();
        for pending in plan {
            let (n, cross, sim) = match pending {
                Pending::Reused { n, sim } => (n, false, sim),
                Pending::Compute { n, cross } => (
                    n,
                    cross,
                    computed.next().expect("one similarity per computed pair"),
                ),
            };
            if cross {
                self.cross_comparisons += 1;
            }
            if sim >= self.mirror.edge_threshold() && sim > 0.0 {
                if cross {
                    self.cross.entry(id).or_default().insert(n, sim);
                    self.cross.entry(n).or_default().insert(id, sim);
                    self.cross_edge_count += 1;
                }
                self.mirror.install_edge(id, n, sim);
            }
        }
        self.boundary.insert(id, shard, record);
    }

    /// Fold one served round into the refined view, mimicking the unsharded
    /// engine's round loop: operations are applied **in their original
    /// order** to the mirror, the refined clustering, and the maintained
    /// aggregates (O(degree) each), then Algorithm 3 runs to a fixed point.
    /// Returns the round's [`RefineReport`].
    pub(crate) fn apply_round(
        &mut self,
        batch: &OperationBatch,
        op_shards: &[usize],
        shards: &[&Engine],
        max_threads: usize,
    ) -> RefineReport {
        let dynamicc = shards.first().expect("at least one shard").dynamicc();
        self.apply_round_inner(batch, op_shards, dynamicc, Some(shards), max_threads)
    }

    /// Switch between the incremental dirty-region repair (the default) and
    /// the diagnostic full-repair mode that re-runs the global fixed point
    /// every round.  Both produce the same refined clustering; equivalence
    /// tests and benchmarks rely on this switch for their reference run.
    pub(crate) fn set_full_repair(&mut self, full_repair: bool) {
        self.full_repair = full_repair;
    }

    /// [`CrossShardRefiner::apply_round`] for durable recovery replay and
    /// for the pipelined engine's detached refine worker: the per-shard
    /// graphs may have advanced past the folded round, so no weight may be
    /// reused from them — every pair is recomputed against the mirror's
    /// records, which reproduces the synchronous round's mirror bit-for-bit
    /// (see [`CrossShardRefiner::attach`]).  The pass configuration is
    /// passed explicitly (all shards carry an identical one — validated at
    /// construction), so no shard borrow is needed at all.
    pub(crate) fn replay_round(
        &mut self,
        batch: &OperationBatch,
        op_shards: &[usize],
        dynamicc: &DynamicC,
        max_threads: usize,
    ) -> RefineReport {
        self.apply_round_inner(batch, op_shards, dynamicc, None, max_threads)
    }

    /// Record `id` and its current mirror neighbours as touched by this
    /// round (called both before a detach and after an attach, so clusters
    /// losing *and* gaining edge mass are captured).
    fn note_touched(&self, id: ObjectId, touched: &mut BTreeSet<ObjectId>) {
        touched.insert(id);
        for (n, _) in self.mirror.neighbors(id) {
            touched.insert(n);
        }
    }

    fn apply_round_inner(
        &mut self,
        batch: &OperationBatch,
        op_shards: &[usize],
        dynamicc: &DynamicC,
        reuse: Option<&[&Engine]>,
        max_threads: usize,
    ) -> RefineReport {
        let comparisons_before = self.cross_comparisons;
        // Dirty-seed collection: every aggregate row the fold below mutates
        // belongs to the cluster of an object recorded here — each op's own
        // id, its mirror neighbours before detach and after attach (edges
        // only appear or disappear incident to the op's id), plus the
        // clusters captured at op time (the pre-removal cluster of a removed
        // or updated object survives as a dirty cluster id even after its
        // last member leaves).
        let mut touched: BTreeSet<ObjectId> = BTreeSet::new();
        let mut seeds: BTreeSet<ClusterId> = BTreeSet::new();
        // §6.1 initial processing against the global view, fused with
        // aggregate maintenance — the mirror-backed analogue of
        // `ClusterAggregates::apply_batch`.
        for (op, &shard) in batch.iter().zip(op_shards) {
            match op {
                Operation::Add { id, record } => {
                    self.note_touched(*id, &mut touched);
                    if let Some(cid) = self.refined.cluster_of(*id) {
                        // Re-add of a live object: edges are replaced but it
                        // keeps its cluster, exactly like initial processing.
                        seeds.insert(cid);
                        self.agg.apply_remove(&self.mirror, &self.refined, *id, cid);
                        self.detach(*id);
                        self.attach(*id, shard, record, reuse, max_threads);
                        self.agg.apply_add(&self.mirror, &self.refined, *id);
                    } else {
                        self.detach(*id);
                        self.attach(*id, shard, record, reuse, max_threads);
                        self.refined
                            .create_cluster([*id])
                            .expect("fresh object enters as a singleton");
                        self.agg.apply_add(&self.mirror, &self.refined, *id);
                    }
                    self.note_touched(*id, &mut touched);
                }
                Operation::Remove { id } => {
                    self.note_touched(*id, &mut touched);
                    if let Some(cid) = self.refined.cluster_of(*id) {
                        seeds.insert(cid);
                        self.agg.apply_remove(&self.mirror, &self.refined, *id, cid);
                        self.refined.remove_object(*id).expect("object present");
                    }
                    self.detach(*id);
                }
                Operation::Update { id, record } => {
                    self.note_touched(*id, &mut touched);
                    if let Some(cid) = self.refined.cluster_of(*id) {
                        seeds.insert(cid);
                        self.agg.apply_remove(&self.mirror, &self.refined, *id, cid);
                        self.refined.remove_object(*id).expect("object present");
                    }
                    self.detach(*id);
                    self.attach(*id, shard, record, reuse, max_threads);
                    self.refined
                        .create_cluster([*id])
                        .expect("object just removed");
                    self.agg.apply_add(&self.mirror, &self.refined, *id);
                    self.note_touched(*id, &mut touched);
                }
            }
        }
        // Project the touched objects onto their (post-fold) clusters.
        for &id in &touched {
            if let Some(cid) = self.refined.cluster_of(id) {
                seeds.insert(cid);
            }
        }
        let pairs_computed = (self.cross_comparisons - comparisons_before) as usize;
        self.run_passes(dynamicc, pairs_computed, Some(seeds), max_threads)
    }

    /// §6.4: alternate the trained merge and split passes until a fixed
    /// point, then refresh the report — restricted to the dirty closure of
    /// `seeds` when the incremental bookkeeping can vouch for everything
    /// else, and falling back to the full global fixed point otherwise
    /// (`seeds = None`, a non-converged previous round, or full-repair
    /// mode).
    ///
    /// The restricted and full paths produce the same refined clustering,
    /// the same applied merges/splits, and the same fresh cluster ids: the
    /// scoped passes walk the same candidate queue in the same order and
    /// only skip evaluations whose rejection the previous fixed point
    /// already proved (see [`crate::dirty`]).  What the restriction *does*
    /// change is the amount of work — skipped evaluations are not counted,
    /// so `objective_evaluations` and the rejection counters are ≤ their
    /// full-pass values.
    ///
    /// How much the objective lets the restriction skip is declared by the
    /// objective itself ([`dc_objective::DecisionLocality`]): sum objectives
    /// skip on neighbourhood cleanliness alone; mean objectives additionally
    /// gate every skip on the rejection's score-validity interval, with the
    /// passes tracking the running global score so in-pass drift is seen at
    /// the exact queue position the full pass would see it; objectives that
    /// declare nothing fall back to a full repair every round.
    fn run_passes(
        &mut self,
        dynamicc: &DynamicC,
        pairs_computed: usize,
        seeds: Option<BTreeSet<ClusterId>>,
        max_threads: usize,
    ) -> RefineReport {
        let reg = dc_telemetry::registry();
        let repair_span = reg.span("refine.repair");
        let objective = dynamicc.objective().as_ref();
        let models = dynamicc.models();
        let config = dynamicc.config();
        let locality = objective.decision_locality();
        let mut stats = DynamicCStats::default();

        // Close the seeds into the evaluation set: seeds ∪ N(seeds) have
        // stale model flags (features read the own row plus neighbour
        // sizes), and one more neighbour hop covers the partner-ranking
        // reach of the merge decision.
        let full = self.full_repair
            || !self.converged
            || seeds.is_none()
            || locality == dc_objective::DecisionLocality::Opaque;
        let (eval, stale) = if full {
            let all: BTreeSet<ClusterId> = self.refined.cluster_ids().into_iter().collect();
            (all.clone(), all)
        } else {
            let seeds: BTreeSet<ClusterId> = seeds
                .expect("checked above")
                .into_iter()
                .filter(|c| self.refined.contains_cluster(*c))
                .collect();
            let mut stale = seeds.clone();
            for &c in &seeds {
                stale.extend(self.agg.neighbour_clusters(c));
            }
            let mut eval = stale.clone();
            for &c in &stale {
                eval.extend(self.agg.neighbour_clusters(c));
            }
            (eval, stale)
        };
        if full {
            self.scope.clear_flags();
        } else {
            for &c in &stale {
                self.scope.invalidate(c);
            }
        }

        // Partition the dirty set into independent repair regions and
        // refresh the stale model flags region-parallel.  Flag values are
        // pure functions of the maintained aggregates and the frozen
        // models, so the parallel refresh is deterministic and bit-equal to
        // the lazy in-pass computation it pre-empts.
        let regions = repair_regions(&eval, &self.agg);
        let dirty_clusters = eval.len();
        let region_count = regions.len();
        let missing: Vec<Vec<ClusterId>> = if self.full_repair {
            Vec::new() // The unscoped reference passes never read the cache.
        } else {
            regions
                .iter()
                .map(|region| {
                    region
                        .iter()
                        .copied()
                        .filter(|&c| !self.scope.has_flags(c))
                        .collect()
                })
                .filter(|region: &Vec<ClusterId>| !region.is_empty())
                .collect()
        };
        let agg = &self.agg;
        let refined = &self.refined;
        let theta_scale = config.theta_scale;
        let refreshed = parallel_map(&missing, max_threads, |region| {
            region
                .iter()
                .map(|&cid| {
                    let merge = models.predicts_merge(&merge_features(agg, cid), theta_scale);
                    // Split flags are only consulted for clusters of size
                    // ≥ 2; sizes only change through invalidating events,
                    // so caching `false` for singletons is safe.
                    let split = refined.cluster_size(cid) >= 2
                        && models.predicts_split(&split_features(agg, cid), theta_scale);
                    (cid, merge, split)
                })
                .collect::<Vec<_>>()
        });
        for region in refreshed {
            for (cid, merge, split) in region {
                self.scope.store_flags(cid, merge, split);
            }
        }

        if eval.is_empty() {
            // Nothing within decision reach changed: the previous fixed
            // point still stands verbatim and the pass loop is skipped —
            // zero evaluations, zero repair work.
            self.converged = true;
        } else {
            self.scope.set_eval(eval);
            // For a global-mean objective the scoped passes need the running
            // score: skips are gated on it and rejection intervals are
            // recorded against it.  Re-reading it from the aggregates at
            // every iteration keeps the in-pass `score += delta` tracking
            // from accumulating rounding drift across iterations.  The
            // diagnostic unscoped reference never skips, so it never pays
            // for (or sees) any of this.
            let track_score = !(full && self.full_repair)
                && locality == dc_objective::DecisionLocality::GlobalMean;
            let mut converged = false;
            for _ in 0..config.max_passes {
                let mut score = track_score
                    .then(|| objective.evaluate_with(&self.agg, &self.mirror, &self.refined));
                let merged = if full && self.full_repair {
                    merge_pass(
                        &self.mirror,
                        &mut self.refined,
                        &mut self.agg,
                        objective,
                        models,
                        config.theta_scale,
                        &mut stats,
                    )
                } else {
                    merge_pass_scoped(
                        &self.mirror,
                        &mut self.refined,
                        &mut self.agg,
                        objective,
                        models,
                        config.theta_scale,
                        &mut stats,
                        &mut self.scope,
                        score.as_mut(),
                    )
                };
                let split = if full && self.full_repair {
                    split_pass(
                        &self.mirror,
                        &mut self.refined,
                        &mut self.agg,
                        objective,
                        models,
                        config.theta_scale,
                        &mut stats,
                    )
                } else {
                    split_pass_scoped(
                        &self.mirror,
                        &mut self.refined,
                        &mut self.agg,
                        objective,
                        models,
                        config.theta_scale,
                        &mut stats,
                        &mut self.scope,
                        score.as_mut(),
                    )
                };
                if !merged && !split {
                    converged = true;
                    break;
                }
            }
            self.converged = converged;
        }

        reg.add("refine.boundary_pairs", pairs_computed as u64);
        reg.add("refine.dirty_clusters", dirty_clusters as u64);
        reg.add("refine.regions", region_count as u64);
        let report = RefineReport {
            boundary_pairs_computed: pairs_computed,
            cross_edges_recovered: self.cross_edge_count,
            merges_applied: stats.merges_applied,
            merges_rejected: stats.merges_rejected,
            splits_applied: stats.splits_applied,
            splits_rejected: stats.splits_rejected,
            objective_evaluations: stats.objective_evaluations,
            clusters: self.refined.cluster_count(),
            score: objective.evaluate_with(&self.agg, &self.mirror, &self.refined),
            dirty_clusters,
            regions: region_count,
            // The span's elapsed time feeds the report field even with
            // telemetry off; with it on, the same interval also lands in
            // the `refine.repair` histogram.
            repair_wall_ns: repair_span.finish_ns(),
        };
        self.last_report = report;
        report
    }

    // ------------------------------------------------------------------
    // Durability hooks (see `ShardedDurableEngine`)
    // ------------------------------------------------------------------

    /// Export the history-bearing refine state as an owned value.  The
    /// mirror is included so replayed rounds see the exact global graph the
    /// never-restarted run saw (the per-shard graphs have already advanced
    /// past the snapshot round by the time recovery replays the tail).
    ///
    /// This clones the mirror records and the refined clustering; checkpoint
    /// paths that only need the *bytes* use [`CrossShardRefiner::snapshot_ref`]
    /// instead, which encodes the same state clone-free.  Serving code no
    /// longer calls this — it remains as the owned reference the
    /// byte-equality regression test compares the borrowed encoder against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn export_state(&self) -> RefineState {
        let (merge_floors, split_ceils) = self.scope.rejection_intervals();
        RefineState {
            mirror: self.mirror.export_state(),
            refined: self.refined.clone(),
            aggregates: self.agg.export_state(),
            assignment: self.boundary.shard_map(),
            converged: self.converged,
            merge_floors: merge_floors.clone(),
            split_ceils: split_ceils.clone(),
        }
    }

    /// A borrowed, write-only view of the refine snapshot: encodes bytes
    /// identical to `self.export_state().encode(..)` without cloning the
    /// mirror's records or the refined clustering.  This is what the
    /// checkpoint path hands to the snapshotter, keeping checkpoint cost at
    /// O(serialized bytes) — the regression test pins zero clustering clones
    /// and zero full aggregate builds across an encode.
    pub(crate) fn snapshot_ref(&self) -> RefineSnapshotRef<'_> {
        RefineSnapshotRef { refiner: self }
    }

    /// Reassemble a refiner from a durable snapshot: the mirror, refined
    /// clustering, and aggregates are restored bit-exactly, and the boundary
    /// index and cross-edge cache are re-derived from the restored mirror.
    /// Cross-pair similarities are *looked up* in the mirror (whose edge
    /// weights are exact); only the counting is process-scoped — see the
    /// module docs.  `graph_config` is the same construction-time input the
    /// durable engine already threads to every shard, and
    /// `state.assignment` records each restored record's owning shard (the
    /// sticky routing history replays are re-routed from).
    pub(crate) fn import_state(
        router: &ShardRouter,
        graph_config: dc_similarity::GraphConfig,
        state: RefineState,
    ) -> Result<Self, CodecError> {
        let mirror = SimilarityGraph::import_state(graph_config, state.mirror)?;
        let agg = ClusterAggregates::import_state(state.aggregates)?;
        let assignment = state.assignment;
        let mut refiner = CrossShardRefiner {
            boundary: router.boundary_index(),
            cross: BTreeMap::new(),
            cross_edge_count: 0,
            cross_comparisons: 0,
            mirror,
            refined: state.refined,
            agg,
            scope: PassScope::from_rejection_intervals(state.merge_floors, state.split_ceils),
            converged: state.converged,
            full_repair: false,
            last_report: RefineReport::default(),
        };
        // Re-derive the boundary index and the cross-edge cache from the
        // restored mirror.  Cross-pair similarities are *looked up* in the
        // mirror (whose edge weights are bit-exact), not recomputed — only
        // sub-threshold pairs (which the mirror does not store) cost a fresh
        // computation.
        for id in refiner.mirror.object_ids() {
            let shard = assignment.get(&id).copied().ok_or_else(|| {
                CodecError::Invalid(format!("restored mirror object {id} is owned by no shard"))
            })?;
            // A corrupt snapshot (or a WAL round referencing a record
            // deleted in the same batch and mis-merged by hand) can name an
            // id the mirror holds no record for — surface that as a typed
            // error instead of panicking mid-recovery.
            let record = refiner
                .mirror
                .record(id)
                .ok_or_else(|| {
                    CodecError::Invalid(format!(
                        "restored mirror names object {id} but holds no record for it"
                    ))
                })?
                .clone();
            refiner.boundary.insert(id, shard, &record);
        }
        if assignment.len() != refiner.mirror.object_count() {
            return Err(CodecError::Invalid(
                "restored assignment names objects absent from the mirror".into(),
            ));
        }
        let mut pairs: BTreeSet<(ObjectId, ObjectId)> = BTreeSet::new();
        for id in refiner.mirror.object_ids() {
            for cand in refiner.boundary.cross_shard_candidates(id) {
                pairs.insert((id.min(cand), id.max(cand)));
            }
        }
        for (a, b) in pairs {
            let sim = refiner.mirror.similarity(a, b);
            refiner.cross_comparisons += 1;
            if sim > 0.0 {
                refiner.cross.entry(a).or_default().insert(b, sim);
                refiner.cross.entry(b).or_default().insert(a, sim);
                refiner.cross_edge_count += 1;
            }
        }
        Ok(refiner)
    }
}

/// Magic prefix of a versioned refine snapshot ("DCRF" little-endian).
/// Version 1 snapshots (PR 5) had no version framing at all — their payload
/// began with the mirror's record count, which cannot collide with this
/// value for any realistic state — so the decoder can tell the two apart
/// and reject v1 with a typed error instead of misparsing it.
const REFINE_SNAPSHOT_MAGIC: u32 = 0x4652_4344; // b"DCRF" read back as bytes
/// Current refine snapshot format version.  v2 added the dirty-tracking
/// `converged` flag, the rejection score-validity intervals of global-mean
/// objectives (and the magic/version framing itself).
const REFINE_SNAPSHOT_VERSION: u8 = 2;

/// The history-bearing refine state a durable snapshot carries.
#[derive(Debug)]
pub(crate) struct RefineState {
    pub(crate) mirror: GraphState,
    pub(crate) refined: Clustering,
    pub(crate) aggregates: AggregatesState,
    /// Object-to-shard ownership at the snapshot round: sticky routing is
    /// history-dependent, so replayed batches must be re-routed from the
    /// exact assignment the original run held.
    pub(crate) assignment: BTreeMap<ObjectId, usize>,
    /// Whether the snapshot round's repair converged — the base case the
    /// incremental restriction leans on.  Persisted so a recovered run makes
    /// the same full-vs-restricted decisions as a never-restarted one.
    pub(crate) converged: bool,
    /// Proven merge-rejection score floors (global-mean objectives only;
    /// empty otherwise).  Genuine decision state: a recovered run must skip
    /// and re-evaluate exactly the clusters a never-restarted one would.
    pub(crate) merge_floors: BTreeMap<ClusterId, f64>,
    /// Proven split-rejection score ceilings — see `merge_floors`.
    pub(crate) split_ceils: BTreeMap<ClusterId, f64>,
}

impl BinCodec for RefineState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(REFINE_SNAPSHOT_MAGIC);
        w.put_u8(REFINE_SNAPSHOT_VERSION);
        self.mirror.encode(w);
        self.refined.encode(w);
        self.aggregates.encode(w);
        w.put_usize(self.assignment.len());
        for (id, shard) in &self.assignment {
            id.encode(w);
            w.put_usize(*shard);
        }
        w.put_bool(self.converged);
        self.merge_floors.encode(w);
        self.split_ceils.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let magic = r.get_u32()?;
        if magic != REFINE_SNAPSHOT_MAGIC {
            return Err(CodecError::Invalid(format!(
                "refine snapshot has no v2 magic (found 0x{magic:08x}): \
                 this is a v1 (unversioned) snapshot or corrupt data — \
                 re-checkpoint under the writing binary before upgrading, \
                 or rebuild the refined view from the per-shard state"
            )));
        }
        let version = r.get_u8()?;
        if version != REFINE_SNAPSHOT_VERSION {
            return Err(CodecError::Invalid(format!(
                "unsupported refine snapshot version {version} \
                 (this binary reads version {REFINE_SNAPSHOT_VERSION})"
            )));
        }
        let mirror = GraphState::decode(r)?;
        let refined = Clustering::decode(r)?;
        let aggregates = AggregatesState::decode(r)?;
        let count = r.get_length_prefix(16)?;
        let mut assignment = BTreeMap::new();
        for _ in 0..count {
            let id = ObjectId::decode(r)?;
            let shard = r.get_usize()?;
            if assignment.insert(id, shard).is_some() {
                return Err(CodecError::Invalid(format!(
                    "object {id} assigned to more than one shard"
                )));
            }
        }
        let converged = r.get_bool()?;
        let merge_floors = BTreeMap::decode(r)?;
        let split_ceils = BTreeMap::decode(r)?;
        Ok(RefineState {
            mirror,
            refined,
            aggregates,
            assignment,
            converged,
            merge_floors,
            split_ceils,
        })
    }
}

/// A borrowed, encode-only view of a refiner's durable snapshot state.
///
/// Produces bytes identical to encoding [`CrossShardRefiner::export_state`]
/// — same v2 framing, same field order, same element orders (all the
/// underlying walks are over ordered maps) — but borrows everything:
/// no mirror record is cloned, no clustering copy is made, no owned
/// assignment map is materialized.  Decoding goes through [`RefineState`];
/// this type is strictly the writer half.
#[derive(Debug)]
pub(crate) struct RefineSnapshotRef<'a> {
    refiner: &'a CrossShardRefiner,
}

impl BinCodec for RefineSnapshotRef<'_> {
    fn encode(&self, w: &mut ByteWriter) {
        let r = self.refiner;
        w.put_u32(REFINE_SNAPSHOT_MAGIC);
        w.put_u8(REFINE_SNAPSHOT_VERSION);
        r.mirror.encode_state_into(w);
        r.refined.encode(w);
        r.agg.export_state().encode(w);
        w.put_usize(r.boundary.record_count());
        for (id, shard) in r.boundary.assignments() {
            id.encode(w);
            w.put_usize(shard);
        }
        w.put_bool(r.converged);
        let (merge_floors, split_ceils) = r.scope.rejection_intervals();
        merge_floors.encode(w);
        split_ceils.encode(w);
    }
    fn decode(_r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Err(CodecError::Invalid(
            "RefineSnapshotRef is encode-only; decode through RefineState".into(),
        ))
    }
}

impl std::fmt::Debug for CrossShardRefiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossShardRefiner")
            .field("records", &self.mirror.object_count())
            .field("cross_edges_recovered", &self.cross_edge_count)
            .field("cross_comparisons", &self.cross_comparisons)
            .field("refined_clusters", &self.refined.cluster_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state(converged: bool) -> RefineState {
        let mut refined = Clustering::new();
        refined
            .create_cluster([ObjectId::new(1)])
            .expect("fresh clustering");
        let merge_floors: BTreeMap<ClusterId, f64> =
            [(ClusterId::new(3), 0.25)].into_iter().collect();
        let split_ceils: BTreeMap<ClusterId, f64> = [
            (ClusterId::new(3), 0.75),
            (ClusterId::new(9), f64::INFINITY),
        ]
        .into_iter()
        .collect();
        RefineState {
            mirror: GraphState {
                records: Vec::new(),
                edges: Vec::new(),
                comparisons: 7,
            },
            refined,
            aggregates: ClusterAggregates::empty().export_state(),
            assignment: BTreeMap::new(),
            converged,
            merge_floors,
            split_ceils,
        }
    }

    #[test]
    fn refine_snapshot_v2_round_trips_converged_flag_and_rejection_intervals() {
        for converged in [false, true] {
            let state = tiny_state(converged);
            let bytes = state.encode_to_vec();
            let restored = RefineState::decode_exact(&bytes).expect("v2 round-trip");
            assert_eq!(restored.converged, converged);
            assert_eq!(restored.mirror.comparisons, 7);
            assert_eq!(restored.refined.cluster_count(), 1);
            assert_eq!(restored.merge_floors, state.merge_floors);
            assert_eq!(restored.split_ceils, state.split_ceils);
        }
    }

    #[test]
    fn unversioned_v1_snapshots_are_rejected_with_a_typed_error() {
        // A v1 snapshot had no framing: its bytes begin with the mirror's
        // record count.  Re-encode the same payload the v1 writer produced
        // and check the decoder identifies it instead of misparsing it.
        let state = tiny_state(true);
        let mut w = ByteWriter::new();
        state.mirror.encode(&mut w);
        state.refined.encode(&mut w);
        state.aggregates.encode(&mut w);
        w.put_usize(0);
        let err = RefineState::decode_exact(&w.into_bytes()).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("v1") && message.contains("magic"),
            "v1 rejection must say what was found: {message}"
        );
    }

    #[test]
    fn unknown_snapshot_versions_are_rejected_with_a_typed_error() {
        let mut bytes = tiny_state(true).encode_to_vec();
        bytes[4] = REFINE_SNAPSHOT_VERSION + 1; // the version byte follows the magic
        let err = RefineState::decode_exact(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("version"),
            "version rejection must name the version: {err}"
        );
    }

    #[test]
    fn snapshot_ref_is_encode_only() {
        let bytes = tiny_state(true).encode_to_vec();
        let err = RefineSnapshotRef::decode(&mut ByteReader::new(&bytes)).unwrap_err();
        assert!(err.to_string().contains("encode-only"));
    }
}
