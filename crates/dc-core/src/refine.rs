//! Cross-shard refinement: closing the quality gap of sharded serving.
//!
//! Sharded serving ([`crate::shard`]) partitions the live objects across N
//! independent engines and *drops every cross-shard similarity edge*: the
//! per-shard graphs never compare records that route to different shards, so
//! the merged clustering silently under-merges exactly where blocking says
//! two records could be duplicates.  This module recovers that loss:
//!
//! 1. **Boundary pair exchange.**  A [`BoundaryIndex`] over each record's
//!    *full* block-key set finds the cross-shard candidate pairs the
//!    per-shard graphs cannot see.  Their similarities are computed once,
//!    counted in the sharded engine's global comparison counter, cached, and
//!    maintained incrementally as rounds add, update, and remove records —
//!    turning the old `cross_shard_edges_dropped` loss into the exact
//!    recovered-edge metric (`CrossShardRefiner::cross_edges_recovered`).
//! 2. **Global merge repair.**  The refiner owns a *global serving view*
//!    maintained across rounds, exactly shaped like the unsharded
//!    [`Engine`]'s state:
//!
//!    * a **mirror** — a global union [`SimilarityGraph`] whose records and
//!      edge weights are copied verbatim from the per-shard graphs (no
//!      similarity is ever recomputed for them) plus the recovered
//!      cross-shard edges;
//!    * the **refined clustering** — seeded by an initial repair of the
//!      partition (merged per-shard clusterings + union aggregates + the
//!      trained passes run globally), then evolved per round exactly like
//!      the unsharded engine evolves its clustering: the batch's operations
//!      are folded in **in their original order** (new/updated objects enter
//!      as fresh singletons, removed objects leave), and then the *same*
//!      trained merge and split passes as the unsharded engine (Algorithm 3
//!      — literally `merge_pass` and `split_pass`) run against the mirror to
//!      a fixed point;
//!    * maintained [`ClusterAggregates`] for `(mirror, refined)`, updated at
//!      O(degree) per operation and folded through every applied merge and
//!      split — the refinement pass performs **zero** full aggregate builds,
//!      at construction or while serving.
//!
//!    Because the refined view sees the same records, the same edges (under
//!    exact blocking), and runs the same algorithm from the same previous
//!    clustering, it converges to the unsharded engine's clustering — the
//!    pair-level equivalence pinned by `tests/shard_quality.rs`.  Repair
//!    merges and splits allocate fresh cluster ids from the reserved refine
//!    namespace (`shard_id_base(MAX_SHARDS - 1)`), so they can never collide
//!    with any per-shard allocation.
//!
//! The per-shard clusterings are never mutated by the repair — each shard
//! keeps serving its own partition, and the refined view is a separate
//! global projection.  For durability, the refined view is genuine state
//! (it evolves with history): [`crate::ShardedDurableEngine`] logs every
//! round's full batch in a dedicated `refine/` directory and snapshots the
//! view at checkpoints, so recovery reloads the snapshot and *replays the
//! same pass deterministically* over the logged tail — restarted and
//! never-restarted runs produce bit-identical refined clusterings and
//! per-round [`RefineReport`]s.  (The cumulative cross-comparison work
//! counter (`CrossShardRefiner::cross_comparisons`) is the one
//! process-scoped quantity: replayed rounds recompute their boundary pairs,
//! which *is* the work the restarted process performed.)

use crate::config::DynamicCStats;
use crate::dynamic::DynamicC;
use crate::engine::Engine;
use crate::merge::merge_pass;
use crate::split::split_pass;
use dc_similarity::persist::{AggregatesState, GraphState};
use dc_similarity::{BoundaryIndex, ClusterAggregates, ShardRouter, SimilarityGraph};
use dc_types::codec::{BinCodec, ByteReader, ByteWriter, CodecError};
use dc_types::{shard_id_base, Clustering, ObjectId, Operation, OperationBatch, MAX_SHARDS};
use std::collections::{BTreeMap, BTreeSet};

/// What one cross-shard refinement pass did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RefineReport {
    /// Cross-shard candidate-pair similarities computed by this pass (new or
    /// re-keyed boundary pairs; 0 in steady state when no touched record has
    /// cross-shard block collisions).
    pub boundary_pairs_computed: usize,
    /// Cross-shard edges (similarity at or above the graph threshold)
    /// currently recovered into the refined view — the exact count of edges
    /// the per-shard graphs are missing.
    pub cross_edges_recovered: usize,
    /// Merges applied by the global repair pass this round.
    pub merges_applied: usize,
    /// Merge proposals rejected by the objective check this round.
    pub merges_rejected: usize,
    /// Splits applied by the global repair pass this round.
    pub splits_applied: usize,
    /// Split proposals rejected by the objective check this round.
    pub splits_rejected: usize,
    /// Objective delta evaluations performed by the repair pass.
    pub objective_evaluations: u64,
    /// Clusters in the refined clustering after the pass.
    pub clusters: usize,
    /// Objective score of the refined clustering (lower is better).
    pub score: f64,
}

/// The cross-shard refinement subsystem of a sharded engine (N > 1 only).
///
/// Owns the boundary index, the recovered cross-edge cache, the global
/// mirror graph, and the refined clustering with its maintained aggregates.
/// The boundary/cross/mirror layers are pure derived state (rebuildable from
/// the per-shard graphs); the refined clustering and its aggregates are
/// history-bearing state that the durable engine snapshots and replays.
pub(crate) struct CrossShardRefiner {
    boundary: BoundaryIndex,
    /// Symmetric adjacency of recovered cross-shard edges (≥ threshold).
    cross: BTreeMap<ObjectId, BTreeMap<ObjectId, f64>>,
    cross_edge_count: usize,
    cross_comparisons: u64,
    /// Global union graph: per-shard records and edges mirrored verbatim,
    /// plus the recovered cross-shard edges.  Never computes a similarity
    /// for an intra-shard pair.
    mirror: SimilarityGraph,
    refined: Clustering,
    /// Maintained aggregates for `(mirror, refined)` — carried across
    /// rounds, so the repair performs zero full builds.
    agg: ClusterAggregates,
    last_report: RefineReport,
}

/// The raw cluster-id value repair allocations start from: the top shard
/// namespace is reserved for the refiner (shard counts are capped one below
/// [`MAX_SHARDS`] by the sharded engines), so repair ids can never collide
/// with a per-shard allocation.
pub(crate) fn refine_id_base() -> u64 {
    shard_id_base(MAX_SHARDS - 1)
}

impl CrossShardRefiner {
    /// Build the refiner from the current per-shard engines: mirror every
    /// record and intra-shard edge, index every record's block keys, compute
    /// the similarity of every cross-shard candidate pair, and run the
    /// initial repair that seeds the refined view.  `assignment` is the
    /// object-to-shard map the sharded engine maintains.
    pub(crate) fn build(
        router: &ShardRouter,
        shards: &[&Engine],
        assignment: &BTreeMap<ObjectId, usize>,
    ) -> Self {
        let mut refiner = Self::derived_state(router, shards, assignment);

        // Seed the refined view: merged per-shard clusterings, the union of
        // the per-shard aggregates with the recovered cross edges injected,
        // then the trained passes run globally to a fixed point.
        let mut refined = crate::shard::merge_clusterings(shards.iter().map(|s| s.clustering()));
        refined.set_id_watermark(refine_id_base());
        let mut agg = ClusterAggregates::union(shards.iter().map(|s| s.aggregates()));
        for (&a, nbrs) in &refiner.cross {
            for (&b, &sim) in nbrs {
                if b > a {
                    let ca = refined.cluster_of(a).expect("live object is clustered");
                    let cb = refined.cluster_of(b).expect("live object is clustered");
                    agg.add_inter_edge(ca, cb, sim);
                }
            }
        }
        refiner.refined = refined;
        refiner.agg = agg;
        let pairs_computed = refiner.cross_comparisons as usize;
        let dynamicc = shards.first().expect("at least one shard").dynamicc();
        refiner.run_passes(dynamicc, pairs_computed);
        refiner
    }

    /// The derived (rebuildable) layers only: boundary index, cross-edge
    /// cache, and mirror.  The refined clustering and aggregates are left
    /// empty — [`CrossShardRefiner::build`] seeds them with the initial
    /// repair and the durable engine restores them from a snapshot.
    fn derived_state(
        router: &ShardRouter,
        shards: &[&Engine],
        assignment: &BTreeMap<ObjectId, usize>,
    ) -> Self {
        let config = shards
            .first()
            .expect("at least one shard")
            .graph()
            .config()
            .clone();
        let mut refiner = CrossShardRefiner {
            boundary: router.boundary_index(),
            cross: BTreeMap::new(),
            cross_edge_count: 0,
            cross_comparisons: 0,
            mirror: SimilarityGraph::empty(config),
            refined: Clustering::new(),
            agg: ClusterAggregates::empty(),
            last_report: RefineReport::default(),
        };

        for (&id, &shard) in assignment {
            let record = shards[shard].graph().record(id).expect("assigned object");
            refiner.mirror.install_record(id, record.clone());
            refiner.boundary.insert(id, shard, record);
        }
        for shard in shards {
            for (a, b, sim) in shard.graph().edges() {
                refiner.mirror.install_edge(a, b, sim);
            }
        }

        // Every cross-shard candidate pair, each computed exactly once.
        let mut pairs: BTreeSet<(ObjectId, ObjectId)> = BTreeSet::new();
        for &id in assignment.keys() {
            for cand in refiner.boundary.cross_shard_candidates(id) {
                pairs.insert((id.min(cand), id.max(cand)));
            }
        }
        for (a, b) in pairs {
            refiner.compute_cross_pair(a, b);
        }
        refiner
    }

    /// Cumulative cross-shard similarity computations performed by this
    /// process (the boundary-pass share of the sharded engine's global
    /// comparison counter).
    pub(crate) fn cross_comparisons(&self) -> u64 {
        self.cross_comparisons
    }

    /// Cross-shard edges currently recovered into the refined view — exact
    /// across rounds (grows when a round introduces a cross-shard edge,
    /// shrinks when one endpoint is removed or re-keyed apart).
    pub(crate) fn cross_edges_recovered(&self) -> usize {
        self.cross_edge_count
    }

    /// The refined clustering.
    pub(crate) fn refined(&self) -> &Clustering {
        &self.refined
    }

    /// The object-to-shard ownership the refiner currently tracks (the
    /// sticky assignment durable replay re-routes batches from).
    pub(crate) fn shard_map(&self) -> BTreeMap<ObjectId, usize> {
        self.boundary.shard_map()
    }

    /// The report of the most recent refinement pass (the initial repair
    /// right after construction, then one per served round).
    pub(crate) fn last_report(&self) -> RefineReport {
        self.last_report
    }

    /// Compute the similarity of one cross-shard candidate pair and recover
    /// the edge if it reaches the graph threshold.
    fn compute_cross_pair(&mut self, a: ObjectId, b: ObjectId) {
        let ra = self.mirror.record(a).expect("live record");
        let rb = self.mirror.record(b).expect("live record");
        let sim = self.mirror.raw_similarity(ra, rb);
        self.cross_comparisons += 1;
        if sim >= self.mirror.edge_threshold() && sim > 0.0 {
            self.cross.entry(a).or_default().insert(b, sim);
            self.cross.entry(b).or_default().insert(a, sim);
            self.cross_edge_count += 1;
            self.mirror.install_edge(a, b, sim);
        }
    }

    /// Drop a record from the boundary index, the cross-edge cache, and the
    /// mirror.
    fn detach(&mut self, id: ObjectId) {
        self.boundary.remove(id);
        if let Some(nbrs) = self.cross.remove(&id) {
            self.cross_edge_count -= nbrs.len();
            for n in nbrs.keys() {
                if let Some(m) = self.cross.get_mut(n) {
                    m.remove(&id);
                    if m.is_empty() {
                        self.cross.remove(n);
                    }
                }
            }
        }
        self.mirror.remove_object(id);
    }

    /// (Re-)install one record into the derived layers: mirror record and
    /// blocking keys, edges to every mirror candidate, and the cross-edge
    /// cache.
    ///
    /// Edge weights are **reused** from the owning shard's (post-round)
    /// graph whenever that graph holds both endpoints with the records the
    /// mirror currently sees — the steady-state case, where the shard
    /// already paid for the computation.  Everything else — cross-shard
    /// pairs, neighbours whose record is mid-batch stale, objects the shard
    /// graph no longer holds, and all pairs during durable replay
    /// (`reuse = None`) — is computed against the mirror's *current*
    /// records, which is exactly what the unsharded engine computed at this
    /// position of the batch.  Reused and computed weights are bit-identical
    /// (same measure, same records), so the normal and replay paths build
    /// the same mirror down to the bit.
    fn attach(
        &mut self,
        id: ObjectId,
        shard: usize,
        record: &dc_types::Record,
        reuse: Option<&[&Engine]>,
    ) {
        // Candidates are queried before the record is indexed, matching
        // `SimilarityGraph::add_object` (the unsharded order).
        let candidates = self.mirror.candidate_ids(record);
        self.mirror.install_record(id, record.clone());
        let graph = reuse.map(|shards| shards[shard].graph());
        let id_in_shard = graph.is_some_and(|g| g.contains(id));
        for n in candidates {
            if n == id || !self.mirror.contains(n) {
                continue;
            }
            let n_shard = self
                .boundary
                .shard_of(n)
                .expect("mirror and boundary track the same records");
            if n_shard == shard {
                let fresh =
                    id_in_shard && graph.is_some_and(|g| g.record(n) == self.mirror.record(n));
                let sim = if fresh {
                    // The shard computed this pair; 0 means sub-threshold.
                    graph.expect("fresh implies a graph").similarity(id, n)
                } else {
                    let other = self.mirror.record(n).expect("live record");
                    self.mirror.raw_similarity(record, other)
                };
                if sim >= self.mirror.edge_threshold() && sim > 0.0 {
                    self.mirror.install_edge(id, n, sim);
                }
            } else {
                let other = self.mirror.record(n).expect("live record");
                let sim = self.mirror.raw_similarity(record, other);
                self.cross_comparisons += 1;
                if sim >= self.mirror.edge_threshold() && sim > 0.0 {
                    self.cross.entry(id).or_default().insert(n, sim);
                    self.cross.entry(n).or_default().insert(id, sim);
                    self.cross_edge_count += 1;
                    self.mirror.install_edge(id, n, sim);
                }
            }
        }
        self.boundary.insert(id, shard, record);
    }

    /// Fold one served round into the refined view, mimicking the unsharded
    /// engine's round loop: operations are applied **in their original
    /// order** to the mirror, the refined clustering, and the maintained
    /// aggregates (O(degree) each), then Algorithm 3 runs to a fixed point.
    /// Returns the round's [`RefineReport`].
    pub(crate) fn apply_round(
        &mut self,
        batch: &OperationBatch,
        op_shards: &[usize],
        shards: &[&Engine],
    ) -> RefineReport {
        self.apply_round_inner(batch, op_shards, shards, Some(shards))
    }

    /// [`CrossShardRefiner::apply_round`] for durable recovery replay: the
    /// per-shard graphs have already advanced past the replayed round, so
    /// no weight may be reused from them — every pair is recomputed against
    /// the mirror's records, which reproduces the original round's mirror
    /// bit-for-bit (see [`CrossShardRefiner::attach`]).
    pub(crate) fn replay_round(
        &mut self,
        batch: &OperationBatch,
        op_shards: &[usize],
        shards: &[&Engine],
    ) -> RefineReport {
        self.apply_round_inner(batch, op_shards, shards, None)
    }

    fn apply_round_inner(
        &mut self,
        batch: &OperationBatch,
        op_shards: &[usize],
        shards: &[&Engine],
        reuse: Option<&[&Engine]>,
    ) -> RefineReport {
        let comparisons_before = self.cross_comparisons;
        // §6.1 initial processing against the global view, fused with
        // aggregate maintenance — the mirror-backed analogue of
        // `ClusterAggregates::apply_batch`.
        for (op, &shard) in batch.iter().zip(op_shards) {
            match op {
                Operation::Add { id, record } => {
                    if let Some(cid) = self.refined.cluster_of(*id) {
                        // Re-add of a live object: edges are replaced but it
                        // keeps its cluster, exactly like initial processing.
                        self.agg.apply_remove(&self.mirror, &self.refined, *id, cid);
                        self.detach(*id);
                        self.attach(*id, shard, record, reuse);
                        self.agg.apply_add(&self.mirror, &self.refined, *id);
                    } else {
                        self.detach(*id);
                        self.attach(*id, shard, record, reuse);
                        self.refined
                            .create_cluster([*id])
                            .expect("fresh object enters as a singleton");
                        self.agg.apply_add(&self.mirror, &self.refined, *id);
                    }
                }
                Operation::Remove { id } => {
                    if let Some(cid) = self.refined.cluster_of(*id) {
                        self.agg.apply_remove(&self.mirror, &self.refined, *id, cid);
                        self.refined.remove_object(*id).expect("object present");
                    }
                    self.detach(*id);
                }
                Operation::Update { id, record } => {
                    if let Some(cid) = self.refined.cluster_of(*id) {
                        self.agg.apply_remove(&self.mirror, &self.refined, *id, cid);
                        self.refined.remove_object(*id).expect("object present");
                    }
                    self.detach(*id);
                    self.attach(*id, shard, record, reuse);
                    self.refined
                        .create_cluster([*id])
                        .expect("object just removed");
                    self.agg.apply_add(&self.mirror, &self.refined, *id);
                }
            }
        }
        let pairs_computed = (self.cross_comparisons - comparisons_before) as usize;
        let dynamicc = shards.first().expect("at least one shard").dynamicc();
        self.run_passes(dynamicc, pairs_computed)
    }

    /// §6.4: alternate the trained merge and split passes over the global
    /// view until a fixed point, then refresh the report.
    fn run_passes(&mut self, dynamicc: &DynamicC, pairs_computed: usize) -> RefineReport {
        let objective = dynamicc.objective().as_ref();
        let models = dynamicc.models();
        let config = dynamicc.config();
        let mut stats = DynamicCStats::default();
        for _ in 0..config.max_passes {
            let merged = merge_pass(
                &self.mirror,
                &mut self.refined,
                &mut self.agg,
                objective,
                models,
                config.theta_scale,
                &mut stats,
            );
            let split = split_pass(
                &self.mirror,
                &mut self.refined,
                &mut self.agg,
                objective,
                models,
                config.theta_scale,
                &mut stats,
            );
            if !merged && !split {
                break;
            }
        }
        let report = RefineReport {
            boundary_pairs_computed: pairs_computed,
            cross_edges_recovered: self.cross_edge_count,
            merges_applied: stats.merges_applied,
            merges_rejected: stats.merges_rejected,
            splits_applied: stats.splits_applied,
            splits_rejected: stats.splits_rejected,
            objective_evaluations: stats.objective_evaluations,
            clusters: self.refined.cluster_count(),
            score: objective.evaluate_with(&self.agg, &self.mirror, &self.refined),
        };
        self.last_report = report;
        report
    }

    // ------------------------------------------------------------------
    // Durability hooks (see `ShardedDurableEngine`)
    // ------------------------------------------------------------------

    /// Export the history-bearing refine state for a durable snapshot.  The
    /// mirror is included so replayed rounds see the exact global graph the
    /// never-restarted run saw (the per-shard graphs have already advanced
    /// past the snapshot round by the time recovery replays the tail).
    pub(crate) fn export_state(&self) -> RefineState {
        RefineState {
            mirror: self.mirror.export_state(),
            refined: self.refined.clone(),
            aggregates: self.agg.export_state(),
            assignment: self.boundary.shard_map(),
        }
    }

    /// Reassemble a refiner from a durable snapshot: the mirror, refined
    /// clustering, and aggregates are restored bit-exactly, and the boundary
    /// index and cross-edge cache are re-derived from the restored mirror.
    /// Cross-pair similarities are *looked up* in the mirror (whose edge
    /// weights are exact); only the counting is process-scoped — see the
    /// module docs.  `graph_config` is the same construction-time input the
    /// durable engine already threads to every shard, and
    /// `state.assignment` records each restored record's owning shard (the
    /// sticky routing history replays are re-routed from).
    pub(crate) fn import_state(
        router: &ShardRouter,
        graph_config: dc_similarity::GraphConfig,
        state: RefineState,
    ) -> Result<Self, CodecError> {
        let mirror = SimilarityGraph::import_state(graph_config, state.mirror)?;
        let agg = ClusterAggregates::import_state(state.aggregates)?;
        let assignment = state.assignment;
        let mut refiner = CrossShardRefiner {
            boundary: router.boundary_index(),
            cross: BTreeMap::new(),
            cross_edge_count: 0,
            cross_comparisons: 0,
            mirror,
            refined: state.refined,
            agg,
            last_report: RefineReport::default(),
        };
        // Re-derive the boundary index and the cross-edge cache from the
        // restored mirror.  Cross-pair similarities are *looked up* in the
        // mirror (whose edge weights are bit-exact), not recomputed — only
        // sub-threshold pairs (which the mirror does not store) cost a fresh
        // computation.
        for id in refiner.mirror.object_ids() {
            let shard = assignment.get(&id).copied().ok_or_else(|| {
                CodecError::Invalid(format!("restored mirror object {id} is owned by no shard"))
            })?;
            let record = refiner.mirror.record(id).expect("live object").clone();
            refiner.boundary.insert(id, shard, &record);
        }
        if assignment.len() != refiner.mirror.object_count() {
            return Err(CodecError::Invalid(
                "restored assignment names objects absent from the mirror".into(),
            ));
        }
        let mut pairs: BTreeSet<(ObjectId, ObjectId)> = BTreeSet::new();
        for id in refiner.mirror.object_ids() {
            for cand in refiner.boundary.cross_shard_candidates(id) {
                pairs.insert((id.min(cand), id.max(cand)));
            }
        }
        for (a, b) in pairs {
            let sim = refiner.mirror.similarity(a, b);
            refiner.cross_comparisons += 1;
            if sim > 0.0 {
                refiner.cross.entry(a).or_default().insert(b, sim);
                refiner.cross.entry(b).or_default().insert(a, sim);
                refiner.cross_edge_count += 1;
            }
        }
        Ok(refiner)
    }
}

/// The history-bearing refine state a durable snapshot carries.
pub(crate) struct RefineState {
    pub(crate) mirror: GraphState,
    pub(crate) refined: Clustering,
    pub(crate) aggregates: AggregatesState,
    /// Object-to-shard ownership at the snapshot round: sticky routing is
    /// history-dependent, so replayed batches must be re-routed from the
    /// exact assignment the original run held.
    pub(crate) assignment: BTreeMap<ObjectId, usize>,
}

impl BinCodec for RefineState {
    fn encode(&self, w: &mut ByteWriter) {
        self.mirror.encode(w);
        self.refined.encode(w);
        self.aggregates.encode(w);
        w.put_usize(self.assignment.len());
        for (id, shard) in &self.assignment {
            id.encode(w);
            w.put_usize(*shard);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mirror = GraphState::decode(r)?;
        let refined = Clustering::decode(r)?;
        let aggregates = AggregatesState::decode(r)?;
        let count = r.get_length_prefix(16)?;
        let mut assignment = BTreeMap::new();
        for _ in 0..count {
            let id = ObjectId::decode(r)?;
            let shard = r.get_usize()?;
            if assignment.insert(id, shard).is_some() {
                return Err(CodecError::Invalid(format!(
                    "object {id} assigned to more than one shard"
                )));
            }
        }
        Ok(RefineState {
            mirror,
            refined,
            aggregates,
            assignment,
        })
    }
}

impl std::fmt::Debug for CrossShardRefiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrossShardRefiner")
            .field("records", &self.mirror.object_count())
            .field("cross_edges_recovered", &self.cross_edge_count)
            .field("cross_comparisons", &self.cross_comparisons)
            .field("refined_clusters", &self.refined.cluster_count())
            .finish()
    }
}
