//! Configuration and runtime statistics of DynamicC.

use dc_evolution::SamplerConfig;
use dc_ml::ModelKind;

/// Configuration of a [`DynamicC`](crate::DynamicC) instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicCConfig {
    /// Which classifier family to use for both the merge and split models
    /// (logistic regression by default, as in the paper).
    pub model_kind: ModelKind,
    /// Capacity of each training buffer; the oldest examples age out first
    /// (§5.3: "we remove those old samples when the size of training data
    /// becomes too large").
    pub buffer_capacity: usize,
    /// Negative-sampling configuration (active/inactive weights, §5.3).
    pub sampler: SamplerConfig,
    /// Multiplier applied to the recall-first threshold θ when serving.
    /// Values below 1 trade extra verification work for even higher recall
    /// (the Figure 4 trade-off); 1.0 uses θ as selected.
    pub theta_scale: f64,
    /// Maximum number of merge+split passes per re-clustering call
    /// (Algorithm 3 terminates on its own; this is a safety valve).
    pub max_passes: usize,
    /// Retrain the models automatically after this many observed rounds
    /// (0 disables automatic retraining; callers can still retrain manually).
    pub retrain_every_rounds: usize,
}

impl Default for DynamicCConfig {
    fn default() -> Self {
        DynamicCConfig {
            model_kind: ModelKind::LogisticRegression,
            buffer_capacity: 20_000,
            sampler: SamplerConfig::default(),
            theta_scale: 1.0,
            max_passes: 32,
            retrain_every_rounds: 1,
        }
    }
}

/// Counters describing what DynamicC did while serving; used by the
/// experiment harness to report verification overhead and prediction
/// behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicCStats {
    /// Rounds observed for training.
    pub observed_rounds: usize,
    /// Number of times the models were (re)fitted.
    pub retrain_count: usize,
    /// Clusters flagged as merge candidates by the merge model.
    pub merge_candidates: usize,
    /// Merges actually applied (objective-verified).
    pub merges_applied: usize,
    /// Merge proposals rejected by the objective check.
    pub merges_rejected: usize,
    /// Clusters flagged as split candidates by the split model.
    pub split_candidates: usize,
    /// Splits actually applied (objective-verified).
    pub splits_applied: usize,
    /// Split proposals rejected by the objective check.
    pub splits_rejected: usize,
    /// Objective (delta) evaluations performed during verification.
    pub objective_evaluations: u64,
}

impl DynamicCStats {
    /// Fraction of merge proposals that survived verification (1.0 when no
    /// proposal was made).
    pub fn merge_acceptance_rate(&self) -> f64 {
        let total = self.merges_applied + self.merges_rejected;
        if total == 0 {
            1.0
        } else {
            self.merges_applied as f64 / total as f64
        }
    }

    /// Fraction of split proposals that survived verification.
    pub fn split_acceptance_rate(&self) -> f64 {
        let total = self.splits_applied + self.splits_rejected;
        if total == 0 {
            1.0
        } else {
            self.splits_applied as f64 / total as f64
        }
    }

    /// Total structural changes applied.
    pub fn changes_applied(&self) -> usize {
        self.merges_applied + self.splits_applied
    }

    /// Fold another instance's counters into this one, field by field.
    pub fn accumulate(&mut self, other: &DynamicCStats) {
        self.observed_rounds += other.observed_rounds;
        self.retrain_count += other.retrain_count;
        self.merge_candidates += other.merge_candidates;
        self.merges_applied += other.merges_applied;
        self.merges_rejected += other.merges_rejected;
        self.split_candidates += other.split_candidates;
        self.splits_applied += other.splits_applied;
        self.splits_rejected += other.splits_rejected;
        self.objective_evaluations += other.objective_evaluations;
    }

    /// The field-wise sum of a collection of per-shard statistics — the
    /// global view a sharded engine reports.  Summing a single instance
    /// returns it unchanged, which is what keeps a one-shard engine's
    /// merged stats identical to an unsharded engine's.
    pub fn merged<I: IntoIterator<Item = DynamicCStats>>(stats: I) -> DynamicCStats {
        let mut out = DynamicCStats::default();
        for s in stats {
            out.accumulate(&s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_the_paper() {
        let c = DynamicCConfig::default();
        assert_eq!(c.model_kind, ModelKind::LogisticRegression);
        assert!((c.sampler.active_weight - 0.7).abs() < 1e-12);
        assert!((c.sampler.inactive_weight - 0.3).abs() < 1e-12);
        assert_eq!(c.theta_scale, 1.0);
        assert!(c.max_passes > 0);
    }

    #[test]
    fn merged_stats_are_the_field_wise_sum() {
        let a = DynamicCStats {
            observed_rounds: 1,
            merges_applied: 2,
            objective_evaluations: 10,
            ..DynamicCStats::default()
        };
        let b = DynamicCStats {
            splits_applied: 3,
            objective_evaluations: 5,
            ..DynamicCStats::default()
        };
        let m = DynamicCStats::merged([a, b]);
        assert_eq!(m.observed_rounds, 1);
        assert_eq!(m.merges_applied, 2);
        assert_eq!(m.splits_applied, 3);
        assert_eq!(m.objective_evaluations, 15);
        // Summing one instance is the identity.
        assert_eq!(DynamicCStats::merged([a]), a);
        assert_eq!(DynamicCStats::merged([]), DynamicCStats::default());
    }

    #[test]
    fn stats_rates() {
        let mut s = DynamicCStats::default();
        assert_eq!(s.merge_acceptance_rate(), 1.0);
        s.merges_applied = 3;
        s.merges_rejected = 1;
        s.splits_applied = 1;
        s.splits_rejected = 3;
        assert!((s.merge_acceptance_rate() - 0.75).abs() < 1e-12);
        assert!((s.split_acceptance_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.changes_applied(), 4);
    }
}
