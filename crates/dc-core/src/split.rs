//! The split algorithm (Algorithm 2, §6.3).
//!
//! For every cluster the split model flags, members are ranked by how
//! *different* they are from the rest of the cluster (the split weight of
//! §6.3 — one minus the average similarity to the other members), and the
//! algorithm walks down that ranking looking for the first object whose
//! isolation improves the objective.  Only one object is split out per
//! cluster per pass: the paper argues this is enough because later rounds
//! (and later passes of Algorithm 3) can keep splitting, and most real
//! splits shed a small, poorly attached fragment.

use crate::config::DynamicCStats;
use crate::dirty::PassScope;
use crate::models::ModelPair;
use dc_evolution::split_features;
use dc_objective::{improves, ObjectiveFunction};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;

/// One pass of the split algorithm.  Returns `true` when at least one split
/// was applied.
///
/// `agg` is the round's maintained aggregate: candidate features are read
/// from it and every applied split is folded back in via
/// [`ClusterAggregates::apply_split`].  This also removes the historical
/// duplicate build (one aggregate per candidate ranking, discarded and
/// rebuilt per candidate even when the clustering had not changed): the pass
/// performs **zero** full aggregate builds.
pub(crate) fn split_pass(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
) -> bool {
    split_pass_impl(
        graph,
        clustering,
        agg,
        objective,
        models,
        theta_scale,
        stats,
        None,
        None,
    )
}

/// The candidate-restricted entry point of the split pass, used by the
/// incremental cross-shard refiner.  Flags come from the scope's cache
/// (identical values to what the full pass computes); flagged clusters
/// outside the evaluation set are skipped without evaluation — their split
/// rejection from the previous fixed point still stands.  Applied splits
/// grow the evaluation set through [`PassScope::after_split`].  The
/// unsharded serving path never calls this.
///
/// `global_score` mirrors [`crate::merge::merge_pass_scoped`]: the running
/// score of a global-mean objective, gating clean skips on the recorded
/// split-rejection ceilings and kept current across applied splits.
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_pass_scoped(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
    scope: &mut PassScope,
    global_score: Option<&mut f64>,
) -> bool {
    split_pass_impl(
        graph,
        clustering,
        agg,
        objective,
        models,
        theta_scale,
        stats,
        Some(scope),
        global_score,
    )
}

#[allow(clippy::too_many_arguments)]
fn split_pass_impl(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
    mut scope: Option<&mut PassScope>,
    mut global_score: Option<&mut f64>,
) -> bool {
    // Line 2 of Algorithm 2: clusters the split model flags (singletons can
    // never split, so they are skipped outright).
    let mut candidates: Vec<ClusterId> = Vec::new();
    for cid in clustering.cluster_ids() {
        if clustering.cluster_size(cid) < 2 {
            continue;
        }
        let flagged = match scope.as_mut() {
            Some(s) => s.split_flag(cid, agg, models, theta_scale),
            None => models.predicts_split(&split_features(agg, cid), theta_scale),
        };
        if flagged {
            candidates.push(cid);
        }
    }
    stats.split_candidates += candidates.len();

    let mut changed = false;
    for cid in candidates {
        if !clustering.contains_cluster(cid) || clustering.cluster_size(cid) < 2 {
            continue;
        }
        if let Some(s) = scope.as_ref() {
            let current_score = global_score.as_deref().copied();
            if !s.in_eval(cid) && s.split_rejection_holds(cid, current_score) {
                // Clean candidate: the previous fixed point already rejected
                // every split of this cluster, nothing it reads changed, and
                // (for global-mean objectives) the running score is still
                // inside the proof's validity interval.  A clean candidate
                // whose ceiling the score has drifted past falls through and
                // is evaluated in place, like the full pass would.
                continue;
            }
        }
        // Step 1: rank members by decreasing split weight (most different
        // first) — a per-object edge walk, no aggregate rebuild.
        let ranked = ClusterAggregates::members_by_split_weight(graph, clustering, cid);
        // Steps 2–3: find the first member whose isolation improves the
        // objective and split it out.
        let mut applied = false;
        let mut min_rejected_delta = f64::INFINITY;
        for (oid, _weight) in ranked {
            let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
            stats.objective_evaluations += 1;
            let delta = objective.split_delta_with(agg, graph, clustering, cid, &part);
            if improves(delta) {
                let (part_id, rest_id) = clustering
                    .split(cid, &part)
                    .expect("candidate member of a live cluster");
                agg.apply_split(graph, clustering, cid, part_id, rest_id);
                if let Some(s) = scope.as_mut() {
                    s.after_split(cid, part_id, rest_id, agg);
                }
                if let Some(score) = global_score.as_deref_mut() {
                    *score += delta;
                }
                stats.splits_applied += 1;
                changed = true;
                applied = true;
                break;
            } else {
                stats.splits_rejected += 1;
                min_rejected_delta = min_rejected_delta.min(delta);
            }
        }
        if !applied {
            // Every member's isolation was rejected: for a global-mean
            // objective, record the score ceiling under which the tightest
            // of those rejections provably still holds.
            if let (Some(s), Some(score)) = (scope.as_mut(), global_score.as_deref().copied()) {
                if min_rejected_delta.is_finite() {
                    let ceil = objective.split_rejection_score_ceil(
                        min_rejected_delta,
                        score,
                        clustering.cluster_count(),
                    );
                    s.record_split_rejection(cid, ceil);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPair;
    use dc_ml::ModelKind;
    use dc_objective::CorrelationObjective;
    use dc_similarity::fixtures::graph_from_edges;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// An untrained model pair flags every cluster (probability 0.5 at the
    /// default θ of 0.5), which lets the tests focus on the heuristic and
    /// the verification.
    fn permissive_models() -> ModelPair {
        ModelPair::new(ModelKind::LogisticRegression, 10)
    }

    #[test]
    fn the_least_cohesive_member_is_split_out() {
        // Cluster {1,2,3,4}: 1–3 mutually similar, 4 attached by a single
        // weak edge; splitting 4 improves the correlation objective.
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9), (3, 4, 0.1)]);
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(changed);
        assert_eq!(clustering.cluster_count(), 2);
        assert!(clustering
            .cluster(clustering.cluster_of(oid(4)).unwrap())
            .unwrap()
            .is_singleton());
        assert_eq!(clustering.cluster_of(oid(1)), clustering.cluster_of(oid(3)));
        assert!(stats.splits_applied == 1);
        clustering.check_invariants().unwrap();
    }

    #[test]
    fn cohesive_clusters_are_not_split() {
        let graph = graph_from_edges(3, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9)]);
        let mut clustering = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(!changed);
        assert_eq!(clustering.cluster_count(), 1);
        assert!(stats.splits_rejected >= 1);
        assert_eq!(stats.splits_applied, 0);
    }

    #[test]
    fn singletons_are_never_candidates() {
        let graph = graph_from_edges(2, &[]);
        let mut clustering = Clustering::singletons((1..=2).map(oid));
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(!changed);
        assert_eq!(stats.split_candidates, 0);
    }

    #[test]
    fn split_pass_performs_no_full_aggregate_builds() {
        // Regression for the historical duplicate rebuild: the pass used to
        // build one aggregate for candidate collection and another one per
        // candidate ranking.  With the maintained aggregate threaded in, a
        // whole pass must not trigger a single full build.
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9), (3, 4, 0.1)]);
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let (changed, builds) = dc_similarity::BuildCounter::scope(|| {
            split_pass(
                &graph,
                &mut clustering,
                &mut agg,
                &CorrelationObjective,
                &models,
                1.0,
                &mut stats,
            )
        });
        assert!(changed);
        assert_eq!(builds, 0, "split_pass must stay on the incremental path");
    }

    #[test]
    fn only_one_object_is_split_per_cluster_per_pass() {
        // Cluster {1,2,3,4}: 1–2 similar, 3 and 4 both unrelated stragglers.
        // A single pass sheds exactly one of them; a second pass sheds the
        // other (Algorithm 3 provides that outer loop).
        let graph = graph_from_edges(4, &[(1, 2, 0.9)]);
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert_eq!(clustering.cluster_count(), 2);
        split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert_eq!(clustering.cluster_count(), 3);
        assert_eq!(clustering.cluster_of(oid(1)), clustering.cluster_of(oid(2)));
    }
}
