//! The split algorithm (Algorithm 2, §6.3).
//!
//! For every cluster the split model flags, members are ranked by how
//! *different* they are from the rest of the cluster (the split weight of
//! §6.3 — one minus the average similarity to the other members), and the
//! algorithm walks down that ranking looking for the first object whose
//! isolation improves the objective.  Only one object is split out per
//! cluster per pass: the paper argues this is enough because later rounds
//! (and later passes of Algorithm 3) can keep splitting, and most real
//! splits shed a small, poorly attached fragment.

use crate::config::DynamicCStats;
use crate::models::ModelPair;
use dc_evolution::split_features;
use dc_objective::{improves, ObjectiveFunction};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;

/// One pass of the split algorithm.  Returns `true` when at least one split
/// was applied.
///
/// `agg` is the round's maintained aggregate: candidate features are read
/// from it and every applied split is folded back in via
/// [`ClusterAggregates::apply_split`].  This also removes the historical
/// duplicate build (one aggregate per candidate ranking, discarded and
/// rebuilt per candidate even when the clustering had not changed): the pass
/// performs **zero** full aggregate builds.
pub(crate) fn split_pass(
    graph: &SimilarityGraph,
    clustering: &mut Clustering,
    agg: &mut ClusterAggregates,
    objective: &dyn ObjectiveFunction,
    models: &ModelPair,
    theta_scale: f64,
    stats: &mut DynamicCStats,
) -> bool {
    // Line 2 of Algorithm 2: clusters the split model flags (singletons can
    // never split, so they are skipped outright).
    let mut candidates: Vec<ClusterId> = Vec::new();
    for cid in clustering.cluster_ids() {
        if clustering.cluster_size(cid) < 2 {
            continue;
        }
        let features = split_features(agg, cid);
        if models.predicts_split(&features, theta_scale) {
            candidates.push(cid);
        }
    }
    stats.split_candidates += candidates.len();

    let mut changed = false;
    for cid in candidates {
        if !clustering.contains_cluster(cid) || clustering.cluster_size(cid) < 2 {
            continue;
        }
        // Step 1: rank members by decreasing split weight (most different
        // first) — a per-object edge walk, no aggregate rebuild.
        let ranked = ClusterAggregates::members_by_split_weight(graph, clustering, cid);
        // Steps 2–3: find the first member whose isolation improves the
        // objective and split it out.
        for (oid, _weight) in ranked {
            let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
            stats.objective_evaluations += 1;
            let delta = objective.split_delta_with(agg, graph, clustering, cid, &part);
            if improves(delta) {
                let (part_id, rest_id) = clustering
                    .split(cid, &part)
                    .expect("candidate member of a live cluster");
                agg.apply_split(graph, clustering, cid, part_id, rest_id);
                stats.splits_applied += 1;
                changed = true;
                break;
            } else {
                stats.splits_rejected += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelPair;
    use dc_ml::ModelKind;
    use dc_objective::CorrelationObjective;
    use dc_similarity::fixtures::graph_from_edges;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// An untrained model pair flags every cluster (probability 0.5 at the
    /// default θ of 0.5), which lets the tests focus on the heuristic and
    /// the verification.
    fn permissive_models() -> ModelPair {
        ModelPair::new(ModelKind::LogisticRegression, 10)
    }

    #[test]
    fn the_least_cohesive_member_is_split_out() {
        // Cluster {1,2,3,4}: 1–3 mutually similar, 4 attached by a single
        // weak edge; splitting 4 improves the correlation objective.
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9), (3, 4, 0.1)]);
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(changed);
        assert_eq!(clustering.cluster_count(), 2);
        assert!(clustering
            .cluster(clustering.cluster_of(oid(4)).unwrap())
            .unwrap()
            .is_singleton());
        assert_eq!(clustering.cluster_of(oid(1)), clustering.cluster_of(oid(3)));
        assert!(stats.splits_applied == 1);
        clustering.check_invariants().unwrap();
    }

    #[test]
    fn cohesive_clusters_are_not_split() {
        let graph = graph_from_edges(3, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9)]);
        let mut clustering = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(!changed);
        assert_eq!(clustering.cluster_count(), 1);
        assert!(stats.splits_rejected >= 1);
        assert_eq!(stats.splits_applied, 0);
    }

    #[test]
    fn singletons_are_never_candidates() {
        let graph = graph_from_edges(2, &[]);
        let mut clustering = Clustering::singletons((1..=2).map(oid));
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let changed = split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert!(!changed);
        assert_eq!(stats.split_candidates, 0);
    }

    #[test]
    fn split_pass_performs_no_full_aggregate_builds() {
        // Regression for the historical duplicate rebuild: the pass used to
        // build one aggregate for candidate collection and another one per
        // candidate ranking.  With the maintained aggregate threaded in, a
        // whole pass must not trigger a single full build.
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (1, 3, 0.9), (2, 3, 0.9), (3, 4, 0.1)]);
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        let (changed, builds) = dc_similarity::BuildCounter::scope(|| {
            split_pass(
                &graph,
                &mut clustering,
                &mut agg,
                &CorrelationObjective,
                &models,
                1.0,
                &mut stats,
            )
        });
        assert!(changed);
        assert_eq!(builds, 0, "split_pass must stay on the incremental path");
    }

    #[test]
    fn only_one_object_is_split_per_cluster_per_pass() {
        // Cluster {1,2,3,4}: 1–2 similar, 3 and 4 both unrelated stragglers.
        // A single pass sheds exactly one of them; a second pass sheds the
        // other (Algorithm 3 provides that outer loop).
        let graph = graph_from_edges(4, &[(1, 2, 0.9)]);
        let mut clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let models = permissive_models();
        let mut stats = DynamicCStats::default();
        let mut agg = ClusterAggregates::new(&graph, &clustering);
        split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert_eq!(clustering.cluster_count(), 2);
        split_pass(
            &graph,
            &mut clustering,
            &mut agg,
            &CorrelationObjective,
            &models,
            1.0,
            &mut stats,
        );
        assert_eq!(clustering.cluster_count(), 3);
        assert_eq!(clustering.cluster_of(oid(1)), clustering.cluster_of(oid(2)));
    }
}
