//! The persistent serving engine: graph + clustering + aggregates owned
//! across rounds.
//!
//! [`DynamicC::recluster`](crate::DynamicC) is stateless between rounds: the
//! caller owns the graph and the previous clustering, and every call pays one
//! full O(E) [`ClusterAggregates`] build before the merge/split passes run.
//! The [`Engine`] removes that last rebuild by owning all three pieces of
//! state and folding each round's operations into them incrementally:
//!
//! 1. [`Engine::apply_round`] applies the batch to the graph, the clustering,
//!    and the aggregates in lockstep (O(degree) per operation — the §6.1
//!    initial-processing step, fused with aggregate maintenance);
//! 2. Algorithm 3 then runs against the maintained aggregate, folding every
//!    applied merge and split back into it.
//!
//! In steady state a round therefore performs **zero** full aggregate
//! builds, which is the API shape the sharding/async roadmap items build on:
//! a shard is an `Engine`, and a round is one `apply_round` call.
//!
//! The invariant the engine maintains (checked by the equivalence tests):
//! after every `apply_round`, `(graph, clustering, aggregates)` are mutually
//! consistent, and the produced clustering is exactly what
//! `DynamicC::recluster` would have produced from the same inputs.

use crate::config::DynamicCStats;
use crate::dynamic::DynamicC;
use dc_similarity::{full_build_count, ClusterAggregates, SimilarityGraph};
use dc_types::{Clustering, OperationBatch};

/// A persistent serving engine owning the similarity graph, the current
/// clustering, the maintained aggregates, and the DynamicC instance.
pub struct Engine {
    graph: SimilarityGraph,
    clustering: Clustering,
    aggregates: ClusterAggregates,
    dynamicc: DynamicC,
    rounds_served: usize,
}

/// What one [`Engine::apply_round`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundReport {
    /// 1-based index of the round within this engine's lifetime.
    pub round: usize,
    /// Number of operations in the round's batch.
    pub operations: usize,
    /// Objects isolated into fresh singleton clusters by initial processing.
    pub isolated: usize,
    /// Live objects after the round.
    pub objects: usize,
    /// Live clusters after the round.
    pub clusters: usize,
    /// Merges applied by Algorithm 1 during this round.
    pub merges_applied: usize,
    /// Splits applied by Algorithm 2 during this round.
    pub splits_applied: usize,
    /// Objective delta evaluations performed during verification.
    pub objective_evaluations: u64,
    /// Full O(E) aggregate builds triggered by this round (0 in steady
    /// state — the whole point of the engine).
    pub full_aggregate_builds: u64,
    /// Objective score of the clustering after the round (lower is better),
    /// read off the maintained aggregates.
    pub score: f64,
}

impl Engine {
    /// Create an engine over an already-populated graph and clustering
    /// (typically the output of the batch algorithm on the initial data) and
    /// a trained [`DynamicC`].  Performs the one-off full aggregate build.
    pub fn new(graph: SimilarityGraph, clustering: Clustering, dynamicc: DynamicC) -> Self {
        let aggregates = ClusterAggregates::new(&graph, &clustering);
        Engine {
            graph,
            clustering,
            aggregates,
            dynamicc,
            rounds_served: 0,
        }
    }

    /// Reassemble an engine from recovered state — the constructor used by
    /// [`DurableEngine`](crate::DurableEngine) after loading a snapshot.
    ///
    /// Unlike [`Engine::new`], **no** full aggregate build is performed: the
    /// caller vouches that `aggregates` describes `(graph, clustering)`
    /// exactly (the durability layer restores it bit-for-bit from the
    /// snapshot, which is what keeps a recovered engine's decisions
    /// identical to an uninterrupted one's).
    pub fn from_parts(
        graph: SimilarityGraph,
        clustering: Clustering,
        aggregates: ClusterAggregates,
        dynamicc: DynamicC,
        rounds_served: usize,
    ) -> Self {
        Engine {
            graph,
            clustering,
            aggregates,
            dynamicc,
            rounds_served,
        }
    }

    /// The owned similarity graph.
    pub fn graph(&self) -> &SimilarityGraph {
        &self.graph
    }

    /// The current clustering.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The maintained aggregates.
    pub fn aggregates(&self) -> &ClusterAggregates {
        &self.aggregates
    }

    /// The owned DynamicC instance.
    pub fn dynamicc(&self) -> &DynamicC {
        &self.dynamicc
    }

    /// Mutable access to the owned DynamicC (e.g. to retrain between
    /// rounds).
    pub fn dynamicc_mut(&mut self) -> &mut DynamicC {
        &mut self.dynamicc
    }

    /// Cumulative DynamicC statistics.
    pub fn stats(&self) -> &DynamicCStats {
        self.dynamicc.stats()
    }

    /// Rounds served so far.
    pub fn rounds_served(&self) -> usize {
        self.rounds_served
    }

    /// Serve one round: apply the batch to graph, clustering, and aggregates
    /// in lockstep (O(degree) per operation), then run Algorithm 3 against
    /// the maintained aggregate.  No full aggregate build is performed.
    pub fn apply_round(&mut self, batch: &OperationBatch) -> RoundReport {
        let reg = dc_telemetry::registry();
        let span = reg.span("engine.apply_round");
        let stats_before = *self.dynamicc.stats();
        let builds_before = full_build_count();

        // §6.1 initial processing, fused with aggregate maintenance.
        let isolated = self
            .aggregates
            .apply_batch(&mut self.graph, &mut self.clustering, batch);
        // §6.4 full algorithm against the maintained aggregate.
        self.dynamicc
            .run_full_algorithm(&self.graph, &mut self.clustering, &mut self.aggregates);

        self.rounds_served += 1;
        // Score before reading the build counter: an objective without an
        // `evaluate_with` override falls back to a full evaluation, and that
        // hidden build must show up in the report rather than vanish.
        let score = self.dynamicc.objective().evaluate_with(
            &self.aggregates,
            &self.graph,
            &self.clustering,
        );
        let stats = self.dynamicc.stats();
        let report = RoundReport {
            round: self.rounds_served,
            operations: batch.len(),
            isolated: isolated.len(),
            objects: self.clustering.object_count(),
            clusters: self.clustering.cluster_count(),
            merges_applied: stats.merges_applied - stats_before.merges_applied,
            splits_applied: stats.splits_applied - stats_before.splits_applied,
            objective_evaluations: stats.objective_evaluations - stats_before.objective_evaluations,
            full_aggregate_builds: full_build_count() - builds_before,
            score,
        };
        span.finish();
        reg.add("engine.rounds", 1);
        reg.add("engine.operations", report.operations as u64);
        reg.add("engine.merges_applied", report.merges_applied as u64);
        reg.add("engine.splits_applied", report.splits_applied as u64);
        report
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("objects", &self.clustering.object_count())
            .field("clusters", &self.clustering.cluster_count())
            .field("rounds_served", &self.rounds_served)
            .field("dynamicc", &self.dynamicc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_objective::CorrelationObjective;
    use dc_similarity::fixtures::{fixture_record, graph_from_edges};
    use dc_types::{ObjectId, Operation};
    use std::sync::Arc;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn rounds_run_without_full_aggregate_builds() {
        // Seed: objects 1..=2 already clustered together; 3 and 4 arrive,
        // each a duplicate of the existing entity or of each other.
        let graph = graph_from_edges(2, &[(1, 2, 0.9)]);
        let clustering = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        let mut engine = Engine::new(graph, clustering, dynamicc);

        // The fixture graph's edge-table measure only knows edges listed at
        // build time, so new objects arrive isolated — which is fine: the
        // round must still process them and keep all three states in sync.
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(3),
            record: fixture_record(3),
        });
        batch.push(Operation::Add {
            id: oid(4),
            record: fixture_record(4),
        });
        let report = engine.apply_round(&batch);
        assert_eq!(report.round, 1);
        assert_eq!(report.operations, 2);
        assert_eq!(report.isolated, 2);
        assert_eq!(report.objects, 4);
        assert_eq!(
            report.full_aggregate_builds, 0,
            "the engine round loop must not rebuild aggregates"
        );
        engine.clustering().check_invariants().unwrap();
        assert_eq!(engine.rounds_served(), 1);

        // A removal round keeps the state consistent too.
        let mut batch2 = OperationBatch::new();
        batch2.push(Operation::Remove { id: oid(4) });
        let report2 = engine.apply_round(&batch2);
        assert_eq!(report2.objects, 3);
        assert_eq!(report2.full_aggregate_builds, 0);
        assert!(!engine.graph().contains(oid(4)));
        assert!(!engine.clustering().contains_object(oid(4)));
    }

    #[test]
    fn debug_exposes_round_state() {
        let graph = graph_from_edges(2, &[(1, 2, 0.9)]);
        let clustering = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        let engine = Engine::new(graph, clustering, dynamicc);
        let s = format!("{engine:?}");
        assert!(s.contains("rounds_served"));
        assert_eq!(engine.stats().observed_rounds, 0);
    }
}
