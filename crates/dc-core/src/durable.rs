//! Durable serving: the [`DurableEngine`] wrapper around [`Engine`].
//!
//! The in-memory [`Engine`] loses everything on restart and would need a
//! full replay from the original dataset.  `DurableEngine` fixes that with
//! the classic write-ahead-logging recipe, specialized to the paper's §6
//! serving model (a round = one operation batch + re-clustering):
//!
//! * **log-then-apply** — [`DurableEngine::apply_round`] durably appends the
//!   round's batch to the WAL *before* touching the engine, so a crash at
//!   any point leaves either an unacknowledged torn tail (dropped on
//!   recovery) or a logged round that recovery re-applies;
//! * **checkpoint** — [`DurableEngine::checkpoint`] atomically snapshots the
//!   materialized engine state (graph, clustering, aggregates, counters),
//!   rotates the WAL to a fresh segment, and prunes everything the snapshot
//!   made obsolete;
//! * **recover** — [`DurableEngine::open`] loads the latest snapshot and
//!   replays only the WAL tail, reaching the pre-crash serving state
//!   without re-serving a single checkpointed round and without a single
//!   O(E) aggregate rebuild.  (The trained models and graph config are
//!   reconstructed by the caller either way — see below.)
//!
//! ## The equivalence invariant
//!
//! A recovered engine is *bit-identical* to a never-restarted one: same
//! clusterings (down to cluster ids), same [`DynamicCStats`], same future
//! decisions.  Three design choices carry that invariant, each checked by
//! `tests/durable_recovery.rs`:
//!
//! 1. the snapshot stores the aggregates' exact `f64` bits (a rebuild would
//!    re-derive them in a different addition order and could flip an exact
//!    tie in a later merge/split verification);
//! 2. the clustering snapshot includes the cluster-id watermark, so the
//!    first structural change after recovery allocates the same id the
//!    uninterrupted run would have;
//! 3. the snapshot stores the [`DynamicCStats`] at checkpoint time, and
//!    replayed rounds accumulate their deltas on top.
//!
//! What is *not* persisted: the graph configuration (boxed measure/blocking
//! trait objects) and the trained [`DynamicC`] models.  Both are supplied by
//! the caller at [`DurableEngine::open`] — they are construction-time inputs
//! (config and deterministic training), not state that evolves while
//! serving; the engine's serving path only reads the models.

use crate::config::DynamicCStats;
use crate::dynamic::DynamicC;
use crate::engine::{Engine, RoundReport};
use dc_similarity::{AggregatesState, ClusterAggregates, GraphConfig, GraphState, SimilarityGraph};
use dc_storage::wal::list_segments;
use dc_storage::{Snapshotter, StorageError, Wal};
use dc_types::codec::{BinCodec, ByteReader, ByteWriter, CodecError};
use dc_types::{Clustering, OperationBatch};
use std::path::{Path, PathBuf};

/// Durability policy for a [`DurableEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Checkpoint automatically after this many served rounds (0 disables
    /// automatic checkpoints; [`DurableEngine::checkpoint`] is always
    /// available).  Smaller values bound recovery replay at the cost of
    /// snapshot writes.
    pub checkpoint_every_rounds: usize,
    /// Group-commit the per-shard WAL appends of a sharded round: stage every
    /// shard's frame without fsyncing and make the round durable with a
    /// single fsync of the shared group (refine) WAL, cutting a round's fsync
    /// cost from N+1 to 1 at N shards.  The commit rule is unchanged — a
    /// round is acknowledged only once every WAL holds it durably (the group
    /// fsync is ordered after all staged writes); recovery heals shard WALs
    /// that lost their unsynced tail by replaying from the group WAL.
    ///
    /// Only the sharded engine reads this flag (a single [`DurableEngine`]
    /// already pays exactly one fsync per round); it is the default for the
    /// pipelined front-end (`dc_core::pipeline`).
    pub group_commit: bool,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            checkpoint_every_rounds: 8,
            group_commit: false,
        }
    }
}

/// What [`DurableEngine::open`] did to reach a servable state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether existing durable state was recovered (vs a fresh
    /// initialization from the bootstrap closure).
    pub recovered: bool,
    /// Round of the snapshot that seeded the state (0 for fresh opens —
    /// the initial checkpoint).
    pub snapshot_round: u64,
    /// WAL rounds replayed on top of the snapshot.
    pub replayed_rounds: usize,
    /// Whether a torn WAL tail (an append interrupted by the crash) was
    /// dropped during recovery.
    pub dropped_torn_tail: bool,
}

impl BinCodec for DynamicCStats {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.observed_rounds);
        w.put_usize(self.retrain_count);
        w.put_usize(self.merge_candidates);
        w.put_usize(self.merges_applied);
        w.put_usize(self.merges_rejected);
        w.put_usize(self.split_candidates);
        w.put_usize(self.splits_applied);
        w.put_usize(self.splits_rejected);
        w.put_u64(self.objective_evaluations);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(DynamicCStats {
            observed_rounds: r.get_usize()?,
            retrain_count: r.get_usize()?,
            merge_candidates: r.get_usize()?,
            merges_applied: r.get_usize()?,
            merges_rejected: r.get_usize()?,
            split_candidates: r.get_usize()?,
            splits_applied: r.get_usize()?,
            splits_rejected: r.get_usize()?,
            objective_evaluations: r.get_u64()?,
        })
    }
}

/// The snapshot payload: everything a restart needs that is not supplied by
/// the caller at open time.
struct EngineSnapshot {
    rounds_served: u64,
    graph: GraphState,
    clustering: Clustering,
    aggregates: AggregatesState,
    stats: DynamicCStats,
}

impl BinCodec for EngineSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.rounds_served);
        self.graph.encode(w);
        self.clustering.encode(w);
        self.aggregates.encode(w);
        self.stats.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(EngineSnapshot {
            rounds_served: r.get_u64()?,
            graph: GraphState::decode(r)?,
            clustering: Clustering::decode(r)?,
            aggregates: AggregatesState::decode(r)?,
            stats: DynamicCStats::decode(r)?,
        })
    }
}

/// Capture the engine's current durable state as a snapshot payload.
fn snapshot_of(engine: &Engine) -> EngineSnapshot {
    EngineSnapshot {
        rounds_served: engine.rounds_served() as u64,
        graph: engine.graph().export_state(),
        clustering: engine.clustering().clone(),
        aggregates: engine.aggregates().export_state(),
        stats: *engine.stats(),
    }
}

/// A crash-safe [`Engine`]: every served round is logged before it is
/// applied, and checkpoints bound how much of the log a recovery replays.
pub struct DurableEngine {
    engine: Engine,
    wal: Wal,
    snapshotter: Snapshotter,
    options: DurabilityOptions,
    last_checkpoint_round: u64,
}

impl DurableEngine {
    /// Open the durable engine in `dir`: recover from the snapshot + WAL if
    /// durable state exists, otherwise initialize fresh from `bootstrap`
    /// (typically the batch algorithm's clustering of the initial data) and
    /// write the initial checkpoint so the serving state never has to be
    /// rebuilt from the original dataset again.
    ///
    /// `graph_config` must be equivalent to the configuration the state was
    /// created under, and `dynamicc` must carry the same (deterministically
    /// trained) models — see the module docs for why neither is persisted.
    pub fn open(
        dir: impl AsRef<Path>,
        graph_config: GraphConfig,
        dynamicc: DynamicC,
        options: DurabilityOptions,
        bootstrap: impl FnOnce() -> (SimilarityGraph, Clustering),
    ) -> Result<(Self, RecoveryReport), StorageError> {
        Self::open_with_replay_cap(dir, graph_config, dynamicc, options, None, bootstrap)
    }

    /// [`DurableEngine::open`] with an optional *replay cap*: recovery stops
    /// at round `cap` and physically truncates any logged-but-uncommitted
    /// rounds beyond it (see [`Wal::open_capped`]).  The sharded durable
    /// engine uses this to roll every shard back to the globally committed
    /// round — a round that reached only some shard WALs before a crash was
    /// never acknowledged and must be forgotten everywhere.
    pub(crate) fn open_with_replay_cap(
        dir: impl AsRef<Path>,
        graph_config: GraphConfig,
        dynamicc: DynamicC,
        options: DurabilityOptions,
        replay_cap: Option<u64>,
        bootstrap: impl FnOnce() -> (SimilarityGraph, Clustering),
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let dir = dir.as_ref();
        let snapshotter = Snapshotter::new(dir)?;
        let span = dc_telemetry::registry().span("recovery.snapshot_load");
        let loaded = snapshotter.load_latest::<EngineSnapshot>()?;
        span.finish();
        match loaded {
            Some((round, snapshot)) => Self::recover(
                dir,
                snapshotter,
                graph_config,
                dynamicc,
                options,
                replay_cap,
                round,
                snapshot,
            ),
            None => {
                if !list_segments(dir)?.is_empty() {
                    return Err(StorageError::Inconsistent(format!(
                        "{} holds WAL segments but no snapshot",
                        dir.display()
                    )));
                }
                let (graph, clustering) = bootstrap();
                let engine = Engine::new(graph, clustering, dynamicc);
                // Initial checkpoint *before* the first segment: a crash
                // between the two leaves a snapshot without segments, which
                // recovery handles (it creates a fresh segment).  The other
                // order would leave a segment without any snapshot — a state
                // indistinguishable from a damaged directory.
                snapshotter.write(0, &snapshot_of(&engine))?;
                let wal = Wal::create(dir, 0)?;
                Ok((
                    DurableEngine {
                        engine,
                        wal,
                        snapshotter,
                        options,
                        last_checkpoint_round: 0,
                    },
                    RecoveryReport::default(),
                ))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn recover(
        dir: &Path,
        snapshotter: Snapshotter,
        graph_config: GraphConfig,
        mut dynamicc: DynamicC,
        options: DurabilityOptions,
        replay_cap: Option<u64>,
        snapshot_round: u64,
        snapshot: EngineSnapshot,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        if snapshot.rounds_served != snapshot_round {
            return Err(StorageError::Inconsistent(format!(
                "snapshot file for round {snapshot_round} records rounds_served = {}",
                snapshot.rounds_served
            )));
        }
        if replay_cap.is_some_and(|cap| snapshot_round > cap) {
            // A snapshot beyond the cap would mean a checkpoint of a round
            // that was never globally committed — the sharded protocol only
            // checkpoints after a round completed on every shard, so this is
            // damage, not a crash window.
            return Err(StorageError::Inconsistent(format!(
                "snapshot at round {snapshot_round} exceeds the replay cap {}",
                replay_cap.unwrap_or_default()
            )));
        }
        let codec_err = |source: CodecError| StorageError::Codec {
            path: dir.join(dc_storage::snapshot::snapshot_file_name(snapshot_round)),
            source,
        };
        let reg = dc_telemetry::registry();
        let span = reg.span("recovery.state_import");
        let graph =
            SimilarityGraph::import_state(graph_config, snapshot.graph).map_err(codec_err)?;
        let aggregates = ClusterAggregates::import_state(snapshot.aggregates).map_err(codec_err)?;
        dynamicc.restore_stats(snapshot.stats);
        let mut engine = Engine::from_parts(
            graph,
            snapshot.clustering,
            aggregates,
            dynamicc,
            snapshot_round as usize,
        );
        span.finish();

        // Replay the WAL tail.  Segments predating the snapshot may survive
        // a checkpoint that crashed mid-prune; their rounds are already in
        // the snapshot and are skipped.  Everything after must be contiguous.
        let mut report = RecoveryReport {
            recovered: true,
            snapshot_round,
            replayed_rounds: 0,
            dropped_torn_tail: false,
        };
        let replay_span = reg.span("recovery.replay");
        let mut tail_wal: Option<Wal> = None;
        for (_, path) in list_segments(dir)? {
            let (wal, records, outcome) = Wal::open_capped(&path, replay_cap)?;
            report.dropped_torn_tail |= outcome.dropped_torn_tail;
            for record in records {
                if record.round <= engine.rounds_served() as u64 {
                    continue;
                }
                if record.round != engine.rounds_served() as u64 + 1 {
                    return Err(StorageError::Inconsistent(format!(
                        "WAL jumps to round {} with the engine at round {}",
                        record.round,
                        engine.rounds_served()
                    )));
                }
                engine.apply_round(&record.batch);
                report.replayed_rounds += 1;
            }
            tail_wal = Some(wal);
        }
        replay_span.finish();
        reg.add("recovery.replayed_rounds", report.replayed_rounds as u64);
        let current_round = engine.rounds_served() as u64;
        let wal = match tail_wal {
            // Reuse the newest segment only if it is the one still being
            // appended to; an older tail (e.g. every segment predates the
            // snapshot) gets a fresh segment at the current round.
            Some(wal)
                if wal.last_round() == current_round && wal.start_round() >= snapshot_round =>
            {
                wal
            }
            _ => Wal::create(dir, current_round)?,
        };
        Ok((
            DurableEngine {
                engine,
                wal,
                snapshotter,
                options,
                last_checkpoint_round: snapshot_round,
            },
            report,
        ))
    }

    /// Serve one round durably: append the batch to the WAL (fsynced) and
    /// only then fold it into the engine, so a crash between the two is
    /// replayed on recovery and a crash before the append loses nothing but
    /// the unacknowledged round.  Checkpoints automatically per
    /// [`DurabilityOptions::checkpoint_every_rounds`].
    pub fn apply_round(&mut self, batch: &OperationBatch) -> Result<RoundReport, StorageError> {
        let reg = dc_telemetry::registry();
        let round = self.engine.rounds_served() as u64 + 1;
        let span = reg.span("round.wal_append");
        self.wal.append_round(round, batch)?;
        span.finish();
        let report = self.engine.apply_round(batch);
        let every = self.options.checkpoint_every_rounds;
        if every > 0 && round.is_multiple_of(every as u64) {
            let span = reg.span("round.checkpoint");
            self.checkpoint()?;
            span.finish();
        }
        Ok(report)
    }

    /// The group-commit first half of [`DurableEngine::apply_round`]: stage
    /// the next round's batch in the WAL **without** fsyncing.  The round is
    /// not durable (and must not be acknowledged) until a commit point —
    /// either this shard's [`DurableEngine::wal_sync`] or, in the sharded
    /// group-commit protocol, the single fsync of the group WAL that covers
    /// every shard's staged frame.
    pub(crate) fn log_round_nosync(&mut self, batch: &OperationBatch) -> Result<u64, StorageError> {
        let round = self.engine.rounds_served() as u64 + 1;
        self.wal.append_round_nosync(round, batch)?;
        Ok(round)
    }

    /// Durably flush the staged WAL frames with one fsync.
    pub(crate) fn wal_sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// The group-commit second half of [`DurableEngine::apply_round`]: fold
    /// an already-logged round into the engine.  The caller is responsible
    /// for having logged exactly this batch (and for checkpoint policy — the
    /// sharded engine checkpoints all shards together).
    pub(crate) fn apply_logged(&mut self, batch: &OperationBatch) -> RoundReport {
        self.engine.apply_round(batch)
    }

    /// Take a checkpoint now: atomically snapshot the engine state, rotate
    /// the WAL to a fresh segment, and prune the artifacts the snapshot made
    /// obsolete.  Returns the checkpointed round.
    pub fn checkpoint(&mut self) -> Result<u64, StorageError> {
        let reg = dc_telemetry::registry();
        let span = reg.span("checkpoint.total");
        let round = self.write_checkpoint()?;
        if self.wal.start_round() != round {
            self.wal = Wal::create(self.snapshotter.dir(), round)?;
        }
        self.snapshotter.prune_obsolete(round)?;
        span.finish();
        reg.add("checkpoint.count", 1);
        Ok(round)
    }

    /// Write the snapshot for the current round (without rotating/pruning —
    /// the fresh-open path wants exactly this).
    fn write_checkpoint(&mut self) -> Result<u64, StorageError> {
        let round = self.engine.rounds_served() as u64;
        self.snapshotter.write(round, &snapshot_of(&self.engine))?;
        self.last_checkpoint_round = round;
        Ok(round)
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The current clustering.
    pub fn clustering(&self) -> &Clustering {
        self.engine.clustering()
    }

    /// Cumulative DynamicC statistics.
    pub fn stats(&self) -> &DynamicCStats {
        self.engine.stats()
    }

    /// Rounds served across the engine's whole (possibly multi-process)
    /// lifetime.
    pub fn rounds_served(&self) -> usize {
        self.engine.rounds_served()
    }

    /// The round covered by the most recent checkpoint.
    pub fn last_checkpoint_round(&self) -> u64 {
        self.last_checkpoint_round
    }

    /// Rounds served since the last checkpoint (what a crash right now
    /// would replay).
    pub fn rounds_since_checkpoint(&self) -> u64 {
        self.engine.rounds_served() as u64 - self.last_checkpoint_round
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        self.snapshotter.dir()
    }

    /// Bytes currently in the active WAL segment.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The newest round any durable artifact in `dir` can recover to: the
    /// latest snapshot round or the last complete WAL record, whichever is
    /// greater — `(None, _)` when the directory holds no durable state at
    /// all.  Torn tails are repaired (truncated) as a side effect, exactly
    /// as a full open would — the second component reports whether one was
    /// dropped, since a subsequent open will find the file already clean.
    /// Complete records are never touched.
    ///
    /// This is the first pass of sharded recovery: peek every shard's
    /// recoverable round, take the minimum as the globally committed round,
    /// then reopen each shard with that cap.
    pub(crate) fn last_durable_round(dir: &Path) -> Result<(Option<u64>, bool), StorageError> {
        if !dir.is_dir() {
            return Ok((None, false));
        }
        let snapshotter = Snapshotter::new(dir)?;
        let snapshots = snapshotter.list()?;
        let segments = list_segments(dir)?;
        let Some(mut last) = snapshots.iter().map(|(round, _)| *round).max() else {
            if segments.is_empty() {
                return Ok((None, false));
            }
            return Err(StorageError::Inconsistent(format!(
                "{} holds WAL segments but no snapshot",
                dir.display()
            )));
        };
        let mut dropped_torn_tail = false;
        for (_, path) in segments {
            let (wal, _, outcome) = Wal::open(&path)?;
            dropped_torn_tail |= outcome.dropped_torn_tail;
            last = last.max(wal.last_round());
        }
        Ok((Some(last), dropped_torn_tail))
    }

    /// Paths of the durable artifacts currently on disk (snapshots, then
    /// segments), for diagnostics.
    pub fn artifact_paths(&self) -> Result<Vec<PathBuf>, StorageError> {
        let mut out: Vec<PathBuf> = self
            .snapshotter
            .list()?
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        out.extend(
            list_segments(self.snapshotter.dir())?
                .into_iter()
                .map(|(_, p)| p),
        );
        Ok(out)
    }
}

impl std::fmt::Debug for DurableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableEngine")
            .field("dir", &self.snapshotter.dir())
            .field("rounds_served", &self.engine.rounds_served())
            .field("last_checkpoint_round", &self.last_checkpoint_round)
            .field("engine", &self.engine)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_objective::CorrelationObjective;
    use dc_similarity::fixtures::graph_from_edges;
    use dc_storage::WalRecord;
    use dc_types::{ObjectId, Operation};
    use std::sync::Arc;

    /// Scratch state directory removed on drop, so failed assertions do not
    /// leave litter behind.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("dc-durable-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fixture_bootstrap() -> (SimilarityGraph, Clustering) {
        let graph = graph_from_edges(2, &[(1, 2, 0.9)]);
        let clustering =
            Clustering::from_groups([vec![ObjectId::new(1), ObjectId::new(2)]]).unwrap();
        (graph, clustering)
    }

    #[test]
    fn fresh_open_writes_the_initial_checkpoint() {
        let tmp = TempDir::new("fresh");
        let dir = tmp.path();
        let (graph, clustering) = fixture_bootstrap();
        let config = graph.config().clone();
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        let (engine, report) = DurableEngine::open(
            dir,
            config,
            dynamicc,
            DurabilityOptions::default(),
            move || (graph, clustering),
        )
        .unwrap();
        assert!(!report.recovered);
        assert_eq!(report.snapshot_round, 0);
        assert_eq!(engine.rounds_served(), 0);
        assert_eq!(engine.last_checkpoint_round(), 0);
        // Snapshot 0 and segment wal-0 exist.
        assert_eq!(engine.artifact_paths().unwrap().len(), 2);
    }

    #[test]
    fn crash_between_initial_snapshot_and_first_segment_recovers() {
        // The fresh-open crash window: the initial checkpoint is durable but
        // the first segment was never created.  Reopening must recover from
        // the snapshot and create the missing segment — not brick the dir.
        let tmp = TempDir::new("fresh-crash");
        let dir = tmp.path();
        let (graph, clustering) = fixture_bootstrap();
        let config = graph.config().clone();
        let make_dynamicc = || DynamicC::with_objective(Arc::new(CorrelationObjective));
        {
            let (engine, _) = DurableEngine::open(
                dir,
                config.clone(),
                make_dynamicc(),
                DurabilityOptions::default(),
                move || (graph, clustering),
            )
            .unwrap();
            drop(engine);
        }
        // Simulate the crash by deleting the segment the fresh open created.
        let seg_path = list_segments(dir).unwrap()[0].1.clone();
        std::fs::remove_file(&seg_path).unwrap();

        let (engine, report) = DurableEngine::open(
            dir,
            config,
            make_dynamicc(),
            DurabilityOptions::default(),
            || unreachable!("recovery must not bootstrap"),
        )
        .unwrap();
        assert!(report.recovered);
        assert_eq!(report.replayed_rounds, 0);
        assert_eq!(engine.rounds_served(), 0);
        assert_eq!(list_segments(dir).unwrap().len(), 1, "segment recreated");
    }

    #[test]
    fn segments_without_a_snapshot_are_inconsistent() {
        let tmp = TempDir::new("no-snap");
        let dir = tmp.path();
        std::fs::create_dir_all(dir).unwrap();
        Wal::create(dir, 0).unwrap();
        let (graph, clustering) = fixture_bootstrap();
        let config = graph.config().clone();
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        let result = DurableEngine::open(
            dir,
            config,
            dynamicc,
            DurabilityOptions::default(),
            move || (graph, clustering),
        );
        assert!(matches!(result, Err(StorageError::Inconsistent(_))));
    }

    #[test]
    fn logged_but_unapplied_round_is_replayed_on_recovery() {
        // Simulate a crash in the log-then-apply window: the round reached
        // the WAL but the engine never saw it.
        let tmp = TempDir::new("log-then-apply");
        let dir = tmp.path();
        let (graph, clustering) = fixture_bootstrap();
        let config = graph.config().clone();
        let make_dynamicc = || DynamicC::with_objective(Arc::new(CorrelationObjective));
        {
            let (_engine, _) = DurableEngine::open(
                dir,
                config.clone(),
                make_dynamicc(),
                DurabilityOptions::default(),
                move || (graph, clustering),
            )
            .unwrap();
        }
        // Append round 1 directly to the segment, bypassing the engine.
        let mut batch = OperationBatch::new();
        batch.push(Operation::Remove {
            id: ObjectId::new(2),
        });
        let seg_path = list_segments(dir).unwrap()[0].1.clone();
        let (mut wal, _, _) = Wal::open(&seg_path).unwrap();
        wal.append(&WalRecord {
            round: 1,
            batch: batch.clone(),
        })
        .unwrap();
        drop(wal);

        let (engine, report) = DurableEngine::open(
            dir,
            config,
            make_dynamicc(),
            DurabilityOptions::default(),
            || unreachable!("recovery must not bootstrap"),
        )
        .unwrap();
        assert!(report.recovered);
        assert_eq!(report.replayed_rounds, 1);
        assert_eq!(engine.rounds_served(), 1);
        assert!(!engine.clustering().contains_object(ObjectId::new(2)));
    }
}
