//! The DynamicC system and its full algorithm (Algorithm 3, §6.4).

use crate::config::{DynamicCConfig, DynamicCStats};
use crate::merge::merge_pass;
use crate::models::ModelPair;
use crate::split::split_pass;
use dc_baselines::{prepare_working_clustering, IncrementalClusterer};
use dc_evolution::{derive_transformation, NegativeSampler, RoundExamples};
use dc_ml::ConfusionMatrix;
use dc_objective::ObjectiveFunction;
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{Clustering, OperationBatch};
use std::sync::Arc;

/// The DynamicC dynamic clustering system.
///
/// A `DynamicC` instance owns the merge/split model pair, the negative
/// sampler, and the bounded training buffers.  It is trained by observing
/// rounds of an underlying batch algorithm
/// ([`DynamicC::observe_round`] / [`crate::trainer::train_on_workload`]) and
/// then serves re-clustering requests through
/// [`IncrementalClusterer::recluster`].
#[derive(Clone)]
pub struct DynamicC {
    objective: Arc<dyn ObjectiveFunction>,
    config: DynamicCConfig,
    models: ModelPair,
    sampler: NegativeSampler,
    stats: DynamicCStats,
}

impl DynamicC {
    /// Create an untrained DynamicC for the given objective.
    pub fn new(objective: Arc<dyn ObjectiveFunction>, config: DynamicCConfig) -> Self {
        DynamicC {
            models: ModelPair::new(config.model_kind, config.buffer_capacity),
            sampler: NegativeSampler::new(config.sampler),
            objective,
            config,
            stats: DynamicCStats::default(),
        }
    }

    /// Create a DynamicC with the default configuration.
    pub fn with_objective(objective: Arc<dyn ObjectiveFunction>) -> Self {
        Self::new(objective, DynamicCConfig::default())
    }

    /// The objective used for verification.
    pub fn objective(&self) -> &Arc<dyn ObjectiveFunction> {
        &self.objective
    }

    /// The configuration in use.
    pub fn config(&self) -> &DynamicCConfig {
        &self.config
    }

    /// Runtime statistics accumulated so far.
    pub fn stats(&self) -> &DynamicCStats {
        &self.stats
    }

    /// Overwrite the cumulative statistics.  Crash recovery uses this: the
    /// durable engine restores the counters recorded in the snapshot before
    /// replaying the WAL tail, so a recovered engine's statistics match a
    /// never-restarted one's exactly.
    pub fn restore_stats(&mut self, stats: DynamicCStats) {
        self.stats = stats;
    }

    /// The model pair (exposed for the ML-evaluation experiments of §7.3).
    pub fn models(&self) -> &ModelPair {
        &self.models
    }

    /// Whether the models have been fitted at least once.
    pub fn is_trained(&self) -> bool {
        self.models.is_trained()
    }

    // ------------------------------------------------------------------
    // Training
    // ------------------------------------------------------------------

    /// Observe one round of the underlying batch algorithm: the graph after
    /// this round's operations, the clustering before the round, the batch
    /// of operations, and the batch algorithm's new clustering.  The round's
    /// evolution is converted into training examples and absorbed into the
    /// buffers; the models are refitted automatically every
    /// `retrain_every_rounds` observations.
    pub fn observe_round(
        &mut self,
        graph: &SimilarityGraph,
        previous: &Clustering,
        batch: &OperationBatch,
        batch_result: &Clustering,
    ) {
        let (working, _isolated) = prepare_working_clustering(graph, previous, batch);
        let touched = batch.touched_ids();
        let trace = derive_transformation(previous, batch_result, &touched);
        let round = RoundExamples::extract(graph, &working, &trace);
        self.models.absorb_round(&round, &mut self.sampler);
        self.stats.observed_rounds += 1;
        if self.config.retrain_every_rounds > 0
            && self
                .stats
                .observed_rounds
                .is_multiple_of(self.config.retrain_every_rounds)
        {
            self.retrain();
        }
    }

    /// Refit both models on the buffered examples and refresh the
    /// recall-first thresholds.
    pub fn retrain(&mut self) -> bool {
        let fitted = self.models.retrain();
        if fitted {
            self.stats.retrain_count += 1;
        }
        fitted
    }

    // ------------------------------------------------------------------
    // Evaluation helpers (§7.3)
    // ------------------------------------------------------------------

    /// Evaluate the *merge* model's predictions on one held-out round: the
    /// actual labels come from the observed evolution between `previous` and
    /// `batch_result`, the predictions from the current model at its
    /// threshold.  Returns the confusion matrix of Figure 3.
    pub fn merge_confusion_on_round(
        &self,
        graph: &SimilarityGraph,
        previous: &Clustering,
        batch: &OperationBatch,
        batch_result: &Clustering,
    ) -> ConfusionMatrix {
        let (working, _) = prepare_working_clustering(graph, previous, batch);
        let touched = batch.touched_ids();
        let trace = derive_transformation(previous, batch_result, &touched);
        let round = RoundExamples::extract(graph, &working, &trace);

        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for f in &round.merge_positives {
            predicted.push(self.models.predicts_merge(f, self.config.theta_scale));
            actual.push(true);
        }
        for f in round
            .merge_negatives_active
            .iter()
            .chain(&round.merge_negatives_inactive)
        {
            predicted.push(self.models.predicts_merge(f, self.config.theta_scale));
            actual.push(false);
        }
        ConfusionMatrix::from_predictions(&predicted, &actual)
    }

    // ------------------------------------------------------------------
    // Serving (Algorithm 3)
    // ------------------------------------------------------------------

    /// Algorithm 3 applied to an already-prepared working clustering with an
    /// already-prepared maintained aggregate: the merge and split passes read
    /// all candidate state from `agg` and fold every applied change back into
    /// it, so the whole fixed-point loop performs **no** full aggregate
    /// builds.  `agg` must describe `(graph, working)` on entry and does so
    /// again on exit.
    pub(crate) fn run_full_algorithm(
        &mut self,
        graph: &SimilarityGraph,
        working: &mut Clustering,
        agg: &mut ClusterAggregates,
    ) {
        for _ in 0..self.config.max_passes {
            let merged = merge_pass(
                graph,
                working,
                agg,
                self.objective.as_ref(),
                &self.models,
                self.config.theta_scale,
                &mut self.stats,
            );
            let split = split_pass(
                graph,
                working,
                agg,
                self.objective.as_ref(),
                &self.models,
                self.config.theta_scale,
                &mut self.stats,
            );
            if !merged && !split {
                break;
            }
        }
    }

    /// Convenience wrapper: cluster a graph from scratch (every object starts
    /// as a singleton and Algorithm 3 runs once).  Mainly used by examples
    /// and tests; the paper's deployment always starts from the previous
    /// clustering via [`IncrementalClusterer::recluster`].
    pub fn cluster_from_scratch(&mut self, graph: &SimilarityGraph) -> Clustering {
        let mut working = Clustering::singletons(graph.object_ids());
        let mut agg = ClusterAggregates::new(graph, &working);
        self.run_full_algorithm(graph, &mut working, &mut agg);
        working
    }

    /// The objective score of a clustering under this instance's objective
    /// (exposed for reporting).
    pub fn score(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        self.objective.evaluate(graph, clustering)
    }

    /// Average intra-cluster similarity of the whole clustering — a cheap
    /// cohesion summary used by the examples.
    pub fn mean_cohesion(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        if clustering.cluster_count() == 0 {
            return 0.0;
        }
        let agg = ClusterAggregates::new(graph, clustering);
        let sum: f64 = clustering
            .cluster_ids()
            .into_iter()
            .map(|cid| agg.intra_avg(cid))
            .sum();
        sum / clustering.cluster_count() as f64
    }
}

impl IncrementalClusterer for DynamicC {
    fn name(&self) -> &'static str {
        "dynamicc"
    }

    fn recluster(
        &mut self,
        graph: &SimilarityGraph,
        previous: &Clustering,
        batch: &OperationBatch,
    ) -> Clustering {
        // §6.1 initial processing.
        let (mut working, _isolated) = prepare_working_clustering(graph, previous, batch);
        // The round's single full aggregate build; everything after this is
        // maintained incrementally.  (The `Engine` round loop avoids even
        // this build by carrying the aggregates across rounds.)
        let mut agg = ClusterAggregates::new(graph, &working);
        // §6.4 full algorithm: alternate merge and split passes to a fixed
        // point, each proposal verified against the objective.
        self.run_full_algorithm(graph, &mut working, &mut agg);
        working
    }
}

impl std::fmt::Debug for DynamicC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicC")
            .field("objective", &self.objective.name())
            .field("models", &self.models)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_objective::CorrelationObjective;
    use dc_similarity::fixtures::graph_from_edges;
    use dc_types::{ObjectId, Operation, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn add(id: u64) -> Operation {
        Operation::Add {
            id: oid(id),
            record: RecordBuilder::new().number("id", id as f64).build(),
        }
    }

    /// Train DynamicC on a couple of synthetic rounds over a small duplicate
    /// graph, then serve a new round.
    #[test]
    fn end_to_end_train_then_serve_on_a_toy_entity_graph() {
        let objective = Arc::new(CorrelationObjective);
        let mut dynamicc = DynamicC::with_objective(objective.clone());

        // Round 1 (observed): objects 1..4; {1,2} and {3,4} are duplicates.
        let graph_r1 = graph_from_edges(4, &[(1, 2, 0.9), (3, 4, 0.9)]);
        let previous = Clustering::singletons([oid(1), oid(3)]);
        let mut batch1 = OperationBatch::new();
        batch1.push(add(2));
        batch1.push(add(4));
        let batch_result =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        dynamicc.observe_round(&graph_r1, &previous, &batch1, &batch_result);
        assert!(dynamicc.is_trained());
        assert_eq!(dynamicc.stats().observed_rounds, 1);

        // Round 2 (served): objects 5, 6 arrive, each duplicating an entity.
        let graph_r2 = graph_from_edges(
            6,
            &[
                (1, 2, 0.9),
                (3, 4, 0.9),
                (5, 1, 0.85),
                (5, 2, 0.85),
                (6, 3, 0.8),
                (6, 4, 0.8),
            ],
        );
        let mut batch2 = OperationBatch::new();
        batch2.push(add(5));
        batch2.push(add(6));
        let result = dynamicc.recluster(&graph_r2, &batch_result, &batch2);
        result.check_invariants().unwrap();
        assert_eq!(result.cluster_of(oid(5)), result.cluster_of(oid(1)));
        assert_eq!(result.cluster_of(oid(6)), result.cluster_of(oid(3)));
        assert_ne!(result.cluster_of(oid(1)), result.cluster_of(oid(3)));
        assert!(dynamicc.stats().merges_applied >= 2);
        assert_eq!(dynamicc.name(), "dynamicc");
    }

    #[test]
    fn verification_prevents_quality_regressions_even_untrained() {
        // Untrained models flag everything; the objective check must still
        // keep the clustering at least as good as doing nothing.
        let objective = Arc::new(CorrelationObjective);
        let mut dynamicc = DynamicC::with_objective(objective.clone());
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (3, 4, 0.2)]);
        let previous = Clustering::singletons([oid(1), oid(2), oid(3), oid(4)]);
        let result = dynamicc.recluster(&graph, &previous, &OperationBatch::new());
        let before = objective.evaluate(&graph, &previous);
        let after = objective.evaluate(&graph, &result);
        assert!(after <= before + 1e-9);
        // The strong pair merged, the weak pair did not.
        assert_eq!(result.cluster_of(oid(1)), result.cluster_of(oid(2)));
        assert_ne!(result.cluster_of(oid(3)), result.cluster_of(oid(4)));
    }

    #[test]
    fn cluster_from_scratch_matches_recluster_from_singletons() {
        let objective = Arc::new(CorrelationObjective);
        let mut a = DynamicC::with_objective(objective.clone());
        let mut b = DynamicC::with_objective(objective);
        let graph = graph_from_edges(5, &[(1, 2, 0.9), (2, 3, 0.9), (4, 5, 0.8)]);
        let scratch = a.cluster_from_scratch(&graph);
        let singles = Clustering::singletons(graph.object_ids());
        let served = b.recluster(&graph, &singles, &OperationBatch::new());
        assert!(scratch.delta(&served).is_unchanged());
    }

    #[test]
    fn merge_confusion_on_round_counts_labels() {
        let objective = Arc::new(CorrelationObjective);
        let mut dynamicc = DynamicC::with_objective(objective);
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (3, 4, 0.9)]);
        let previous = Clustering::singletons([oid(1), oid(3)]);
        let mut batch = OperationBatch::new();
        batch.push(add(2));
        batch.push(add(4));
        let batch_result =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        dynamicc.observe_round(&graph, &previous, &batch, &batch_result);
        let m = dynamicc.merge_confusion_on_round(&graph, &previous, &batch, &batch_result);
        // Every cluster of the working clustering is accounted for.
        assert_eq!(m.total(), 4);
        // A trained model with the recall-first threshold must catch the
        // positives of the round it was trained on.
        assert_eq!(m.false_negatives, 0);
    }

    #[test]
    fn stats_and_debug_are_exposed() {
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        assert_eq!(dynamicc.stats().observed_rounds, 0);
        assert_eq!(dynamicc.config().theta_scale, 1.0);
        assert!(!dynamicc.is_trained());
        let s = format!("{dynamicc:?}");
        assert!(s.contains("correlation"));
        let graph = graph_from_edges(2, &[(1, 2, 0.9)]);
        let c = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        assert!(dynamicc.mean_cohesion(&graph, &c) > 0.8);
        assert!(dynamicc.score(&graph, &c) < 1.0);
    }
}
