//! Sharded parallel serving: N independent [`Engine`]s behind one facade.
//!
//! The serving loop is embarrassingly partitionable across blocking keys
//! (§6, Algorithm 3): similarity edges only ever form between records that
//! share a block, so partitioning objects by their canonical blocking key
//! ([`ShardRouter`]) yields shards whose engines never need to talk to each
//! other.  A shard is an [`Engine`], a round is one `apply_round` call per
//! shard, and the N calls run in parallel on a hand-rolled scoped-thread
//! pool (`std::thread::scope`; no dependencies).
//!
//! ## What the partition preserves
//!
//! * **Objects** — every live object is owned by exactly one shard, decided
//!   by the router at first sight and sticky until the object is removed.
//! * **Cluster-id namespaces** — shard `i` allocates cluster ids from
//!   `shard_id_base(i) + watermark` upward (the watermark scheme the
//!   [`Clustering`] codec already persists), so per-shard clusterings merge
//!   into one global view without id collisions.  Clusters inherited whole
//!   from the pre-partition clustering keep their original ids.
//! * **Statistics** — the global [`DynamicCStats`] / comparison counters /
//!   [`RoundReport`]s are the field-wise sums of the per-shard ones.
//!
//! What the *partition* drops — similarity edges between shards — the
//! **cross-shard refinement pass** ([`crate::refine`]) recovers: after the
//! parallel per-shard rounds, the boundary pairs the per-shard graphs cannot
//! see are computed once, cached, and a global repair runs the trained
//! merge/split passes over the global view, so the refined clustering
//! ([`ShardedEngine::refined_clustering`]) is quality-equivalent to the
//! unsharded engine instead of silently lossy.  Refinement is the default;
//! [`ShardedEngine::new_raw`] opts out for workloads where the repair
//! pass's serial cost matters more than pair-exact quality (the
//! `bench-shard-quality` benchmark measures both sides of that trade, and
//! `bench-sharding` pins the raw mode's scaling).
//!
//! With **one** shard nothing is dropped and nothing is renumbered: the
//! sub-batch is the input batch, the namespace base is 0, and the sharded
//! engine is bit-identical to an unsharded [`Engine`] — clusterings
//! (including cluster ids), stats, and comparison counters.  This is pinned
//! by `tests/sharded_equivalence.rs`.
//!
//! ## Durable sharding
//!
//! [`ShardedDurableEngine`] gives every shard its own WAL + snapshot
//! directory (`shard-000/`, `shard-001/`, …) wrapped in a [`DurableEngine`].
//! A round is durable once *every* shard has logged its sub-batch, so the
//! globally committed round is the **minimum** over the shards' recoverable
//! rounds.  Recovery peeks that minimum first, then reopens each shard
//! capped at it — shards that logged a never-acknowledged round (a crash
//! mid-distribution, or a torn tail in one shard) are physically rolled
//! back, keeping all shards bit-identical to a never-restarted sharded run.
//! Checkpoints are driven globally (after a round has completed on every
//! shard), never by the shards themselves, so no snapshot can ever get ahead
//! of the committed round.

use crate::config::DynamicCStats;
use crate::durable::{DurabilityOptions, RecoveryReport};
use crate::dynamic::DynamicC;
use crate::engine::{Engine, RoundReport};
use crate::refine::{CrossShardRefiner, RefineReport, RefineState};
use crate::DurableEngine;
use dc_similarity::persist::GraphState;
use dc_similarity::{GraphConfig, ShardRouter, SimilarityGraph};
use dc_storage::wal::list_segments;
use dc_storage::{Snapshotter, StorageError, Wal};
use dc_types::{shard_id_base, Clustering, ObjectId, OperationBatch, MAX_SHARDS};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Why a sharded engine could not be constructed over the given inputs.
///
/// Construction used to `assert!` on these; a typed error lets callers
/// surface the misconfiguration (e.g. an operator passing a previous
/// multi-shard run's merged clustering back in) instead of aborting the
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardConfigError {
    /// The clustering's id watermark does not fit the shard-0 namespace, so
    /// partitioning it across more than one shard would collide with other
    /// shards' id namespaces.  This is what a
    /// [`ShardedEngine::merged_clustering`] (or refined clustering) from a
    /// previous multi-shard run looks like — re-sharding means re-clustering
    /// from the records.
    WatermarkOverflow {
        /// The offending id watermark.
        watermark: u64,
    },
    /// More shards were requested than the shard-tagged cluster-id scheme
    /// can serve: the top namespace is reserved for the cross-shard
    /// refinement pass's repair ids.
    TooManyShards {
        /// The requested shard count.
        n_shards: usize,
        /// The maximum supported count ([`MAX_SHARDS`]` - 1`).
        max_shards: usize,
    },
    /// The clustering names an object the graph holds no record for, so the
    /// router has nothing to derive the object's shard from.  The graph and
    /// clustering handed to a sharded constructor must cover exactly the
    /// same live objects.
    ClusteredObjectMissing {
        /// The clustered object absent from the graph.
        id: ObjectId,
    },
    /// A shard carries a different [`crate::DynamicCConfig`] than shard 0.
    /// The cross-shard refinement pass reads its pass configuration (theta
    /// scale, pass budget) from shard 0 for its whole lifetime, so a
    /// divergent shard would be silently overridden — rejected at refiner
    /// construction instead.
    MismatchedDynamicCConfig {
        /// The first shard whose configuration disagrees with shard 0's.
        shard: usize,
    },
    /// A recovered cross-shard edge touches an object the merged per-shard
    /// clusterings do not cover: the shard graphs and clusterings handed to
    /// the refiner disagree about the live object set.
    UnclusteredObject {
        /// The object with a graph record but no cluster.
        id: ObjectId,
    },
    /// The object-to-shard assignment names an object its owning shard's
    /// graph holds no record for.
    AssignedObjectMissing {
        /// The assigned object absent from its shard's graph.
        id: ObjectId,
        /// The shard the assignment claims owns it.
        shard: usize,
    },
    /// The refiner's boundary index produced a cross-shard candidate whose
    /// record is missing from the mirror graph — an internal inconsistency
    /// between the two derived layers.
    MirrorRecordMissing {
        /// The candidate object absent from the mirror.
        id: ObjectId,
    },
}

impl std::fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardConfigError::WatermarkOverflow { watermark } => write!(
                f,
                "cluster-id watermark {watermark} overflows the shard-0 namespace \
                 (the clustering was produced by a multi-shard run; re-cluster from \
                 the records before re-sharding)"
            ),
            ShardConfigError::TooManyShards {
                n_shards,
                max_shards,
            } => write!(
                f,
                "{n_shards} shards exceed the supported maximum of {max_shards} \
                 (the top cluster-id namespace is reserved for refinement repair ids)"
            ),
            ShardConfigError::ClusteredObjectMissing { id } => write!(
                f,
                "clustered object {id} has no record in the graph \
                 (the graph and clustering must cover the same live objects)"
            ),
            ShardConfigError::MismatchedDynamicCConfig { shard } => write!(
                f,
                "shard {shard} carries a DynamicC configuration different from \
                 shard 0's (cross-shard refinement requires an identical \
                 configuration on every shard)"
            ),
            ShardConfigError::UnclusteredObject { id } => write!(
                f,
                "object {id} has a graph record but no cluster \
                 (the shard graphs and clusterings disagree about the live \
                 object set)"
            ),
            ShardConfigError::AssignedObjectMissing { id, shard } => write!(
                f,
                "assigned object {id} has no record in shard {shard}'s graph \
                 (the assignment and the shard graphs disagree)"
            ),
            ShardConfigError::MirrorRecordMissing { id } => write!(
                f,
                "cross-shard candidate {id} is missing from the refiner's \
                 mirror graph (the boundary index and the mirror are out of \
                 sync)"
            ),
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// The per-shard bootstrap state produced by [`partition_state`].
struct ShardSeed {
    graph: SimilarityGraph,
    clustering: Clustering,
}

/// Everything a partition computes besides the seeds themselves.
struct Partition {
    seeds: Vec<ShardSeed>,
    assignment: BTreeMap<ObjectId, usize>,
}

/// Deterministically split one `(graph, clustering)` into per-shard seeds:
/// records by routing key, edges surviving only within a shard, clusters
/// kept verbatim when they land whole in one shard and re-created with
/// fresh shard-tagged ids when the router splits them.
fn partition_state(
    router: &ShardRouter,
    graph: &SimilarityGraph,
    clustering: &Clustering,
) -> Result<Partition, ShardConfigError> {
    let n = router.n_shards();
    if n > MAX_SHARDS - 1 {
        return Err(ShardConfigError::TooManyShards {
            n_shards: n,
            max_shards: MAX_SHARDS - 1,
        });
    }
    let watermark = clustering.id_watermark();
    if n > 1 && watermark > shard_id_base(1) {
        return Err(ShardConfigError::WatermarkOverflow { watermark });
    }

    let mut assignment: BTreeMap<ObjectId, usize> = BTreeMap::new();
    for id in graph.object_ids() {
        // dc-lint: allow(R1) reason="graph invariant: object_ids() yields only live ids, so record() cannot miss; a violation is graph corruption, not a servable state"
        let record = graph.record(id).expect("live object");
        assignment.insert(id, router.route(record));
    }

    // Graph: records and intra-shard edges; the donor's comparison counter
    // is inherited by shard 0 so the merged counter stays continuous.
    let full = graph.export_state();
    let mut states: Vec<GraphState> = (0..n)
        .map(|shard| GraphState {
            records: Vec::new(),
            edges: Vec::new(),
            comparisons: if shard == 0 { full.comparisons } else { 0 },
        })
        .collect();
    for (id, record) in full.records {
        states[assignment[&id]].records.push((id, record));
    }
    // Cross-shard edges are *not* forwarded to any shard: the refinement
    // pass recovers them (and keeps the recovered-edge count exact across
    // rounds — see `crate::refine`).
    for (a, b, sim) in full.edges {
        let (sa, sb) = (assignment[&a], assignment[&b]);
        if sa == sb {
            states[sa].edges.push((a, b, sim));
        }
    }

    // Clustering: split donor clusters by shard.  Whole clusters keep their
    // ids; split pieces get fresh ids from the owning shard's namespace.
    let mut kept: Vec<Vec<(dc_types::ClusterId, Vec<ObjectId>)>> = vec![Vec::new(); n];
    let mut fresh: Vec<Vec<Vec<ObjectId>>> = vec![Vec::new(); n];
    for (cid, cluster) in clustering.iter() {
        let mut pieces: BTreeMap<usize, Vec<ObjectId>> = BTreeMap::new();
        for oid in cluster.iter() {
            // User-reachable: `ShardedEngine::new` takes the graph and the
            // clustering as independent inputs, so a mismatched pair must
            // surface as a typed error, not a panic.
            let shard = *assignment
                .get(&oid)
                .ok_or(ShardConfigError::ClusteredObjectMissing { id: oid })?;
            pieces.entry(shard).or_default().push(oid);
        }
        if let Some((shard, members)) = (pieces.len() == 1).then(|| pieces.pop_first()).flatten() {
            kept[shard].push((cid, members));
        } else {
            for (shard, members) in pieces {
                fresh[shard].push(members);
            }
        }
    }

    let config = graph.config();
    let mut seeds = Vec::with_capacity(n);
    for (shard, state) in states.into_iter().enumerate() {
        let mut shard_clustering = Clustering::new();
        for (cid, members) in kept[shard].drain(..) {
            shard_clustering
                .insert_cluster_with_id(cid, members)
                // dc-lint: allow(R1) reason="construction invariant: donor cluster ids are unique in a well-formed Clustering and each lands in exactly one shard, so no id can collide"
                .expect("donor cluster ids are globally unique");
        }
        shard_clustering.set_id_watermark(shard_id_base(shard) + watermark);
        for members in fresh[shard].drain(..) {
            shard_clustering
                .create_cluster(members)
                // dc-lint: allow(R1) reason="construction invariant: pieces partition a donor cluster's members, so the fresh clusters are disjoint and non-empty by construction"
                .expect("partition pieces are disjoint");
        }
        let shard_graph = SimilarityGraph::import_state(config.clone(), state)
            // dc-lint: allow(R1) reason="construction invariant: the state was filtered from a valid exported graph (records routed whole, edges kept only intra-shard), so re-import cannot fail"
            .expect("partitioned state is well-formed by construction");
        seeds.push(ShardSeed {
            graph: shard_graph,
            clustering: shard_clustering,
        });
    }
    Ok(Partition { seeds, assignment })
}

/// Distribute one trained [`DynamicC`] across `n` shards: shard 0 inherits
/// the donor (with its training statistics), the others carry the same
/// models with zeroed counters — so the merged statistics stay the plain
/// sum of the per-shard ones, continuous with the donor's history.
fn distribute_dynamicc(donor: DynamicC, n: usize) -> Vec<DynamicC> {
    (0..n)
        .map(|shard| {
            if shard == 0 {
                donor.clone()
            } else {
                let mut d = donor.clone();
                d.restore_stats(DynamicCStats::default());
                d
            }
        })
        .collect()
}

/// Run `f` once per `(shard, batch)` pair on a scoped thread pool of at most
/// `max_threads` workers (contiguous chunks of shards per worker), and fold
/// the workers' thread-local telemetry sinks back into the calling thread.
/// Results come back in shard order.
///
/// The fold is the fan-out half of the telemetry threading model: the
/// telemetry mode is captured once before spawning and propagated to every
/// worker, each worker drains its whole sink (counters, gauges, histograms —
/// the full-build counter that [`BuildCounter::scope`] assertions read
/// included, since workers are fresh scoped threads whose sinks start
/// empty), and the deltas merge back **in worker order**, so gauge
/// last-writer-wins stays deterministic.  Per-shard apply wall time lands in
/// the `shard.apply` histogram, recorded on the worker that served the
/// shard.
pub(crate) fn parallel_shard_rounds<T: Send, R: Send>(
    shards: &mut [T],
    batches: &[OperationBatch],
    max_threads: usize,
    f: impl Fn(&mut T, &OperationBatch) -> R + Sync,
) -> Vec<R> {
    assert_eq!(shards.len(), batches.len());
    let n = shards.len();
    let threads = max_threads.clamp(1, n.max(1));
    let chunk = n.div_ceil(threads);
    let enabled = dc_telemetry::registry().is_enabled();
    // Each worker returns its chunk's results in order; joining the handles
    // in spawn order then reassembles the global order with no placeholder
    // slots.  A worker panic is propagated (`resume_unwind`), not wrapped —
    // the panic payload and message survive to the caller's test harness.
    let chunk_results: Vec<(Vec<R>, dc_telemetry::ThreadDelta)> = std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        for (shard_chunk, batch_chunk) in shards.chunks_mut(chunk).zip(batches.chunks(chunk)) {
            handles.push(scope.spawn(move || {
                let reg = dc_telemetry::registry();
                reg.set_enabled(enabled);
                let mut results = Vec::with_capacity(shard_chunk.len());
                for (shard, batch) in shard_chunk.iter_mut().zip(batch_chunk) {
                    let span = reg.span("shard.apply");
                    results.push(f(shard, batch));
                    span.finish();
                }
                (results, reg.drain())
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for (results, delta) in chunk_results {
        out.extend(results);
        delta.merge_into_current();
    }
    out
}

/// Record the router's per-round batch-size imbalance as gauges: the
/// largest sub-batch, the mean, and their ratio (1.0 = perfectly even).
/// All three are functions of the deterministic routing decision, so they
/// are structural fields in the telemetry dump.
pub(crate) fn record_batch_imbalance(sub_batches: &[OperationBatch]) {
    let reg = dc_telemetry::registry();
    if !reg.is_enabled() || sub_batches.is_empty() {
        return;
    }
    let max = sub_batches.iter().map(|b| b.len()).max().unwrap_or(0);
    let total: usize = sub_batches.iter().map(|b| b.len()).sum();
    let mean = total as f64 / sub_batches.len() as f64;
    reg.gauge("shard.batch_max", max as f64);
    reg.gauge("shard.batch_mean", mean);
    reg.gauge(
        "shard.batch_imbalance",
        if mean > 0.0 { max as f64 / mean } else { 1.0 },
    );
}

/// Map `f` over `items` on a scoped thread pool of at most `max_threads`
/// workers (contiguous chunks, results in input order).  The refinement
/// pass uses this to refresh model flags region-parallel; `f` must be a
/// pure function of its item for the fan-out to stay deterministic.  Small
/// inputs (or `max_threads <= 1`) run inline with no thread overhead.
pub(crate) fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    max_threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if max_threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let threads = max_threads.min(n);
    let chunk = n.div_ceil(threads);
    let enabled = dc_telemetry::registry().is_enabled();
    // Same shape as `parallel_shard_rounds`: per-chunk result vectors
    // reassembled in spawn order, worker panics propagated verbatim.
    let chunk_results: Vec<(Vec<R>, dc_telemetry::ThreadDelta)> = std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        for item_chunk in items.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let reg = dc_telemetry::registry();
                reg.set_enabled(enabled);
                let results = item_chunk.iter().map(f).collect::<Vec<R>>();
                (results, reg.drain())
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for (results, delta) in chunk_results {
        out.extend(results);
        delta.merge_into_current();
    }
    out
}

/// What one sharded round did: the merged global view plus the per-shard
/// reports it was summed from, plus the cross-shard refinement pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRoundReport {
    /// The global view: every counter is the field-wise sum of the per-shard
    /// reports (and `score` the sum of the per-shard objective scores).
    pub merged: RoundReport,
    /// One [`RoundReport`] per shard, in shard order.
    pub per_shard: Vec<RoundReport>,
    /// What the cross-shard refinement pass did after the per-shard rounds
    /// (`None` with one shard, where there is nothing to refine).
    pub refine: Option<RefineReport>,
}

pub(crate) fn merge_round_reports(
    round: usize,
    per_shard: Vec<RoundReport>,
    refine: Option<RefineReport>,
) -> ShardedRoundReport {
    let mut merged = RoundReport {
        round,
        operations: 0,
        isolated: 0,
        objects: 0,
        clusters: 0,
        merges_applied: 0,
        splits_applied: 0,
        objective_evaluations: 0,
        full_aggregate_builds: 0,
        score: 0.0,
    };
    for r in &per_shard {
        merged.operations += r.operations;
        merged.isolated += r.isolated;
        merged.objects += r.objects;
        merged.clusters += r.clusters;
        merged.merges_applied += r.merges_applied;
        merged.splits_applied += r.splits_applied;
        merged.objective_evaluations += r.objective_evaluations;
        merged.full_aggregate_builds += r.full_aggregate_builds;
        merged.score += r.score;
    }
    ShardedRoundReport {
        merged,
        per_shard,
        refine,
    }
}

/// N independent [`Engine`] shards served in parallel behind one facade,
/// with a cross-shard refinement pass closing the partition's quality gap
/// after every round (see [`crate::refine`]).
pub struct ShardedEngine {
    shards: Vec<Engine>,
    router: ShardRouter,
    assignment: BTreeMap<ObjectId, usize>,
    rounds_served: usize,
    max_threads: usize,
    /// `None` with one shard: the partition is the identity and there is
    /// nothing to refine.
    refiner: Option<CrossShardRefiner>,
}

impl ShardedEngine {
    /// Partition an already-populated `(graph, clustering)` pair (typically
    /// the batch algorithm's output, like [`Engine::new`]) across the
    /// router's shards and stand up one engine per shard.  Performs one full
    /// aggregate build per shard — the same one-off cost `Engine::new` pays,
    /// split N ways — and, with more than one shard, builds the cross-shard
    /// refinement state (boundary index, recovered cross edges, mirror
    /// graph) and runs the initial repair pass.
    ///
    /// The clustering's id watermark must fit the shard-0 namespace (ids
    /// below `1 << 56`) when partitioning across more than one shard —
    /// true for any clustering produced by the batch algorithms or a plain
    /// [`Engine`].  A [`ShardedEngine::merged_clustering`] (or
    /// [`ShardedEngine::refined_clustering`]) from a previous *multi-shard*
    /// run does **not** qualify: the shard count of a partition is fixed for
    /// its lifetime, and this constructor returns
    /// [`ShardConfigError::WatermarkOverflow`] rather than silently
    /// re-tagging ids.  Re-sharding means re-clustering from the records.
    pub fn new(
        router: ShardRouter,
        graph: SimilarityGraph,
        clustering: Clustering,
        dynamicc: DynamicC,
    ) -> Result<Self, ShardConfigError> {
        Self::with_refinement(router, graph, clustering, dynamicc, true)
    }

    /// [`ShardedEngine::new`] without the cross-shard refinement layer: the
    /// *raw* throughput mode.  Cross-shard similarity edges are simply
    /// dropped (the pre-refinement semantics), every round is fully
    /// parallel with no serial repair pass, and
    /// [`ShardedEngine::refined_clustering`] degrades to
    /// [`ShardedEngine::merged_clustering`].  Use this when linear scaling
    /// matters more than pair-exact quality; `bench-shard-quality` measures
    /// exactly what the trade costs.
    pub fn new_raw(
        router: ShardRouter,
        graph: SimilarityGraph,
        clustering: Clustering,
        dynamicc: DynamicC,
    ) -> Result<Self, ShardConfigError> {
        Self::with_refinement(router, graph, clustering, dynamicc, false)
    }

    fn with_refinement(
        router: ShardRouter,
        graph: SimilarityGraph,
        clustering: Clustering,
        dynamicc: DynamicC,
        refinement: bool,
    ) -> Result<Self, ShardConfigError> {
        let n = router.n_shards();
        let partition = partition_state(&router, &graph, &clustering)?;
        let shards: Vec<Engine> = partition
            .seeds
            .into_iter()
            .zip(distribute_dynamicc(dynamicc, n))
            .map(|(seed, d)| Engine::new(seed.graph, seed.clustering, d))
            .collect();
        let refiner = if refinement && n > 1 {
            let engines: Vec<&Engine> = shards.iter().collect();
            Some(CrossShardRefiner::build(
                &router,
                &engines,
                &partition.assignment,
                n,
            )?)
        } else {
            None
        };
        Ok(ShardedEngine {
            shards,
            router,
            assignment: partition.assignment,
            rounds_served: 0,
            max_threads: n,
            refiner,
        })
    }

    /// Cap the number of worker threads a round fans out to (default: one
    /// per shard).  Thread count never changes results — shards are
    /// independent — only wall-clock.
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads.max(1);
        self
    }

    /// Serve one round: split the batch into per-shard sub-batches with the
    /// sticky router, run every shard's [`Engine::apply_round`] in parallel,
    /// run the cross-shard refinement pass over the touched records, and
    /// merge the reports.  No shard performs a full aggregate build in
    /// steady state, and the merged report's `full_aggregate_builds` (kept
    /// visible to the calling thread by the worker-sink merge inside the
    /// thread pool) proves it.
    ///
    /// Telemetry: the round is bracketed by a `round.total` span whose
    /// coordinating-thread phases are `round.route`, `round.shard_apply`,
    /// and `round.refine`; per-shard wall time (`shard.apply`) merges back
    /// from the workers, and the batch-imbalance gauges record how skewed
    /// the router's split was this round.
    pub fn apply_round(&mut self, batch: &OperationBatch) -> ShardedRoundReport {
        let reg = dc_telemetry::registry();
        let round_span = reg.span("round.total");
        let span = reg.span("round.route");
        let routed = self.router.route_batch(batch, &mut self.assignment);
        span.finish();
        record_batch_imbalance(&routed.sub_batches);
        let span = reg.span("round.shard_apply");
        let reports = parallel_shard_rounds(
            &mut self.shards,
            &routed.sub_batches,
            self.max_threads,
            |engine, sub| engine.apply_round(sub),
        );
        span.finish();
        let span = reg.span("round.refine");
        let refine = self.refiner.as_mut().map(|refiner| {
            let engines: Vec<&Engine> = self.shards.iter().collect();
            refiner.apply_round(batch, &routed.op_shards, &engines, self.max_threads)
        });
        span.finish();
        self.rounds_served += 1;
        round_span.finish();
        merge_round_reports(self.rounds_served, reports, refine)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, in shard order.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// The router in use.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Rounds served so far.
    pub fn rounds_served(&self) -> usize {
        self.rounds_served
    }

    /// The shard currently owning `id`, if the object is live.
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.assignment.get(&id).copied()
    }

    /// Live objects across all shards.
    pub fn object_count(&self) -> usize {
        self.assignment.len()
    }

    /// Cross-shard similarity edges currently missing from the per-shard
    /// graphs and **recovered** by the refinement pass — exact across
    /// rounds: the counter grows when a served round introduces a
    /// cross-shard edge and shrinks when one endpoint is removed or updated
    /// apart.  (Before refinement existed this was the
    /// `cross_shard_edges_dropped` loss, counted at the initial partition
    /// only.)  Always 0 with one shard.
    pub fn cross_shard_edges_recovered(&self) -> usize {
        self.refiner
            .as_ref()
            .map_or(0, CrossShardRefiner::cross_edges_recovered)
    }

    /// The report of the most recent refinement pass (the initial repair
    /// right after construction, then one per served round); `None` with one
    /// shard.
    pub fn last_refine_report(&self) -> Option<RefineReport> {
        self.refiner.as_ref().map(CrossShardRefiner::last_report)
    }

    /// Diagnostic mode: make the refinement pass re-run the full global
    /// fixed point every round instead of restricting repair to the dirty
    /// regions the round's operations touched.  Both modes produce the same
    /// refined clustering — full repair just pays the pre-incremental serial
    /// cost, which equivalence tests and `bench-shard-quality` use as the
    /// reference the dirty-region path is measured against.  No-op with one
    /// shard.
    pub fn set_full_repair(&mut self, full_repair: bool) {
        if let Some(refiner) = self.refiner.as_mut() {
            refiner.set_full_repair(full_repair);
        }
    }

    /// The global [`DynamicCStats`]: the field-wise sum of the per-shard
    /// statistics.  (The refinement pass keeps its own counters in
    /// [`RefineReport`]; it never touches the per-shard statistics.)
    pub fn stats(&self) -> DynamicCStats {
        DynamicCStats::merged(self.shards.iter().map(|s| *s.stats()))
    }

    /// Total pairwise similarity computations: the per-shard graphs' sum
    /// plus the cross-shard boundary pairs computed by the refinement pass.
    pub fn comparisons(&self) -> u64 {
        self.shard_comparisons()
            + self
                .refiner
                .as_ref()
                .map_or(0, CrossShardRefiner::cross_comparisons)
    }

    /// Pairwise similarity computations performed by the per-shard graphs
    /// alone (excluding the refinement pass's cross-shard boundary pairs).
    /// This component is durable per shard, so it is bit-identical across
    /// restarts of a [`ShardedDurableEngine`].
    pub fn shard_comparisons(&self) -> u64 {
        self.shards.iter().map(|s| s.graph().comparisons()).sum()
    }

    /// The merged global clustering: the union of the per-shard clusterings
    /// under their disjoint id namespaces, with the watermark at the maximum
    /// of the per-shard watermarks.  This is the *pre-refinement* view; see
    /// [`ShardedEngine::refined_clustering`] for the repaired one.
    pub fn merged_clustering(&self) -> Clustering {
        merge_clusterings(self.shards.iter().map(|s| s.clustering()))
    }

    /// The refined global clustering: the merged per-shard clusterings with
    /// the cross-shard repair applied (recovered edges made visible, then
    /// the trained merge/split passes run globally).  With one shard this is
    /// exactly [`ShardedEngine::merged_clustering`].  Recomputed after every
    /// round; repair-created clusters carry ids from the reserved refine
    /// namespace, so the result must not seed a new multi-shard partition.
    pub fn refined_clustering(&self) -> Clustering {
        match &self.refiner {
            Some(refiner) => refiner.refined().clone(),
            None => self.merged_clustering(),
        }
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("objects", &self.assignment.len())
            .field("rounds_served", &self.rounds_served)
            .field("router", &self.router)
            .finish()
    }
}

/// Union per-shard clusterings into one global clustering (the id
/// namespaces are disjoint by construction, so this cannot collide).
pub(crate) fn merge_clusterings<'a>(
    clusterings: impl Iterator<Item = &'a Clustering>,
) -> Clustering {
    let mut merged = Clustering::new();
    let mut watermark = 0u64;
    for clustering in clusterings {
        for (cid, cluster) in clustering.iter() {
            merged
                .insert_cluster_with_id(cid, cluster.iter())
                // dc-lint: allow(R1) reason="construction invariant: each shard allocates cluster ids from its own shard_id_base namespace (validated at partition time), so a collision is impossible"
                .expect("shard id namespaces are disjoint");
        }
        watermark = watermark.max(clustering.id_watermark());
    }
    merged.set_id_watermark(watermark);
    merged
}

/// What [`ShardedDurableEngine::open`] did to reach a servable state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedRecoveryReport {
    /// Whether existing durable state was recovered (vs a fresh partition of
    /// the bootstrap state).
    pub recovered: bool,
    /// The globally committed round recovery landed on — the minimum of the
    /// shards' recoverable rounds.
    pub committed_round: u64,
    /// WAL rounds replayed, summed over the shards.
    pub replayed_rounds: usize,
    /// Whether any shard dropped a torn WAL tail.
    pub dropped_torn_tail: bool,
    /// How far ahead the furthest shard had logged beyond the committed
    /// round (those rounds were never acknowledged and were rolled back).
    pub rolled_back_rounds: u64,
    /// Shard-rounds re-derived from the group-commit log: in group-commit
    /// mode a shard's WAL tail is staged without its own fsync, so a crash
    /// can lose sub-batches of rounds the refine WAL committed.  Recovery
    /// re-routes those rounds from the refine WAL and re-applies them to
    /// the lagging shards (one count per shard per healed round).  Always 0
    /// in synchronous mode, where every shard fsyncs before the round
    /// commits.
    pub healed_rounds: u64,
    /// Rounds the cross-shard refinement layer replayed from its own WAL on
    /// top of its snapshot (0 with one shard).
    pub refine_replayed_rounds: usize,
    /// One [`RecoveryReport`] per shard, in shard order.
    pub per_shard: Vec<RecoveryReport>,
}

/// A crash-safe [`ShardedEngine`]: one WAL + snapshot directory per shard,
/// globally coordinated checkpoints, and min-committed-round recovery.
pub struct ShardedDurableEngine {
    shards: Vec<DurableEngine>,
    router: ShardRouter,
    assignment: BTreeMap<ObjectId, usize>,
    rounds_served: usize,
    max_threads: usize,
    options: DurabilityOptions,
    dir: PathBuf,
    /// The cross-shard refinement layer and its durable home (`None` with
    /// one shard).  The refined view is history-bearing state: every round's
    /// full batch is logged in `refine/` before the pass runs, and the view
    /// is snapshotted at checkpoints, so recovery reloads the snapshot and
    /// replays the same pass deterministically over the logged tail — see
    /// [`crate::refine`].
    refine: Option<DurableRefine>,
}

/// The refinement layer's durable plumbing: its refiner plus the `refine/`
/// directory's WAL and snapshotter.  The `refine/` WAL doubles as the
/// **group-commit log**: it holds every round's *full* batch, so in
/// group-commit mode its single per-round fsync is the commit point from
/// which any shard's lost (never-fsynced) sub-batch tail can be re-derived
/// and healed on recovery.  Fields are crate-visible so the pipelined
/// front-end ([`crate::pipeline`]) can drive the same WAL/snapshot plumbing
/// from its coordinator thread.
pub(crate) struct DurableRefine {
    pub(crate) refiner: CrossShardRefiner,
    pub(crate) wal: Wal,
    pub(crate) snapshotter: Snapshotter,
}

fn refine_dir(dir: &Path) -> PathBuf {
    dir.join("refine")
}

/// Shards never checkpoint on their own: a per-shard auto-checkpoint could
/// snapshot a round that other shards have not yet logged, putting durable
/// state ahead of the globally committed round.
const PER_SHARD_OPTIONS: DurabilityOptions = DurabilityOptions {
    checkpoint_every_rounds: 0,
    // Group commit is coordinated by the sharded engine (it owns the single
    // commit-point fsync); the per-shard engines never group-commit on
    // their own.
    group_commit: false,
};

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

/// Derive the object-to-shard assignment from the shard graphs (ownership is
/// never persisted: each shard's graph knows exactly which objects it owns).
fn derive_assignment(shards: &[DurableEngine]) -> Result<BTreeMap<ObjectId, usize>, StorageError> {
    let mut assignment: BTreeMap<ObjectId, usize> = BTreeMap::new();
    for (shard, engine) in shards.iter().enumerate() {
        for id in engine.engine().graph().object_ids() {
            if assignment.insert(id, shard).is_some() {
                return Err(StorageError::Inconsistent(format!(
                    "object {id} is owned by more than one shard"
                )));
            }
        }
    }
    Ok(assignment)
}

impl ShardedDurableEngine {
    /// Open the sharded durable engine rooted at `dir` (one subdirectory per
    /// shard): recover every shard to the globally committed round if
    /// durable state exists, otherwise partition the bootstrap state and
    /// write each shard's initial checkpoint.
    ///
    /// As with [`DurableEngine::open`], `graph_config` and `dynamicc` are
    /// construction-time inputs supplied by the caller on every open; the
    /// router must be configured identically across restarts (same shard
    /// count, same blocking-derived keys), since the on-disk partition was
    /// produced by it.
    pub fn open(
        dir: impl AsRef<Path>,
        router: ShardRouter,
        graph_config: GraphConfig,
        dynamicc: DynamicC,
        options: DurabilityOptions,
        bootstrap: impl FnOnce() -> (SimilarityGraph, Clustering),
    ) -> Result<(Self, ShardedRecoveryReport), StorageError> {
        let dir = dir.as_ref();
        let n = router.n_shards();
        if n > MAX_SHARDS - 1 {
            return Err(StorageError::Inconsistent(
                ShardConfigError::TooManyShards {
                    n_shards: n,
                    max_shards: MAX_SHARDS - 1,
                }
                .to_string(),
            ));
        }
        std::fs::create_dir_all(dir).map_err(|e| StorageError::Io {
            path: dir.to_path_buf(),
            op: "create dir",
            source: e,
        })?;
        if shard_dir(dir, n).is_dir() {
            return Err(StorageError::Inconsistent(format!(
                "{} was partitioned for more than {n} shards",
                dir.display()
            )));
        }

        // Pass 1: find the globally committed round.  With more than one
        // shard the `refine/` WAL is the commit point: a round is
        // acknowledged only after the full batch is durably there
        // (synchronous mode appends it *last*, after every shard's own
        // fsync, so its durable round is exactly the old minimum; in
        // group-commit mode its single fsync *is* the round's commit, and
        // shards whose never-fsynced tails fell short are healed from it
        // below).  With one shard the shard's own WAL is the commit point.
        // A shard — or the refine directory — without durable state forces
        // the fresh path (a crash during a fresh open leaves a prefix of
        // the directories initialized at round 0; re-running the fresh path
        // below recovers those and bootstraps the rest).
        let mut durable_rounds = Vec::with_capacity(n);
        let mut peek_dropped_torn_tail = false;
        for shard in 0..n {
            let (round, dropped) = DurableEngine::last_durable_round(&shard_dir(dir, shard))?;
            peek_dropped_torn_tail |= dropped;
            durable_rounds.push(round);
        }
        if n > 1 {
            let (round, dropped) = DurableEngine::last_durable_round(&refine_dir(dir))?;
            peek_dropped_torn_tail |= dropped;
            durable_rounds.push(round);
        }
        // The commit point is the group-commit log's round (the last entry
        // peeked), valid only when every directory has durable state.
        let committed = match durable_rounds.last() {
            Some(last) if durable_rounds.iter().all(Option::is_some) => *last,
            _ => None,
        };

        let dynamiccs = distribute_dynamicc(dynamicc, n);
        let mut shards = Vec::with_capacity(n);
        let mut report = ShardedRecoveryReport {
            per_shard: Vec::with_capacity(n),
            ..ShardedRecoveryReport::default()
        };
        match committed {
            Some(committed) => {
                report.recovered = true;
                report.committed_round = committed;
                report.dropped_torn_tail = peek_dropped_torn_tail;
                // Every entry is Some here (that is what selected this
                // branch); the fallback keeps the arithmetic total.
                report.rolled_back_rounds = durable_rounds
                    .iter()
                    .map(|r| r.unwrap_or(committed).saturating_sub(committed))
                    .max()
                    .unwrap_or(0);
                for (shard, d) in dynamiccs.into_iter().enumerate() {
                    let (engine, shard_report) = DurableEngine::open_with_replay_cap(
                        shard_dir(dir, shard),
                        graph_config.clone(),
                        d,
                        PER_SHARD_OPTIONS,
                        Some(committed),
                        // dc-lint: allow(R1) reason="the bootstrap closure is only invoked when a shard directory has no durable state, and this branch was selected because every directory has some; reaching it means last_durable_round and open disagree about the same file"
                        || unreachable!("recovery must not bootstrap"),
                    )?;
                    let recovered_to = engine.rounds_served() as u64;
                    // A shard may land *below* the committed round only when
                    // the group-commit log can heal it (more than one shard);
                    // above it is impossible (the replay cap) and flagged.
                    if recovered_to > committed || (n == 1 && recovered_to != committed) {
                        return Err(StorageError::Inconsistent(format!(
                            "shard {shard} recovered to round {recovered_to} but the committed \
                             round is {committed}",
                        )));
                    }
                    report.replayed_rounds += shard_report.replayed_rounds;
                    report.dropped_torn_tail |= shard_report.dropped_torn_tail;
                    report.per_shard.push(shard_report);
                    shards.push(engine);
                }
            }
            None => {
                let (graph, clustering) = bootstrap();
                let partition = partition_state(&router, &graph, &clustering)
                    .map_err(|e| StorageError::Inconsistent(e.to_string()))?;
                for ((shard, seed), d) in partition.seeds.into_iter().enumerate().zip(dynamiccs) {
                    let (engine, shard_report) = DurableEngine::open(
                        shard_dir(dir, shard),
                        graph_config.clone(),
                        d,
                        PER_SHARD_OPTIONS,
                        move || (seed.graph, seed.clustering),
                    )?;
                    if engine.rounds_served() != 0 {
                        return Err(StorageError::Inconsistent(format!(
                            "shard {shard} has {} served rounds but other shards are fresh",
                            engine.rounds_served()
                        )));
                    }
                    report.per_shard.push(shard_report);
                    shards.push(engine);
                }
            }
        }

        // The object-to-shard assignment is derived, not persisted: each
        // shard's recovered graph knows exactly which objects it owns.
        let mut assignment = derive_assignment(&shards)?;

        let recovered = report.recovered;
        let committed_round = committed.unwrap_or(0);
        let refine = if n > 1 {
            Some(Self::open_refine(
                dir,
                &router,
                &graph_config,
                &mut shards,
                &assignment,
                recovered,
                committed_round,
                &mut report,
            )?)
        } else {
            None
        };
        if report.healed_rounds > 0 {
            // Healing re-applied lost rounds to lagging shards, so the
            // ownership derived above is stale — derive it again from the
            // healed graphs.
            assignment = derive_assignment(&shards)?;
        }
        if let Some(refine) = &refine {
            if recovered && refine.refiner.shard_map() != assignment {
                return Err(StorageError::Inconsistent(
                    "replayed refine assignment disagrees with the recovered shard \
                     ownership"
                        .into(),
                ));
            }
        }

        let rounds_served = shards[0].rounds_served();
        Ok((
            ShardedDurableEngine {
                shards,
                router,
                assignment,
                rounds_served,
                max_threads: n,
                options,
                dir: dir.to_path_buf(),
                refine,
            },
            report,
        ))
    }

    /// Bring the `refine/` directory to the committed round: on a fresh open
    /// build the refiner from the freshly partitioned shards and write its
    /// initial snapshot; on recovery load the latest refine snapshot and
    /// replay the logged batch tail through the same pass the original run
    /// performed (recomputing pair similarities against the restored mirror,
    /// which reproduces it bit-for-bit — see [`crate::refine`]).
    ///
    /// The replay doubles as the **healing pass** for group-commit mode:
    /// each replayed round is re-routed, and any shard whose recovered state
    /// stops short of it (its staged, never-fsynced WAL tail did not survive
    /// the crash) gets its sub-batch re-logged and re-applied — the refine
    /// WAL holds every committed round's full batch, so nothing committed
    /// can be lost.  Healed shard WALs are fsynced once at the end.
    #[allow(clippy::too_many_arguments)]
    fn open_refine(
        dir: &Path,
        router: &ShardRouter,
        graph_config: &GraphConfig,
        shards: &mut [DurableEngine],
        assignment: &BTreeMap<ObjectId, usize>,
        recovered: bool,
        committed: u64,
        report: &mut ShardedRecoveryReport,
    ) -> Result<DurableRefine, StorageError> {
        let refine_root = refine_dir(dir);
        let snapshotter = Snapshotter::new(&refine_root)?;
        if !recovered {
            let engines: Vec<&Engine> = shards.iter().map(DurableEngine::engine).collect();
            let refiner = CrossShardRefiner::build(router, &engines, assignment, router.n_shards())
                .map_err(|e| StorageError::Inconsistent(e.to_string()))?;
            snapshotter.write(0, &refiner.snapshot_ref())?;
            let wal = Wal::create(&refine_root, 0)?;
            return Ok(DurableRefine {
                refiner,
                wal,
                snapshotter,
            });
        }

        let Some((snapshot_round, state)) = snapshotter.load_latest::<RefineState>()? else {
            return Err(StorageError::Inconsistent(format!(
                "{} holds recovered shards but no refine snapshot",
                refine_root.display()
            )));
        };
        if snapshot_round > committed {
            return Err(StorageError::Inconsistent(format!(
                "refine snapshot at round {snapshot_round} exceeds the committed \
                 round {committed}"
            )));
        }
        let mut refiner = CrossShardRefiner::import_state(router, graph_config.clone(), state)
            .map_err(|source| StorageError::Codec {
                path: refine_root.join(dc_storage::snapshot::snapshot_file_name(snapshot_round)),
                source,
            })?;

        // Replay the refine WAL tail: re-route each logged batch from the
        // snapshot's sticky assignment, heal any shard the round outran,
        // and run the same pass again.  The pass configuration is shard 0's
        // (all shards carry an identical one — validated at construction).
        let dynamicc = shards
            .first()
            .ok_or_else(|| {
                StorageError::Inconsistent(
                    "refine directory present but no shards were recovered".into(),
                )
            })?
            .engine()
            .dynamicc()
            .clone();
        let mut healed = vec![false; shards.len()];
        let mut replay_assignment = refiner.shard_map();
        let mut replay_round = snapshot_round;
        let mut tail_wal: Option<Wal> = None;
        for (_, path) in list_segments(&refine_root)? {
            let (wal, records, _) = Wal::open_capped(&path, Some(committed))?;
            for record in records {
                if record.round <= replay_round {
                    continue;
                }
                if record.round != replay_round + 1 {
                    return Err(StorageError::Inconsistent(format!(
                        "refine WAL jumps to round {} with the refined view at \
                         round {replay_round}",
                        record.round
                    )));
                }
                let routed = router.route_batch(&record.batch, &mut replay_assignment);
                for (shard, engine) in shards.iter_mut().enumerate() {
                    if (engine.rounds_served() as u64) < record.round {
                        let logged = engine.log_round_nosync(&routed.sub_batches[shard])?;
                        if logged != record.round {
                            return Err(StorageError::Inconsistent(format!(
                                "shard {shard} healed to round {logged} while the group-commit \
                                 log replays round {}",
                                record.round
                            )));
                        }
                        engine.apply_logged(&routed.sub_batches[shard]);
                        healed[shard] = true;
                        report.healed_rounds += 1;
                    }
                }
                refiner.replay_round(
                    &record.batch,
                    &routed.op_shards,
                    &dynamicc,
                    router.n_shards(),
                );
                replay_round = record.round;
                report.refine_replayed_rounds += 1;
            }
            tail_wal = Some(wal);
        }
        if replay_round != committed {
            return Err(StorageError::Inconsistent(format!(
                "refine WAL ends at round {replay_round} but the committed round \
                 is {committed}"
            )));
        }
        // One fsync per healed shard seals the re-logged tails (recovery
        // would heal them again if this were lost, so correctness does not
        // depend on it — it just restores the synchronous invariant that
        // every shard WAL durably holds the committed round).
        for (shard, engine) in shards.iter_mut().enumerate() {
            if healed[shard] {
                engine.wal_sync()?;
            }
        }
        let wal = match tail_wal {
            Some(wal) if wal.last_round() == committed && wal.start_round() >= snapshot_round => {
                wal
            }
            _ => Wal::create(&refine_root, committed)?,
        };
        Ok(DurableRefine {
            refiner,
            wal,
            snapshotter,
        })
    }

    /// Cap the number of worker threads a round fans out to (default: one
    /// per shard).
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads.max(1);
        self
    }

    /// Serve one round durably: split the batch, then let every shard
    /// log-then-apply its sub-batch in parallel.  The round is committed
    /// once every shard has logged it; a crash that reaches only some shards
    /// is rolled back by the next open.  Checkpoints run globally per
    /// [`DurabilityOptions::checkpoint_every_rounds`], after the round has
    /// completed on every shard.
    ///
    /// With [`DurabilityOptions::group_commit`] set, the round's WAL appends
    /// are *staged* (written, not fsynced) on every shard and the full batch
    /// staged on the refine WAL, then a **single fsync** of the refine WAL
    /// commits the round — N+1 fsyncs per round become 1.  The commit rule
    /// is unchanged: the refine WAL durably holds the full batch, from which
    /// every shard's sub-batch is re-derived on recovery (shards whose
    /// staged tails were lost are healed — see
    /// [`ShardedRecoveryReport::healed_rounds`]).
    ///
    /// An `Err` leaves the engine in an unspecified in-memory state (some
    /// shards may have applied the round); drop it and reopen.
    pub fn apply_round(
        &mut self,
        batch: &OperationBatch,
    ) -> Result<ShardedRoundReport, StorageError> {
        if self.options.group_commit {
            return self.apply_round_grouped(batch);
        }
        let reg = dc_telemetry::registry();
        let round_span = reg.span("round.total");
        let span = reg.span("round.route");
        let routed = self.router.route_batch(batch, &mut self.assignment);
        span.finish();
        record_batch_imbalance(&routed.sub_batches);
        let span = reg.span("round.shard_apply");
        let results = parallel_shard_rounds(
            &mut self.shards,
            &routed.sub_batches,
            self.max_threads,
            |shard, sub| shard.apply_round(sub),
        );
        span.finish();
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        let round = self.rounds_served as u64 + 1;
        let refine = match &mut self.refine {
            Some(refine) => {
                // Log-then-apply for the refined view: the round is only
                // acknowledged once the refine WAL holds the full batch, so
                // recovery can replay the same pass deterministically.
                let span = reg.span("round.refine_wal_append");
                refine.wal.append_round(round, batch)?;
                span.finish();
                let span = reg.span("round.refine");
                let engines: Vec<&Engine> = self.shards.iter().map(DurableEngine::engine).collect();
                let report = refine.refiner.apply_round(
                    batch,
                    &routed.op_shards,
                    &engines,
                    self.max_threads,
                );
                span.finish();
                Some(report)
            }
            None => None,
        };
        self.rounds_served += 1;
        let every = self.options.checkpoint_every_rounds as u64;
        if every > 0 && (self.rounds_served as u64).is_multiple_of(every) {
            let span = reg.span("round.checkpoint");
            self.checkpoint()?;
            span.finish();
        }
        round_span.finish();
        Ok(merge_round_reports(self.rounds_served, reports, refine))
    }

    /// The group-commit round: stage every shard's sub-batch append and the
    /// refine WAL's full-batch append without fsync, commit the round with
    /// one fsync of the refine WAL (the group-commit log), then apply in
    /// parallel and refine as usual.  With one shard there is no refine WAL
    /// and the single fsync lands on the shard's own WAL instead.
    fn apply_round_grouped(
        &mut self,
        batch: &OperationBatch,
    ) -> Result<ShardedRoundReport, StorageError> {
        let reg = dc_telemetry::registry();
        let round_span = reg.span("round.total");
        let span = reg.span("round.route");
        let routed = self.router.route_batch(batch, &mut self.assignment);
        span.finish();
        record_batch_imbalance(&routed.sub_batches);

        let round = self.rounds_served as u64 + 1;
        let span = reg.span("round.group_commit");
        for (shard, sub) in self.shards.iter_mut().zip(&routed.sub_batches) {
            let logged = shard.log_round_nosync(sub)?;
            debug_assert_eq!(logged, round, "shards advance in lock-step");
        }
        match &mut self.refine {
            Some(refine) => {
                refine.wal.append_round_nosync(round, batch)?;
                refine.wal.sync()?;
            }
            // One shard: no refine WAL exists, so the shard's own staged
            // append is sealed directly — still exactly one fsync.
            None => self.shards[0].wal_sync()?,
        }
        span.finish();

        let span = reg.span("round.shard_apply");
        let reports = parallel_shard_rounds(
            &mut self.shards,
            &routed.sub_batches,
            self.max_threads,
            |shard, sub| shard.apply_logged(sub),
        );
        span.finish();
        let refine = match &mut self.refine {
            Some(refine) => {
                let span = reg.span("round.refine");
                let engines: Vec<&Engine> = self.shards.iter().map(DurableEngine::engine).collect();
                let report = refine.refiner.apply_round(
                    batch,
                    &routed.op_shards,
                    &engines,
                    self.max_threads,
                );
                span.finish();
                Some(report)
            }
            None => None,
        };
        self.rounds_served += 1;
        let every = self.options.checkpoint_every_rounds as u64;
        if every > 0 && (self.rounds_served as u64).is_multiple_of(every) {
            let span = reg.span("round.checkpoint");
            self.checkpoint()?;
            span.finish();
        }
        round_span.finish();
        Ok(merge_round_reports(self.rounds_served, reports, refine))
    }

    /// Checkpoint every shard now (snapshot + WAL rotation + prune per
    /// shard), then the refinement layer (refine snapshot written *after*
    /// every shard's, so it can never get ahead of them).  Returns the
    /// checkpointed round.
    pub fn checkpoint(&mut self) -> Result<u64, StorageError> {
        for shard in &mut self.shards {
            shard.checkpoint()?;
        }
        let round = self.rounds_served as u64;
        if let Some(refine) = &mut self.refine {
            refine
                .snapshotter
                .write(round, &refine.refiner.snapshot_ref())?;
            if refine.wal.start_round() != round {
                refine.wal = Wal::create(refine.snapshotter.dir(), round)?;
            }
            refine.snapshotter.prune_obsolete(round)?;
        }
        Ok(round)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard durable engines, in shard order.
    pub fn shards(&self) -> &[DurableEngine] {
        &self.shards
    }

    /// Rounds served across the engine's whole (possibly multi-process)
    /// lifetime.
    pub fn rounds_served(&self) -> usize {
        self.rounds_served
    }

    /// The state directory this engine is rooted at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard currently owning `id`, if the object is live.
    pub fn shard_of(&self, id: ObjectId) -> Option<usize> {
        self.assignment.get(&id).copied()
    }

    /// The global [`DynamicCStats`]: the field-wise sum of the per-shard
    /// statistics.
    pub fn stats(&self) -> DynamicCStats {
        DynamicCStats::merged(self.shards.iter().map(|s| *s.stats()))
    }

    /// Total pairwise similarity computations: the per-shard graphs' sum
    /// plus the cross-shard boundary pairs computed by this process's
    /// refinement passes.  The cross-shard component counts work *since this
    /// open* (recovery rebuilds the derived cross-shard index, and that
    /// rebuild is the work the process performed); the per-shard component
    /// is durable and restart-exact — see
    /// [`ShardedDurableEngine::shard_comparisons`].
    pub fn comparisons(&self) -> u64 {
        self.shard_comparisons()
            + self
                .refine
                .as_ref()
                .map_or(0, |r| r.refiner.cross_comparisons())
    }

    /// Pairwise similarity computations performed by the per-shard graphs
    /// alone — persisted in the per-shard snapshots, so bit-identical
    /// between a restarted and a never-restarted engine.
    pub fn shard_comparisons(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.engine().graph().comparisons())
            .sum()
    }

    /// Cross-shard edges currently recovered by the refinement pass (see
    /// [`ShardedEngine::cross_shard_edges_recovered`]); restart-exact.
    pub fn cross_shard_edges_recovered(&self) -> usize {
        self.refine
            .as_ref()
            .map_or(0, |r| r.refiner.cross_edges_recovered())
    }

    /// The report of the most recent refinement pass; `None` with one shard.
    pub fn last_refine_report(&self) -> Option<RefineReport> {
        self.refine.as_ref().map(|r| r.refiner.last_report())
    }

    /// The merged global clustering (see
    /// [`ShardedEngine::merged_clustering`]).
    pub fn merged_clustering(&self) -> Clustering {
        merge_clusterings(self.shards.iter().map(|s| s.clustering()))
    }

    /// The refined global clustering (see
    /// [`ShardedEngine::refined_clustering`]); bit-identical across
    /// restarts because the refinement state is rebuilt from the recovered
    /// per-shard graphs.
    pub fn refined_clustering(&self) -> Clustering {
        match &self.refine {
            Some(refine) => refine.refiner.refined().clone(),
            None => self.merged_clustering(),
        }
    }

    /// Disassemble the engine into the parts the pipelined front-end's
    /// coordinator and refine worker own separately while serving — see
    /// [`crate::pipeline`].  [`ShardedDurableEngine::from_pipeline_parts`]
    /// reassembles them after drain.
    pub(crate) fn into_pipeline_parts(self) -> PipelineParts {
        PipelineParts {
            shards: self.shards,
            router: self.router,
            assignment: self.assignment,
            rounds_served: self.rounds_served,
            max_threads: self.max_threads,
            options: self.options,
            dir: self.dir,
            refine: self.refine,
        }
    }

    /// Reassemble an engine from the parts a drained pipeline hands back.
    pub(crate) fn from_pipeline_parts(parts: PipelineParts) -> Self {
        ShardedDurableEngine {
            shards: parts.shards,
            router: parts.router,
            assignment: parts.assignment,
            rounds_served: parts.rounds_served,
            max_threads: parts.max_threads,
            options: parts.options,
            dir: parts.dir,
            refine: parts.refine,
        }
    }
}

/// A [`ShardedDurableEngine`] taken apart for pipelined serving: the
/// coordinator thread owns the shards, router, assignment, and the refine
/// WAL/snapshotter, while the refine worker owns the refiner itself (moved
/// out of [`DurableRefine`] behind a lock by the pipeline).  All fields are
/// exactly the engine's — nothing is copied.
pub(crate) struct PipelineParts {
    pub(crate) shards: Vec<DurableEngine>,
    pub(crate) router: ShardRouter,
    pub(crate) assignment: BTreeMap<ObjectId, usize>,
    pub(crate) rounds_served: usize,
    pub(crate) max_threads: usize,
    pub(crate) options: DurabilityOptions,
    pub(crate) dir: PathBuf,
    pub(crate) refine: Option<DurableRefine>,
}

impl std::fmt::Debug for ShardedDurableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDurableEngine")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("objects", &self.assignment.len())
            .field("rounds_served", &self.rounds_served)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_objective::CorrelationObjective;
    use dc_similarity::blocking::ExhaustiveBlocking;
    use dc_similarity::fixtures::{fixture_record, graph_from_edges};
    use dc_types::{ClusterId, ObjectId, Operation};
    use std::sync::Arc;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn toy_setup() -> (SimilarityGraph, Clustering, DynamicC) {
        let graph = graph_from_edges(4, &[(1, 2, 0.9), (3, 4, 0.8)]);
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        (graph, clustering, dynamicc)
    }

    #[test]
    fn one_shard_partition_is_the_identity() {
        let (graph, clustering, dynamicc) = toy_setup();
        let router = ShardRouter::new(1, Box::new(ExhaustiveBlocking::new()));
        let engine =
            ShardedEngine::new(router, graph.clone(), clustering.clone(), dynamicc).unwrap();
        assert_eq!(engine.shard_count(), 1);
        assert_eq!(engine.cross_shard_edges_recovered(), 0);
        assert!(engine.last_refine_report().is_none());
        assert_eq!(engine.object_count(), 4);
        assert_eq!(engine.comparisons(), graph.comparisons());
        let merged = engine.merged_clustering();
        assert_eq!(merged.cluster_ids(), clustering.cluster_ids());
        assert_eq!(merged.id_watermark(), clustering.id_watermark());
        // With one shard the refined view *is* the merged view.
        let refined = engine.refined_clustering();
        assert_eq!(refined.cluster_ids(), merged.cluster_ids());
    }

    #[test]
    fn partition_covers_every_object_exactly_once() {
        let (graph, clustering, dynamicc) = toy_setup();
        let router = ShardRouter::new(4, Box::new(ExhaustiveBlocking::new()));
        let engine = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap();
        let mut seen = 0usize;
        for shard in engine.shards() {
            seen += shard.clustering().object_count();
            assert_eq!(
                shard.clustering().object_count(),
                shard.graph().object_count(),
                "shard graph and clustering must agree"
            );
        }
        assert_eq!(seen, 4);
        let merged = engine.merged_clustering();
        merged.check_invariants().unwrap();
        assert_eq!(merged.object_count(), 4);
    }

    #[test]
    fn split_donor_clusters_get_shard_tagged_ids() {
        // Force objects of one donor cluster into different shards by
        // routing on content hashes (exhaustive blocking's default key).
        let (graph, clustering, dynamicc) = toy_setup();
        let donor_watermark = clustering.id_watermark();
        let router = ShardRouter::new(4, Box::new(ExhaustiveBlocking::new()));
        let engine = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap();
        for (shard_index, shard) in engine.shards().iter().enumerate() {
            for cid in shard.clustering().cluster_ids() {
                let inherited = cid.raw() < donor_watermark;
                assert!(
                    inherited || cid.shard_tag() == shard_index,
                    "fresh id {cid} in shard {shard_index} must carry the shard tag"
                );
            }
        }
    }

    #[test]
    fn rounds_merge_reports_and_track_assignment() {
        let (graph, clustering, dynamicc) = toy_setup();
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let mut engine = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap();
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(5),
            record: fixture_record(5),
        });
        batch.push(Operation::Remove { id: oid(4) });
        let report = engine.apply_round(&batch);
        assert_eq!(report.merged.round, 1);
        assert_eq!(report.merged.operations, 2);
        assert_eq!(report.per_shard.len(), 2);
        assert_eq!(
            report.merged.operations,
            report.per_shard.iter().map(|r| r.operations).sum::<usize>()
        );
        assert_eq!(
            report.merged.full_aggregate_builds, 0,
            "steady-state rounds must not rebuild aggregates in any shard"
        );
        assert_eq!(engine.object_count(), 4);
        assert!(engine.shard_of(oid(5)).is_some());
        assert!(engine.shard_of(oid(4)).is_none());
        engine.merged_clustering().check_invariants().unwrap();
        assert_eq!(engine.rounds_served(), 1);
    }

    /// Satellite pin: the recovered-edge counter is exact *across rounds*,
    /// not just at the initial partition — a served round that introduces a
    /// cross-shard edge grows it, and removing an endpoint shrinks it.
    #[test]
    fn recovered_edge_counter_is_exact_across_rounds() {
        use dc_similarity::fixtures::EdgeTableMeasure;
        use dc_similarity::GraphConfig;

        // The measure knows an edge to object 5 before 5 exists, so a later
        // round can create a brand-new similarity edge.
        let edges = [(1, 2, 0.9), (3, 4, 0.8), (1, 5, 0.7), (2, 5, 0.6)];
        let config = GraphConfig::new(
            Box::new(EdgeTableMeasure::from_edges(&edges)),
            Box::new(ExhaustiveBlocking::new()),
            0.0,
        );
        let mut graph = SimilarityGraph::empty(config);
        for id in 1..=4 {
            graph.add_object(oid(id), fixture_record(id));
        }
        let clustering = Clustering::singletons((1..=4).map(oid));
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let mut engine = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap();

        let cross_edges = |engine: &ShardedEngine| {
            let mut count = 0;
            for &(a, b, _) in &edges {
                let (sa, sb) = (engine.shard_of(oid(a)), engine.shard_of(oid(b)));
                if let (Some(sa), Some(sb)) = (sa, sb) {
                    if sa != sb {
                        count += 1;
                    }
                }
            }
            count
        };
        assert_eq!(engine.cross_shard_edges_recovered(), cross_edges(&engine));

        // A served round adds object 5 (edges to 1 and 2): the counter must
        // track exactly the cross-shard subset of the new edges.
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(5),
            record: fixture_record(5),
        });
        let report = engine.apply_round(&batch);
        assert_eq!(engine.cross_shard_edges_recovered(), cross_edges(&engine));
        let refine = report.refine.expect("two shards refine");
        assert_eq!(refine.cross_edges_recovered, cross_edges(&engine));

        // Removing object 1 releases its cross-shard edges from the counter.
        let mut batch2 = OperationBatch::new();
        batch2.push(Operation::Remove { id: oid(1) });
        engine.apply_round(&batch2);
        assert_eq!(engine.cross_shard_edges_recovered(), cross_edges(&engine));
    }

    /// Satellite pin: invalid shard configurations surface as typed errors
    /// instead of panicking.
    #[test]
    fn invalid_shard_configuration_is_a_typed_error() {
        // A clustering whose watermark lives outside the shard-0 namespace
        // (e.g. a previous multi-shard run's merged clustering) is rejected.
        let (graph, _, dynamicc) = toy_setup();
        let mut tagged = Clustering::new();
        tagged
            .insert_cluster_with_id(ClusterId::new(shard_id_base(1) + 3), (1..=4).map(oid))
            .unwrap();
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let err = ShardedEngine::new(router, graph.clone(), tagged, dynamicc.clone()).unwrap_err();
        assert!(
            matches!(err, ShardConfigError::WatermarkOverflow { watermark } if watermark > 0),
            "got {err:?}"
        );
        assert!(err.to_string().contains("watermark"));

        // The top namespace is reserved for refinement repair ids.
        let (_, clustering, _) = toy_setup();
        let router = ShardRouter::new(MAX_SHARDS, Box::new(ExhaustiveBlocking::new()));
        let err = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap_err();
        assert_eq!(
            err,
            ShardConfigError::TooManyShards {
                n_shards: MAX_SHARDS,
                max_shards: MAX_SHARDS - 1
            }
        );
        assert!(err.to_string().contains("reserved"));
    }

    /// Satellite pin: writing a refine checkpoint must not clone the refined
    /// clustering (the historical `export_state` path cloned it — O(V) — on
    /// every checkpoint) nor rebuild aggregates, and the borrowed encoder's
    /// bytes must equal the owned state's encoding exactly.
    #[test]
    fn checkpoint_snapshot_is_clone_free_and_byte_identical() {
        use dc_similarity::BuildCounter;
        use dc_types::codec::BinCodec;

        let (graph, clustering, dynamicc) = toy_setup();
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let engine = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap();
        let refiner = engine.refiner.as_ref().expect("two shards refine");

        let owned = refiner.export_state().encode_to_vec();
        let clones_before = dc_types::clustering_clone_count();
        let (borrowed, builds) = BuildCounter::scope(|| refiner.snapshot_ref().encode_to_vec());
        assert_eq!(
            dc_types::clustering_clone_count() - clones_before,
            0,
            "snapshot_ref must not clone the refined clustering"
        );
        assert_eq!(builds, 0, "snapshot_ref must not rebuild aggregates");
        assert_eq!(
            borrowed, owned,
            "borrowed and owned snapshot encodings must be byte-identical"
        );
    }

    /// Satellite pin: user-reachable degenerate inputs on the serving path —
    /// an empty batch and operations naming ids no shard owns — serve
    /// cleanly instead of panicking, and an empty round performs zero repair
    /// work (empty dirty set).
    #[test]
    fn empty_batches_and_unknown_ids_serve_without_repair_work() {
        let (graph, clustering, dynamicc) = toy_setup();
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let mut engine = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap();

        let report = engine.apply_round(&OperationBatch::new());
        assert_eq!(report.merged.operations, 0);
        let refine = report.refine.expect("two shards refine");
        assert_eq!(
            (
                refine.dirty_clusters,
                refine.regions,
                refine.objective_evaluations
            ),
            (0, 0, 0),
            "an empty round must not repair anything"
        );
        assert_eq!((refine.merges_applied, refine.splits_applied), (0, 0));

        // Removing an id no shard has ever seen is a no-op, not a panic.
        let mut batch = OperationBatch::new();
        batch.push(Operation::Remove { id: oid(999) });
        let report = engine.apply_round(&batch);
        assert_eq!(report.merged.operations, 1);
        assert_eq!(engine.object_count(), 4);
        engine.refined_clustering().check_invariants().unwrap();
    }

    /// Satellite pin: a clustering naming an object the graph does not hold
    /// used to panic inside `partition_state`; it is a typed error now.
    #[test]
    fn clustering_object_missing_from_the_graph_is_a_typed_error() {
        let (graph, _, dynamicc) = toy_setup();
        let clustering = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(77)]]).unwrap();
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let err = ShardedEngine::new(router, graph, clustering, dynamicc).unwrap_err();
        assert_eq!(
            err,
            ShardConfigError::ClusteredObjectMissing { id: oid(77) },
            "got {err:?}"
        );
        assert!(err.to_string().contains("no record"));
    }

    /// Satellite pin: a shard carrying a DynamicC configuration different
    /// from shard 0's is rejected at refiner construction with a typed error
    /// — the refiner reads its pass configuration from shard 0 only, so the
    /// divergent shard would otherwise be silently overridden.
    #[test]
    fn mismatched_shard_dynamicc_configs_are_a_typed_error() {
        let (g0, c0, d0) = toy_setup();
        let (g1, c1, _) = toy_setup();
        let divergent = DynamicC::new(
            Arc::new(CorrelationObjective),
            crate::DynamicCConfig {
                theta_scale: 0.5,
                ..crate::DynamicCConfig::default()
            },
        );
        let e0 = Engine::new(g0, c0, d0);
        let e1 = Engine::new(g1, c1, divergent);
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let err = CrossShardRefiner::build(&router, &[&e0, &e1], &BTreeMap::new(), 2).unwrap_err();
        assert_eq!(err, ShardConfigError::MismatchedDynamicCConfig { shard: 1 });
        assert!(err.to_string().contains("shard 1"), "got: {err}");
    }

    /// Satellite pin: an assignment naming an object its shard's graph does
    /// not hold used to panic (`expect("assigned object")`) inside the
    /// refiner's derived-state rebuild; it is a typed error now.
    #[test]
    fn assignment_naming_a_missing_object_is_a_typed_error() {
        let (g0, c0, d0) = toy_setup();
        let (g1, c1, d1) = toy_setup();
        let e0 = Engine::new(g0, c0, d0);
        let e1 = Engine::new(g1, c1, d1);
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let assignment: BTreeMap<ObjectId, usize> = [(oid(99), 0usize)].into_iter().collect();
        let err = CrossShardRefiner::build(&router, &[&e0, &e1], &assignment, 2).unwrap_err();
        assert_eq!(
            err,
            ShardConfigError::AssignedObjectMissing {
                id: oid(99),
                shard: 0
            }
        );
        assert!(err.to_string().contains("99"), "got: {err}");
    }

    /// Satellite pin: a recovered cross-shard edge whose endpoint has a
    /// graph record but no cluster used to panic
    /// (`expect("live object is clustered")`) while seeding the refined
    /// view; it is a typed error now.
    #[test]
    fn cross_edge_to_an_unclustered_object_is_a_typed_error() {
        use dc_similarity::fixtures::EdgeTableMeasure;
        use dc_similarity::GraphConfig;

        let make_graph = |id: u64| {
            let config = GraphConfig::new(
                Box::new(EdgeTableMeasure::from_edges(&[(1, 2, 0.9)])),
                Box::new(ExhaustiveBlocking::new()),
                0.0,
            );
            let mut graph = SimilarityGraph::empty(config);
            graph.add_object(oid(id), fixture_record(id));
            graph
        };
        let dynamicc = DynamicC::with_objective(Arc::new(CorrelationObjective));
        // Shard 0's graph holds object 1 but its clustering does not — the
        // graph/clustering disagreement the historical code panicked on —
        // while the measure recovers a cross-shard edge 1–2.
        let e0 = Engine::new(make_graph(1), Clustering::new(), dynamicc.clone());
        let e1 = Engine::new(
            make_graph(2),
            Clustering::from_groups([vec![oid(2)]]).unwrap(),
            dynamicc,
        );
        let router = ShardRouter::new(2, Box::new(ExhaustiveBlocking::new()));
        let assignment: BTreeMap<ObjectId, usize> =
            [(oid(1), 0usize), (oid(2), 1usize)].into_iter().collect();
        let err = CrossShardRefiner::build(&router, &[&e0, &e1], &assignment, 2).unwrap_err();
        assert_eq!(err, ShardConfigError::UnclusteredObject { id: oid(1) });
        assert!(err.to_string().contains("cluster"), "got: {err}");
    }

    #[test]
    fn parallel_map_preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..23).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x * x),
                expected,
                "{threads} threads"
            );
        }
        assert!(parallel_map(&Vec::<u64>::new(), 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn merged_clustering_watermark_survives_namespace_merges() {
        let mut a = Clustering::new();
        a.insert_cluster_with_id(ClusterId::new(3), [oid(1)])
            .unwrap();
        let mut b = Clustering::new();
        b.insert_cluster_with_id(ClusterId::new(shard_id_base(1) + 7), [oid(2)])
            .unwrap();
        let merged = merge_clusterings([&a, &b].into_iter());
        merged.check_invariants().unwrap();
        assert_eq!(merged.cluster_count(), 2);
        assert_eq!(
            merged.id_watermark(),
            b.id_watermark(),
            "the merged watermark is the max of the shard watermarks"
        );
    }
}
