//! The merge/split model pair, their training buffers, and threshold
//! management (§5.2–§5.4).

use dc_evolution::{LabeledExample, NegativeSampler, RoundExamples, TrainingBuffer};
use dc_ml::{recall_first_threshold, BinaryClassifier, ModelKind};

/// The two classifiers DynamicC serves predictions from, together with their
/// bounded training buffers and recall-first thresholds.
#[derive(Clone)]
pub struct ModelPair {
    kind: ModelKind,
    merge_model: Box<dyn BinaryClassifier>,
    split_model: Box<dyn BinaryClassifier>,
    merge_buffer: TrainingBuffer,
    split_buffer: TrainingBuffer,
    merge_theta: f64,
    split_theta: f64,
    trained: bool,
}

impl ModelPair {
    /// Create an untrained pair.
    pub fn new(kind: ModelKind, buffer_capacity: usize) -> Self {
        ModelPair {
            kind,
            merge_model: kind.build(),
            split_model: kind.build(),
            merge_buffer: TrainingBuffer::new(buffer_capacity),
            split_buffer: TrainingBuffer::new(buffer_capacity),
            merge_theta: 0.5,
            split_theta: 0.5,
            trained: false,
        }
    }

    /// Whether [`ModelPair::retrain`] has been called on non-trivial data.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// The model family in use.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The recall-first threshold of the merge model.
    pub fn merge_theta(&self) -> f64 {
        self.merge_theta
    }

    /// The recall-first threshold of the split model.
    pub fn split_theta(&self) -> f64 {
        self.split_theta
    }

    /// Number of buffered (merge, split) training examples.
    pub fn buffered_examples(&self) -> (usize, usize) {
        (self.merge_buffer.len(), self.split_buffer.len())
    }

    /// Append one round's labeled examples to the buffers, balancing the
    /// negatives against the positives with the weighted sampler (§5.3).
    pub fn absorb_round(&mut self, round: &RoundExamples, sampler: &mut NegativeSampler) {
        // Merge model examples.
        for f in &round.merge_positives {
            self.merge_buffer.push(LabeledExample::new(f.clone(), true));
        }
        let merge_negatives = sampler.sample(
            &round.merge_negatives_active,
            &round.merge_negatives_inactive,
            round.merge_positives.len(),
        );
        for f in merge_negatives {
            self.merge_buffer.push(LabeledExample::new(f, false));
        }
        // Split model examples.
        for f in &round.split_positives {
            self.split_buffer.push(LabeledExample::new(f.clone(), true));
        }
        let split_negatives = sampler.sample(
            &round.split_negatives_active,
            &round.split_negatives_inactive,
            round.split_positives.len(),
        );
        for f in split_negatives {
            self.split_buffer.push(LabeledExample::new(f, false));
        }
    }

    /// Refit both models on their buffers and re-select the recall-first
    /// thresholds.  Returns `true` when at least one model had data to fit.
    pub fn retrain(&mut self) -> bool {
        let mut fitted_any = false;
        let (xs, ys) = self.merge_buffer.to_matrix();
        if !xs.is_empty() {
            self.merge_model = self.kind.build();
            self.merge_model.fit(&xs, &ys);
            self.merge_theta = recall_first_threshold(self.merge_model.as_ref(), &xs, &ys);
            fitted_any = true;
        }
        let (xs, ys) = self.split_buffer.to_matrix();
        if !xs.is_empty() {
            self.split_model = self.kind.build();
            self.split_model.fit(&xs, &ys);
            self.split_theta = recall_first_threshold(self.split_model.as_ref(), &xs, &ys);
            fitted_any = true;
        }
        self.trained = self.trained || fitted_any;
        fitted_any
    }

    /// Probability that a cluster with the given merge features should merge.
    pub fn merge_probability(&self, features: &[f64]) -> f64 {
        self.merge_model.predict_proba(features)
    }

    /// Probability that a cluster with the given split features should split.
    pub fn split_probability(&self, features: &[f64]) -> f64 {
        self.split_model.predict_proba(features)
    }

    /// Whether the merge model flags a cluster at the (scaled) threshold.
    pub fn predicts_merge(&self, features: &[f64], theta_scale: f64) -> bool {
        self.merge_probability(features) >= (self.merge_theta * theta_scale).clamp(0.0, 1.0)
    }

    /// Whether the split model flags a cluster at the (scaled) threshold.
    pub fn predicts_split(&self, features: &[f64], theta_scale: f64) -> bool {
        self.split_probability(features) >= (self.split_theta * theta_scale).clamp(0.0, 1.0)
    }

    /// Direct access to the merge model (for evaluation experiments).
    pub fn merge_model(&self) -> &dyn BinaryClassifier {
        self.merge_model.as_ref()
    }

    /// Direct access to the split model (for evaluation experiments).
    pub fn split_model(&self) -> &dyn BinaryClassifier {
        self.split_model.as_ref()
    }

    /// The merge training buffer as `(features, labels)` (for the ML
    /// evaluation experiments of §7.3).
    pub fn merge_training_data(&self) -> (Vec<Vec<f64>>, Vec<bool>) {
        self.merge_buffer.to_matrix()
    }

    /// The split training buffer as `(features, labels)`.
    pub fn split_training_data(&self) -> (Vec<Vec<f64>>, Vec<bool>) {
        self.split_buffer.to_matrix()
    }
}

impl std::fmt::Debug for ModelPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelPair")
            .field("kind", &self.kind)
            .field("merge_examples", &self.merge_buffer.len())
            .field("split_examples", &self.split_buffer.len())
            .field("merge_theta", &self.merge_theta)
            .field("split_theta", &self.split_theta)
            .field("trained", &self.trained)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_evolution::SamplerConfig;

    /// A synthetic round: positives have high max-inter similarity (they
    /// should merge), negatives have low.
    fn synthetic_round(positives: usize, negatives: usize) -> RoundExamples {
        let mut round = RoundExamples::default();
        for i in 0..positives {
            let jitter = (i % 10) as f64 / 100.0;
            round
                .merge_positives
                .push(vec![0.9 - jitter, 0.8 - jitter, 2.0, 3.0]);
            round
                .split_positives
                .push(vec![0.2 + jitter, 0.7 - jitter, 6.0]);
        }
        for i in 0..negatives {
            let jitter = (i % 10) as f64 / 100.0;
            round
                .merge_negatives_active
                .push(vec![0.9 - jitter, 0.05 + jitter, 2.0, 1.0]);
            round
                .merge_negatives_inactive
                .push(vec![0.95, 0.0, 3.0, 0.0]);
            round
                .split_negatives_active
                .push(vec![0.9 - jitter, 0.1, 3.0]);
            round.split_negatives_inactive.push(vec![0.95, 0.0, 2.0]);
        }
        round
    }

    fn trained_pair() -> ModelPair {
        let mut pair = ModelPair::new(ModelKind::LogisticRegression, 1000);
        let mut sampler = NegativeSampler::new(SamplerConfig::default());
        pair.absorb_round(&synthetic_round(40, 80), &mut sampler);
        assert!(pair.retrain());
        pair
    }

    #[test]
    fn absorb_balances_negatives_to_positives() {
        let mut pair = ModelPair::new(ModelKind::LogisticRegression, 1000);
        let mut sampler = NegativeSampler::new(SamplerConfig::default());
        pair.absorb_round(&synthetic_round(10, 50), &mut sampler);
        let (merge_n, split_n) = pair.buffered_examples();
        assert_eq!(merge_n, 20, "10 positives + 10 sampled negatives");
        assert_eq!(split_n, 20);
        assert!(!pair.is_trained());
    }

    #[test]
    fn retrain_fits_models_and_selects_thresholds() {
        let pair = trained_pair();
        assert!(pair.is_trained());
        assert!(pair.merge_theta() > 0.0 && pair.merge_theta() <= 1.0);
        assert!(pair.split_theta() > 0.0 && pair.split_theta() <= 1.0);
        // The trained merge model separates the synthetic classes.
        assert!(pair.merge_probability(&[0.9, 0.8, 2.0, 3.0]) > 0.5);
        assert!(pair.merge_probability(&[0.95, 0.0, 3.0, 0.0]) < 0.5);
        // And the recall-first threshold flags every positive-like input.
        assert!(pair.predicts_merge(&[0.9, 0.8, 2.0, 3.0], 1.0));
        assert!(pair.predicts_split(&[0.2, 0.7, 6.0], 1.0));
    }

    #[test]
    fn theta_scaling_makes_flagging_more_permissive() {
        let pair = trained_pair();
        // A borderline input: below θ it is not flagged, scaling θ down flags it.
        let borderline = vec![0.9, 0.35, 2.0, 1.0];
        let p = pair.merge_probability(&borderline);
        if p < pair.merge_theta() {
            assert!(!pair.predicts_merge(&borderline, 1.0));
        }
        assert!(pair.predicts_merge(&borderline, (p / pair.merge_theta()).min(1.0) * 0.9));
    }

    #[test]
    fn untrained_pair_predicts_neutral() {
        let pair = ModelPair::new(ModelKind::DecisionTree, 100);
        assert!(!pair.is_trained());
        assert_eq!(pair.merge_probability(&[0.5, 0.5, 1.0, 1.0]), 0.5);
        assert_eq!(pair.kind(), ModelKind::DecisionTree);
        let s = format!("{pair:?}");
        assert!(s.contains("ModelPair"));
    }

    #[test]
    fn retrain_without_data_reports_false() {
        let mut pair = ModelPair::new(ModelKind::LogisticRegression, 100);
        assert!(!pair.retrain());
        assert!(!pair.is_trained());
    }

    #[test]
    fn training_data_accessors_expose_buffers() {
        let pair = trained_pair();
        let (xs, ys) = pair.merge_training_data();
        assert_eq!(xs.len(), ys.len());
        assert!(ys.iter().any(|&y| y) && ys.iter().any(|&y| !y));
        let (xs, _) = pair.split_training_data();
        assert!(xs.iter().all(|x| x.len() == 3));
    }
}
