//! Word pools for the textual generators.
//!
//! The pools are intentionally small and fully deterministic: record-linkage
//! difficulty comes from duplicate corruption, not from vocabulary size, and
//! a compact vocabulary keeps the token-blocking index realistic (shared
//! tokens across different entities, exactly like real citation data).

/// Given first names.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "wei",
    "li",
    "ana",
    "sofia",
    "mohammed",
    "fatima",
    "hiroshi",
    "yuki",
    "carlos",
    "maria",
];

/// Family names.
pub const SURNAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "chen",
    "wang",
    "kim",
    "nguyen",
    "patel",
    "sato",
    "tanaka",
    "mueller",
    "rossi",
    "silva",
];

/// Street names for address fields.
pub const STREETS: &[&str] = &[
    "maple",
    "oak",
    "cedar",
    "pine",
    "elm",
    "washington",
    "lake",
    "hill",
    "park",
    "main",
    "church",
    "river",
    "spring",
    "ridge",
    "walnut",
    "sunset",
    "highland",
    "forest",
    "meadow",
    "willow",
];

/// Cities for address fields.
pub const CITIES: &[&str] = &[
    "springfield",
    "riverton",
    "fairview",
    "kingston",
    "ashland",
    "georgetown",
    "salem",
    "clinton",
    "greenville",
    "bristol",
    "dayton",
    "milton",
    "oxford",
    "auburn",
    "clayton",
    "dover",
    "hudson",
    "jackson",
    "lebanon",
    "madison",
];

/// Research-paper title words (Cora-like citations).
pub const TITLE_WORDS: &[&str] = &[
    "learning",
    "neural",
    "networks",
    "probabilistic",
    "inference",
    "bayesian",
    "clustering",
    "classification",
    "reinforcement",
    "genetic",
    "algorithms",
    "markov",
    "decision",
    "processes",
    "models",
    "analysis",
    "adaptive",
    "systems",
    "knowledge",
    "reasoning",
    "planning",
    "search",
    "optimization",
    "stochastic",
    "gradient",
    "boosting",
    "induction",
    "logic",
    "programming",
    "recognition",
    "vision",
    "speech",
    "language",
    "retrieval",
    "database",
    "distributed",
    "parallel",
    "dynamic",
    "incremental",
    "efficient",
];

/// Publication venues (Cora-like citations).
pub const VENUES: &[&str] = &[
    "icml", "nips", "aaai", "ijcai", "kdd", "sigmod", "vldb", "icde", "edbt", "uai", "colt",
    "ecml", "icdm", "cikm", "www",
];

/// Band / artist name components (MusicBrainz-like records).
pub const ARTIST_WORDS: &[&str] = &[
    "electric", "midnight", "crimson", "velvet", "silver", "golden", "neon", "lunar", "wild",
    "broken", "eternal", "savage", "crystal", "phantom", "royal", "stone", "iron", "echo",
    "shadow", "burning", "rebels", "tigers", "wolves", "dreamers", "riders", "kings", "queens",
    "ghosts", "angels", "pilots",
];

/// Song / album title components (MusicBrainz-like records).
pub const SONG_WORDS: &[&str] = &[
    "love", "night", "heart", "fire", "rain", "dance", "summer", "blue", "road", "home", "light",
    "dream", "time", "river", "sky", "moon", "star", "storm", "wind", "city", "train", "ocean",
    "mountain", "freedom", "memory", "shadows", "silence", "thunder", "horizon", "echoes",
];

/// Pick an element of a pool by index (wrapping).
pub fn pick(pool: &[&'static str], index: usize) -> &'static str {
    pool[index % pool.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_non_empty_and_lowercase() {
        for pool in [
            FIRST_NAMES,
            SURNAMES,
            STREETS,
            CITIES,
            TITLE_WORDS,
            VENUES,
            ARTIST_WORDS,
            SONG_WORDS,
        ] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase());
                assert!(!w.contains(' '));
            }
        }
    }

    #[test]
    fn pick_wraps_around() {
        assert_eq!(pick(FIRST_NAMES, 0), FIRST_NAMES[0]);
        assert_eq!(pick(FIRST_NAMES, FIRST_NAMES.len()), FIRST_NAMES[0]);
        assert_eq!(pick(FIRST_NAMES, FIRST_NAMES.len() + 3), FIRST_NAMES[3]);
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [FIRST_NAMES, SURNAMES, TITLE_WORDS, VENUES] {
            let mut sorted: Vec<&str> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len());
        }
    }
}
