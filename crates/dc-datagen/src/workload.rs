//! Dynamic-workload generation (§7.2, Figure 5(a)).
//!
//! A workload starts from an *initial* subset of a full dataset and then
//! applies a sequence of snapshots.  Each snapshot adds a batch of not-yet-
//! inserted objects, removes a batch of live objects, and updates a batch of
//! live objects (updates re-corrupt textual records or jitter numeric
//! vectors).  Percentages are expressed relative to the number of objects
//! live at the start of the snapshot, matching how Figure 5(a) reports the
//! per-snapshot operation mix.

use crate::{numeric, textual};
use dc_types::{Dataset, ObjectId, Operation, OperationBatch, Record, RecordKind, Snapshot};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of a dynamic workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Fraction of the full dataset that is live before the first snapshot.
    pub initial_fraction: f64,
    /// Number of snapshots to generate.
    pub snapshots: usize,
    /// Adds per snapshot, as a fraction of the currently live objects
    /// (capped by the number of unused objects remaining).
    pub add_fraction: f64,
    /// Removes per snapshot, as a fraction of the currently live objects.
    pub remove_fraction: f64,
    /// Updates per snapshot, as a fraction of the currently live objects.
    pub update_fraction: f64,
    /// Character edits applied by an Update to a textual record.
    pub update_typos: usize,
    /// Jitter magnitude applied by an Update to a numeric record.
    pub update_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        // Mirrors the typical mix of Figure 5(a): mostly adds, a few removes
        // and updates per round.
        WorkloadConfig {
            initial_fraction: 0.15,
            snapshots: 8,
            add_fraction: 0.25,
            remove_fraction: 0.03,
            update_fraction: 0.04,
            update_typos: 2,
            update_jitter: 0.05,
            seed: 0xD1CE,
        }
    }
}

/// A generated dynamic workload: the initial dataset plus the snapshots to
/// replay on top of it.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    /// Objects live before the first snapshot.
    pub initial: Dataset,
    /// The snapshots, in replay order.
    pub snapshots: Vec<Snapshot>,
}

impl DynamicWorkload {
    /// Generate a workload over the given full dataset.
    pub fn generate(full: &Dataset, config: WorkloadConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.initial_fraction),
            "initial fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut all_ids = full.ids();
        all_ids.shuffle(&mut rng);

        let initial_count = ((all_ids.len() as f64) * config.initial_fraction).round() as usize;
        let initial_count = initial_count.clamp(1.min(all_ids.len()), all_ids.len());
        let (initial_ids, future_ids) = all_ids.split_at(initial_count);

        let initial = Dataset::from_pairs(
            initial_ids
                .iter()
                .map(|&id| (id, full.record(id).expect("id from dataset").clone())),
        );

        // Live set evolves as snapshots are generated.
        let mut live: Vec<ObjectId> = initial_ids.to_vec();
        let mut pending: Vec<ObjectId> = future_ids.to_vec();
        let mut current_records: std::collections::BTreeMap<ObjectId, Record> =
            initial.iter().map(|(id, r)| (id, r.clone())).collect();

        let mut snapshots = Vec::with_capacity(config.snapshots);
        for index in 1..=config.snapshots {
            let live_count = live.len().max(1);
            let n_add = ((live_count as f64) * config.add_fraction).round() as usize;
            let n_add = n_add.min(pending.len());
            let n_remove =
                (((live_count as f64) * config.remove_fraction).round() as usize).min(live.len());
            let n_update =
                (((live_count as f64) * config.update_fraction).round() as usize).min(live.len());

            let mut batch = OperationBatch::new();

            // Adds: take the next pending objects.
            for _ in 0..n_add {
                let id = pending.pop().expect("capped by pending length");
                let record = full.record(id).expect("id from dataset").clone();
                current_records.insert(id, record.clone());
                live.push(id);
                batch.push(Operation::Add { id, record });
            }

            // Removes: random live objects (not ones just added this round,
            // for simplicity of the replayed evolution).
            live.shuffle(&mut rng);
            let mut removed = Vec::new();
            for _ in 0..n_remove {
                if let Some(id) = live.pop() {
                    current_records.remove(&id);
                    removed.push(id);
                    batch.push(Operation::Remove { id });
                }
            }

            // Updates: random live objects get a perturbed record.
            live.shuffle(&mut rng);
            for &id in live.iter().take(n_update) {
                let record = current_records
                    .get(&id)
                    .expect("live objects have records")
                    .clone();
                let updated = match record.kind() {
                    RecordKind::Numeric => {
                        numeric::jitter_record(&record, config.update_jitter, &mut rng)
                    }
                    RecordKind::Textual | RecordKind::Mixed => {
                        textual::corrupt_record(&record, config.update_typos, &mut rng)
                    }
                };
                current_records.insert(id, updated.clone());
                batch.push(Operation::Update {
                    id,
                    record: updated,
                });
            }

            snapshots.push(Snapshot::new(index, batch));
        }

        DynamicWorkload { initial, snapshots }
    }

    /// Total number of operations across all snapshots.
    pub fn total_operations(&self) -> usize {
        self.snapshots.iter().map(|s| s.batch.len()).sum()
    }

    /// Replay the whole workload onto a copy of the initial dataset and
    /// return the final dataset (useful for tests and for computing the
    /// final ground truth).
    pub fn final_dataset(&self) -> Dataset {
        let mut ds = self.initial.clone();
        for snap in &self.snapshots {
            ds.apply_batch(&snap.batch).expect("workload is replayable");
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::AccessLikeGenerator;
    use crate::textual::FebrlLikeGenerator;
    use dc_types::OperationKind;

    fn small_textual_dataset() -> Dataset {
        FebrlLikeGenerator {
            originals: 60,
            duplicates_per_original: 1.0,
            ..FebrlLikeGenerator::default()
        }
        .generate()
    }

    #[test]
    fn workload_is_replayable_and_covers_the_dataset() {
        let full = small_textual_dataset();
        let workload = DynamicWorkload::generate(&full, WorkloadConfig::default());
        assert_eq!(workload.snapshots.len(), 8);
        assert!(!workload.initial.is_empty());
        // Replaying must not error, and the final dataset is a subset of the
        // full dataset's ids (some were never added, some were removed).
        let final_ds = workload.final_dataset();
        for (id, _) in final_ds.iter() {
            assert!(full.contains(id));
        }
        assert!(final_ds.len() > workload.initial.len());
    }

    #[test]
    fn snapshot_mix_contains_all_three_operation_kinds() {
        let full = small_textual_dataset();
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                add_fraction: 0.3,
                remove_fraction: 0.1,
                update_fraction: 0.1,
                ..WorkloadConfig::default()
            },
        );
        let mut kinds = std::collections::BTreeSet::new();
        for snap in &workload.snapshots {
            for op in snap.batch.iter() {
                kinds.insert(op.kind());
            }
        }
        assert!(kinds.contains(&OperationKind::Add));
        assert!(kinds.contains(&OperationKind::Remove));
        assert!(kinds.contains(&OperationKind::Update));
        assert!(workload.total_operations() > 0);
    }

    #[test]
    fn updates_preserve_entity_labels() {
        let full = small_textual_dataset();
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                update_fraction: 0.2,
                ..WorkloadConfig::default()
            },
        );
        for snap in &workload.snapshots {
            for op in snap.batch.iter() {
                if let Operation::Update { id, record } = op {
                    assert_eq!(record.entity(), full.record(*id).unwrap().entity());
                }
            }
        }
    }

    #[test]
    fn numeric_updates_jitter_vectors() {
        let full = AccessLikeGenerator {
            clusters: 4,
            points_per_cluster: 25,
            ..AccessLikeGenerator::default()
        }
        .generate();
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                update_fraction: 0.2,
                ..WorkloadConfig::default()
            },
        );
        let mut saw_update = false;
        for snap in &workload.snapshots {
            for op in snap.batch.iter() {
                if let Operation::Update { id, record } = op {
                    saw_update = true;
                    assert_eq!(
                        record.vector().len(),
                        full.record(*id).unwrap().vector().len()
                    );
                }
            }
        }
        assert!(saw_update);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let full = small_textual_dataset();
        let a = DynamicWorkload::generate(&full, WorkloadConfig::default());
        let b = DynamicWorkload::generate(&full, WorkloadConfig::default());
        assert_eq!(a.total_operations(), b.total_operations());
        assert_eq!(a.initial.ids(), b.initial.ids());
        let c = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                seed: 999,
                ..WorkloadConfig::default()
            },
        );
        assert_ne!(a.initial.ids(), c.initial.ids());
    }

    #[test]
    fn zero_fractions_produce_empty_snapshots() {
        let full = small_textual_dataset();
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                add_fraction: 0.0,
                remove_fraction: 0.0,
                update_fraction: 0.0,
                snapshots: 3,
                ..WorkloadConfig::default()
            },
        );
        assert_eq!(workload.total_operations(), 0);
        assert_eq!(workload.final_dataset().len(), workload.initial.len());
    }

    #[test]
    fn stats_percentages_reflect_the_configuration() {
        let full = small_textual_dataset();
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                add_fraction: 0.2,
                ..WorkloadConfig::default()
            },
        );
        let first = &workload.snapshots[0];
        let stats = first.stats();
        let live_before = workload.initial.len();
        let pct = stats.percentage(OperationKind::Add, live_before);
        assert!(pct > 10.0 && pct < 30.0, "add pct = {pct}");
    }
}
