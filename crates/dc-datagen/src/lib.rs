//! # dc-datagen
//!
//! Synthetic dataset generators and dynamic-workload generation.
//!
//! The paper evaluates on four real-world datasets (Cora, MusicBrainz,
//! Amazon Access Samples, 3D Road Network) plus a Febrl-generated synthetic
//! dataset (Table 1).  Those exact files are not redistributable with this
//! repository, so each is replaced by a generator that produces data with
//! the same *shape*: the same data type (textual record-linkage data with
//! duplicate entities, or numeric point clouds with density structure), the
//! same similarity measure, and configurable scale.  The substitution table
//! in `DESIGN.md` documents the mapping; every generator embeds ground-truth
//! entity labels so clustering quality can also be checked against the truth
//! rather than only against the batch result.
//!
//! * [`textual`] — Febrl-like duplicate-record generation (uniform / poisson
//!   / zipf duplicate-count distributions), Cora-like citation records, and
//!   MusicBrainz-like song records, all with configurable typo corruption.
//! * [`numeric`] — Amazon-Access-like Gaussian mixtures and 3D-Road-like
//!   points along road polylines.
//! * [`workload`] — the dynamic process of §7.2: an initial subset followed
//!   by a sequence of snapshots, each adding, removing, and updating a
//!   configurable fraction of objects (the Figure 5(a) workload mix).
//! * [`vocab`] — the word pools the textual generators draw from.
//! * [`fixtures`] — small canned datasets/workloads, memoized per process,
//!   for tests that just need "some realistic data" without paying
//!   per-test generation.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod fixtures;
pub mod numeric;
pub mod textual;
pub mod vocab;
pub mod workload;

pub use numeric::{AccessLikeGenerator, RoadLikeGenerator};
pub use textual::{
    CoraLikeGenerator, DuplicateDistribution, FebrlLikeGenerator, MusicLikeGenerator,
};
pub use workload::{DynamicWorkload, WorkloadConfig};

use dc_types::{Clustering, Dataset};

/// Build the ground-truth clustering of a generated dataset by grouping
/// objects with the same entity label.  Objects without a label become
/// singletons.
pub fn ground_truth(dataset: &Dataset) -> Clustering {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u64, Vec<dc_types::ObjectId>> = BTreeMap::new();
    let mut singletons = Vec::new();
    for (id, record) in dataset.iter() {
        match record.entity() {
            Some(e) => groups.entry(e).or_default().push(id),
            None => singletons.push(vec![id]),
        }
    }
    let mut all: Vec<Vec<dc_types::ObjectId>> = groups.into_values().collect();
    all.extend(singletons);
    Clustering::from_groups(all).expect("groups are disjoint by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_types::RecordBuilder;

    #[test]
    fn ground_truth_groups_by_entity_label() {
        let mut ds = Dataset::new();
        ds.insert(RecordBuilder::new().text("t", "a").entity(1).build());
        ds.insert(RecordBuilder::new().text("t", "b").entity(1).build());
        ds.insert(RecordBuilder::new().text("t", "c").entity(2).build());
        ds.insert(RecordBuilder::new().text("t", "d").build());
        let truth = ground_truth(&ds);
        assert_eq!(truth.cluster_count(), 3);
        assert_eq!(truth.object_count(), 4);
        let sizes: Vec<usize> = truth.groups().iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
    }
}
