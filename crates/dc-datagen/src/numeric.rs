//! Numeric dataset generators: Amazon-Access-like Gaussian mixtures and
//! 3D-Road-like polyline point clouds.

use dc_types::{Dataset, Record, RecordBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample from a standard normal distribution (Box–Muller).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Amazon-Access-like generator: a mixture of Gaussian blobs in `R^dims`.
///
/// Access-provisioning records are categorical/numeric features that cluster
/// by role; a Gaussian mixture with well-separated means reproduces that
/// structure for Euclidean-similarity clustering.
#[derive(Debug, Clone, Copy)]
pub struct AccessLikeGenerator {
    /// Number of mixture components (true clusters).
    pub clusters: usize,
    /// Number of points per component.
    pub points_per_cluster: usize,
    /// Dimensionality of the feature vectors.
    pub dims: usize,
    /// Standard deviation of each component.
    pub spread: f64,
    /// Distance between neighbouring component means.
    pub separation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AccessLikeGenerator {
    fn default() -> Self {
        AccessLikeGenerator {
            clusters: 20,
            points_per_cluster: 50,
            dims: 4,
            spread: 0.6,
            separation: 8.0,
            seed: 0xACCE55,
        }
    }
}

impl AccessLikeGenerator {
    /// Generate the dataset; each point is labeled with its component index.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ds = Dataset::new();
        // Component means are placed on a jittered integer lattice so that
        // neighbouring components stay `separation` apart.
        let mut means: Vec<Vec<f64>> = Vec::with_capacity(self.clusters);
        for c in 0..self.clusters {
            let mean: Vec<f64> = (0..self.dims)
                .map(|d| {
                    let lattice = ((c >> d) & 0x7) as f64 + (c as f64 * 0.37).fract();
                    lattice * self.separation
                })
                .collect();
            means.push(mean);
        }
        for (c, mean) in means.iter().enumerate() {
            for _ in 0..self.points_per_cluster {
                let v: Vec<f64> = mean
                    .iter()
                    .map(|&m| m + self.spread * standard_normal(&mut rng))
                    .collect();
                ds.insert(RecordBuilder::new().vector(v).entity(c as u64).build());
            }
        }
        ds
    }

    /// A reasonable similarity decay scale for this configuration (on the
    /// order of the intra-cluster distances).
    pub fn similarity_scale(&self) -> f64 {
        (self.spread * 3.0).max(0.1)
    }
}

/// 3D-Road-Network-like generator: points sampled along synthetic road
/// polylines with elevation, forming elongated density clusters.
#[derive(Debug, Clone, Copy)]
pub struct RoadLikeGenerator {
    /// Number of road segments (each segment's points form one entity).
    pub roads: usize,
    /// Number of sampled points per road.
    pub points_per_road: usize,
    /// Measurement noise around the polyline.
    pub noise: f64,
    /// Length of each road segment.
    pub road_length: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadLikeGenerator {
    fn default() -> Self {
        RoadLikeGenerator {
            roads: 60,
            points_per_road: 40,
            noise: 0.05,
            road_length: 4.0,
            seed: 0x40AD,
        }
    }
}

impl RoadLikeGenerator {
    /// Generate the dataset; each point carries its road index as the entity.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ds = Dataset::new();
        for road in 0..self.roads {
            // Road start on a coarse grid (so roads do not overlap), heading
            // in a random direction, with slowly varying elevation.
            let grid = (self.roads as f64).sqrt().ceil() as usize;
            let cell = 3.0 * self.road_length;
            let start_x = (road % grid) as f64 * cell;
            let start_y = (road / grid) as f64 * cell;
            let heading: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            let base_elevation: f64 = rng.gen::<f64>() * 50.0;
            for p in 0..self.points_per_road {
                let t = p as f64 / self.points_per_road as f64 * self.road_length;
                let x = start_x + t * heading.cos() + self.noise * standard_normal(&mut rng);
                let y = start_y + t * heading.sin() + self.noise * standard_normal(&mut rng);
                let z =
                    base_elevation + 2.0 * (t * 0.8).sin() + self.noise * standard_normal(&mut rng);
                ds.insert(
                    RecordBuilder::new()
                        .vector(vec![x, y, z])
                        .entity(road as u64)
                        .build(),
                );
            }
        }
        ds
    }

    /// A similarity decay scale matched to the point spacing along a road.
    pub fn similarity_scale(&self) -> f64 {
        (self.road_length / self.points_per_road as f64 * 4.0).max(0.05)
    }
}

/// Jitter a numeric record slightly (used by the workload generator to
/// implement Update operations on numeric datasets).
pub fn jitter_record(record: &Record, magnitude: f64, rng: &mut StdRng) -> Record {
    let mut out = record.clone();
    let v: Vec<f64> = record
        .vector()
        .iter()
        .map(|&x| x + magnitude * standard_normal(rng))
        .collect();
    out.set_vector(v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth;
    use dc_similarity::measures::EuclideanSimilarity;

    #[test]
    fn access_blobs_are_separated() {
        let gen = AccessLikeGenerator {
            clusters: 5,
            points_per_cluster: 20,
            ..AccessLikeGenerator::default()
        };
        let ds = gen.generate();
        assert_eq!(ds.len(), 100);
        let truth = ground_truth(&ds);
        assert_eq!(truth.cluster_count(), 5);

        // Average intra-cluster distance must be far below the average
        // inter-cluster distance.
        let groups = truth.groups();
        let dist = |a: &[f64], b: &[f64]| EuclideanSimilarity::distance(a, b);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            for (i, &a) in group.iter().enumerate() {
                for &b in group.iter().skip(i + 1).take(3) {
                    intra.push(dist(
                        ds.record(a).unwrap().vector(),
                        ds.record(b).unwrap().vector(),
                    ));
                }
                if let Some(other) = groups.get((gi + 1) % groups.len()) {
                    inter.push(dist(
                        ds.record(a).unwrap().vector(),
                        ds.record(other[0]).unwrap().vector(),
                    ));
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&intra) * 3.0 < avg(&inter),
            "intra {} inter {}",
            avg(&intra),
            avg(&inter)
        );
    }

    #[test]
    fn access_generator_is_deterministic() {
        let gen = AccessLikeGenerator {
            clusters: 3,
            points_per_cluster: 5,
            ..AccessLikeGenerator::default()
        };
        let a = gen.generate();
        let b = gen.generate();
        for (ida, idb) in a.ids().into_iter().zip(b.ids()) {
            assert_eq!(a.record(ida), b.record(idb));
        }
        assert!(gen.similarity_scale() > 0.0);
    }

    #[test]
    fn road_points_follow_their_polyline() {
        let gen = RoadLikeGenerator {
            roads: 4,
            points_per_road: 30,
            ..RoadLikeGenerator::default()
        };
        let ds = gen.generate();
        assert_eq!(ds.len(), 120);
        let truth = ground_truth(&ds);
        assert_eq!(truth.cluster_count(), 4);
        // Points are 3-dimensional.
        for (_, rec) in ds.iter() {
            assert_eq!(rec.vector().len(), 3);
        }
        // Consecutive points on the same road are close.
        let groups = truth.groups();
        let g = &groups[0];
        let d = EuclideanSimilarity::distance(
            ds.record(g[0]).unwrap().vector(),
            ds.record(g[1]).unwrap().vector(),
        );
        assert!(d < 1.5, "consecutive road points too far: {d}");
        assert!(gen.similarity_scale() > 0.0);
    }

    #[test]
    fn jitter_record_perturbs_every_dimension_slightly() {
        let mut rng = StdRng::seed_from_u64(3);
        let rec = RecordBuilder::new()
            .vector(vec![1.0, 2.0, 3.0])
            .entity(5)
            .build();
        let out = jitter_record(&rec, 0.01, &mut rng);
        assert_eq!(out.entity(), Some(5));
        assert_eq!(out.vector().len(), 3);
        for (a, b) in rec.vector().iter().zip(out.vector()) {
            assert!((a - b).abs() < 0.1);
        }
        assert_ne!(rec.vector(), out.vector());
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
