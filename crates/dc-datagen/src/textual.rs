//! Textual record-linkage generators: Febrl-like, Cora-like, and
//! MusicBrainz-like datasets.
//!
//! All three follow the same recipe the Febrl data generator uses (and which
//! the paper's synthetic dataset is produced with): generate *original*
//! records for distinct entities, then derive *duplicate* records by
//! corrupting an original with typos and token edits.  The number of
//! duplicates per entity follows a configurable distribution (uniform,
//! Poisson, or Zipf — the three distributions the paper experiments with).
//! Every record carries its entity id as ground truth.

use crate::vocab;
use dc_types::{Dataset, Record, RecordBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution of the number of duplicates per original record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicateDistribution {
    /// Every entity gets the same number of duplicates.
    Uniform,
    /// Poisson-distributed duplicate counts (mean = the configured rate).
    Poisson,
    /// Zipf-like heavy tail: a few entities get many duplicates.
    Zipf,
}

impl DuplicateDistribution {
    /// Sample a duplicate count with the given mean.
    fn sample(self, mean: f64, rng: &mut StdRng) -> usize {
        match self {
            DuplicateDistribution::Uniform => mean.round() as usize,
            DuplicateDistribution::Poisson => {
                // Knuth's algorithm; mean is small (a handful of duplicates).
                let l = (-mean).exp();
                let mut k = 0usize;
                let mut p = 1.0;
                loop {
                    p *= rng.gen::<f64>();
                    if p <= l {
                        break;
                    }
                    k += 1;
                    if k > 1000 {
                        break;
                    }
                }
                k
            }
            DuplicateDistribution::Zipf => {
                // Inverse-CDF sampling of a truncated zeta(2) distribution,
                // scaled so the mean is roughly `mean`.
                let u: f64 = rng.gen::<f64>().max(1e-9);
                let heavy = (1.0 / u.sqrt()).floor() as usize;
                (heavy.min(30) as f64 * mean / 2.0).round() as usize
            }
        }
    }
}

/// Apply `typos` random character edits (substitution, deletion, insertion,
/// or adjacent transposition) to a string.
fn corrupt_string(text: &str, typos: usize, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    for _ in 0..typos {
        if chars.is_empty() {
            chars.push(rng_char(rng));
            continue;
        }
        let pos = rng.gen_range(0..chars.len());
        match rng.gen_range(0..4) {
            0 => chars[pos] = rng_char(rng),
            1 => {
                chars.remove(pos);
            }
            2 => chars.insert(pos, rng_char(rng)),
            _ => {
                if pos + 1 < chars.len() {
                    chars.swap(pos, pos + 1);
                }
            }
        }
    }
    chars.into_iter().collect()
}

fn rng_char(rng: &mut StdRng) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

// ---------------------------------------------------------------------------
// Febrl-like person records
// ---------------------------------------------------------------------------

/// Febrl-style person-record generator (the paper's Synthetic dataset).
#[derive(Debug, Clone, Copy)]
pub struct FebrlLikeGenerator {
    /// Number of original (distinct-entity) records.
    pub originals: usize,
    /// Mean number of duplicates per original.
    pub duplicates_per_original: f64,
    /// How duplicate counts are distributed across originals.
    pub distribution: DuplicateDistribution,
    /// Number of character edits applied to each duplicate.
    pub typos_per_duplicate: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FebrlLikeGenerator {
    fn default() -> Self {
        FebrlLikeGenerator {
            originals: 600,
            duplicates_per_original: 1.7,
            distribution: DuplicateDistribution::Uniform,
            typos_per_duplicate: 2,
            seed: 0xFEB,
        }
    }
}

impl FebrlLikeGenerator {
    fn original_record(&self, entity: u64, rng: &mut StdRng) -> Record {
        let first = vocab::pick(vocab::FIRST_NAMES, rng.gen());
        let last = vocab::pick(vocab::SURNAMES, rng.gen());
        let street_no = rng.gen_range(1..400u32);
        let street = vocab::pick(vocab::STREETS, rng.gen());
        let city = vocab::pick(vocab::CITIES, rng.gen());
        let age = rng.gen_range(18..95u32);
        RecordBuilder::new()
            .text("given_name", first)
            .text("surname", last)
            .text("address", format!("{street_no} {street} street"))
            .text("city", city)
            .number("age", age as f64)
            .entity(entity)
            .build()
    }

    fn duplicate_of(&self, original: &Record, rng: &mut StdRng) -> Record {
        let mut dup = original.clone();
        // Corrupt one or two textual fields.
        let fields: Vec<String> = original
            .fields()
            .filter(|(_, v)| v.as_text().is_some())
            .map(|(k, _)| k.to_string())
            .collect();
        let corruptions = 1 + (self.typos_per_duplicate > 2) as usize;
        for _ in 0..corruptions {
            let field = &fields[rng.gen_range(0..fields.len())];
            if let Some(text) = original.field(field).and_then(|v| v.as_text()) {
                let corrupted = corrupt_string(text, self.typos_per_duplicate, rng);
                dup.set_field(field.clone(), dc_types::FieldValue::Text(corrupted));
            }
        }
        dup
    }

    /// Generate the dataset (originals followed by duplicates).
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ds = Dataset::new();
        let mut originals = Vec::with_capacity(self.originals);
        for entity in 0..self.originals as u64 {
            let rec = self.original_record(entity, &mut rng);
            originals.push(rec.clone());
            ds.insert(rec);
        }
        for (entity, original) in originals.iter().enumerate() {
            let count = self
                .distribution
                .sample(self.duplicates_per_original, &mut rng);
            for _ in 0..count {
                let _ = entity;
                ds.insert(self.duplicate_of(original, &mut rng));
            }
        }
        ds
    }
}

// ---------------------------------------------------------------------------
// Cora-like citation records
// ---------------------------------------------------------------------------

/// Cora-style citation-record generator (textual + numerical fields,
/// Jaccard similarity).
#[derive(Debug, Clone, Copy)]
pub struct CoraLikeGenerator {
    /// Number of distinct publications (entities).
    pub entities: usize,
    /// Mean number of citation variants per publication.
    pub duplicates_per_entity: f64,
    /// Number of character edits per corrupted field.
    pub typos: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoraLikeGenerator {
    fn default() -> Self {
        // The real Cora has 1879 records over ~190 entities; the default here
        // is a smaller laptop-scale version with the same duplicate ratio.
        CoraLikeGenerator {
            entities: 190,
            duplicates_per_entity: 8.5,
            typos: 2,
            seed: 0xC04A,
        }
    }
}

impl CoraLikeGenerator {
    fn original(&self, entity: u64, rng: &mut StdRng) -> Record {
        let title: Vec<&str> = (0..rng.gen_range(4..8))
            .map(|_| vocab::pick(vocab::TITLE_WORDS, rng.gen()))
            .collect();
        let author = format!(
            "{} {}",
            vocab::pick(vocab::FIRST_NAMES, rng.gen()),
            vocab::pick(vocab::SURNAMES, rng.gen())
        );
        let second_author = format!(
            "{} {}",
            vocab::pick(vocab::FIRST_NAMES, rng.gen()),
            vocab::pick(vocab::SURNAMES, rng.gen())
        );
        let venue = vocab::pick(vocab::VENUES, rng.gen());
        let year = rng.gen_range(1980..2022u32);
        RecordBuilder::new()
            .text("title", title.join(" "))
            .text("authors", format!("{author} and {second_author}"))
            .text("venue", venue)
            .number("year", year as f64)
            .entity(entity)
            .build()
    }

    fn variant(&self, original: &Record, rng: &mut StdRng) -> Record {
        let mut dup = original.clone();
        // Citations differ by dropped title words, abbreviated authors, and
        // occasional typos.
        if let Some(title) = original.field("title").and_then(|v| v.as_text()) {
            let mut words: Vec<&str> = title.split_whitespace().collect();
            if words.len() > 3 && rng.gen_bool(0.5) {
                let drop = rng.gen_range(0..words.len());
                words.remove(drop);
            }
            let mut new_title = words.join(" ");
            if rng.gen_bool(0.6) {
                new_title = corrupt_string(&new_title, self.typos, rng);
            }
            dup.set_field("title", dc_types::FieldValue::Text(new_title));
        }
        if let Some(authors) = original.field("authors").and_then(|v| v.as_text()) {
            if rng.gen_bool(0.4) {
                // Abbreviate: keep the first token's initial.
                let abbreviated: Vec<String> = authors
                    .split_whitespace()
                    .map(|w| {
                        if rng.gen_bool(0.3) && w.len() > 1 {
                            format!("{}", w.chars().next().unwrap())
                        } else {
                            w.to_string()
                        }
                    })
                    .collect();
                dup.set_field("authors", dc_types::FieldValue::Text(abbreviated.join(" ")));
            }
        }
        dup
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ds = Dataset::new();
        for entity in 0..self.entities as u64 {
            let original = self.original(entity, &mut rng);
            ds.insert(original.clone());
            let count = DuplicateDistribution::Poisson.sample(self.duplicates_per_entity, &mut rng);
            for _ in 0..count {
                ds.insert(self.variant(&original, &mut rng));
            }
        }
        ds
    }
}

// ---------------------------------------------------------------------------
// MusicBrainz-like song records
// ---------------------------------------------------------------------------

/// MusicBrainz-style song-record generator (trigram-cosine similarity).
#[derive(Debug, Clone, Copy)]
pub struct MusicLikeGenerator {
    /// Number of distinct songs (entities).
    pub entities: usize,
    /// Mean number of catalogue variants per song.
    pub duplicates_per_entity: f64,
    /// Number of character edits per corrupted field.
    pub typos: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MusicLikeGenerator {
    fn default() -> Self {
        MusicLikeGenerator {
            entities: 800,
            duplicates_per_entity: 3.0,
            typos: 2,
            seed: 0x0115,
        }
    }
}

impl MusicLikeGenerator {
    fn original(&self, entity: u64, rng: &mut StdRng) -> Record {
        let title: Vec<&str> = (0..rng.gen_range(2..5))
            .map(|_| vocab::pick(vocab::SONG_WORDS, rng.gen()))
            .collect();
        let artist = format!(
            "the {} {}",
            vocab::pick(vocab::ARTIST_WORDS, rng.gen()),
            vocab::pick(vocab::ARTIST_WORDS, rng.gen())
        );
        let album: Vec<&str> = (0..2)
            .map(|_| vocab::pick(vocab::SONG_WORDS, rng.gen()))
            .collect();
        let year = rng.gen_range(1960..2022u32);
        RecordBuilder::new()
            .text("title", title.join(" "))
            .text("artist", artist)
            .text("album", album.join(" "))
            .number("year", year as f64)
            .entity(entity)
            .build()
    }

    fn variant(&self, original: &Record, rng: &mut StdRng) -> Record {
        let mut dup = original.clone();
        for field in ["title", "artist", "album"] {
            if rng.gen_bool(0.5) {
                if let Some(text) = original.field(field).and_then(|v| v.as_text()) {
                    dup.set_field(
                        field,
                        dc_types::FieldValue::Text(corrupt_string(text, self.typos, rng)),
                    );
                }
            }
        }
        dup
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ds = Dataset::new();
        for entity in 0..self.entities as u64 {
            let original = self.original(entity, &mut rng);
            ds.insert(original.clone());
            let count = DuplicateDistribution::Poisson.sample(self.duplicates_per_entity, &mut rng);
            for _ in 0..count {
                ds.insert(self.variant(&original, &mut rng));
            }
        }
        ds
    }
}

/// Corrupt a textual record slightly (used by the workload generator to
/// implement Update operations on textual datasets).
pub fn corrupt_record(record: &Record, typos: usize, rng: &mut StdRng) -> Record {
    let mut out = record.clone();
    let fields: Vec<String> = record
        .fields()
        .filter(|(_, v)| v.as_text().is_some())
        .map(|(k, _)| k.to_string())
        .collect();
    if fields.is_empty() {
        return out;
    }
    let field = &fields[rng.gen_range(0..fields.len())];
    if let Some(text) = record.field(field).and_then(|v| v.as_text()) {
        out.set_field(
            field.clone(),
            dc_types::FieldValue::Text(corrupt_string(text, typos, rng)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth;
    use dc_similarity::{JaccardSimilarity, SimilarityMeasure, TrigramCosine};

    #[test]
    fn febrl_generates_originals_and_duplicates_with_labels() {
        let gen = FebrlLikeGenerator {
            originals: 50,
            duplicates_per_original: 2.0,
            ..FebrlLikeGenerator::default()
        };
        let ds = gen.generate();
        assert!(ds.len() >= 150 && ds.len() <= 160, "len = {}", ds.len());
        let truth = ground_truth(&ds);
        assert_eq!(truth.cluster_count(), 50);
        // Duplicates stay textually similar to their original.
        let m = JaccardSimilarity;
        let mut intra = Vec::new();
        for group in truth.groups() {
            if group.len() >= 2 {
                let a = ds.record(group[0]).unwrap();
                let b = ds.record(group[1]).unwrap();
                intra.push(m.similarity(a, b));
            }
        }
        let avg: f64 = intra.iter().sum::<f64>() / intra.len() as f64;
        assert!(avg > 0.5, "duplicates too dissimilar: {avg}");
    }

    #[test]
    fn febrl_distributions_change_the_duplicate_profile() {
        let base = FebrlLikeGenerator {
            originals: 80,
            duplicates_per_original: 2.0,
            ..FebrlLikeGenerator::default()
        };
        let uniform = base.generate();
        let zipf = FebrlLikeGenerator {
            distribution: DuplicateDistribution::Zipf,
            ..base
        }
        .generate();
        let max_group = |ds: &Dataset| {
            ground_truth(ds)
                .groups()
                .iter()
                .map(Vec::len)
                .max()
                .unwrap_or(0)
        };
        // Uniform: every entity has exactly 1 + 2 records; Zipf has a heavy
        // tail with (much) larger groups.
        assert_eq!(max_group(&uniform), 3);
        assert!(max_group(&zipf) > 3);
    }

    #[test]
    fn poisson_sampling_has_reasonable_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 2000;
        let total: usize = (0..n)
            .map(|_| DuplicateDistribution::Poisson.sample(3.0, &mut rng))
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn cora_variants_share_tokens_with_their_original() {
        let gen = CoraLikeGenerator {
            entities: 30,
            duplicates_per_entity: 4.0,
            ..CoraLikeGenerator::default()
        };
        let ds = gen.generate();
        let truth = ground_truth(&ds);
        assert_eq!(truth.cluster_count(), 30);
        assert!(ds.len() > 100);
        let m = JaccardSimilarity;
        let mut hits = 0;
        let mut total = 0;
        for group in truth.groups() {
            for pair in group.windows(2) {
                let s = m.similarity(ds.record(pair[0]).unwrap(), ds.record(pair[1]).unwrap());
                total += 1;
                if s > 0.3 {
                    hits += 1;
                }
            }
        }
        assert!(hits as f64 / total as f64 > 0.8);
    }

    #[test]
    fn music_variants_are_trigram_similar() {
        let gen = MusicLikeGenerator {
            entities: 40,
            duplicates_per_entity: 2.0,
            ..MusicLikeGenerator::default()
        };
        let ds = gen.generate();
        let truth = ground_truth(&ds);
        assert_eq!(truth.cluster_count(), 40);
        let m = TrigramCosine;
        let mut sims = Vec::new();
        for group in truth.groups() {
            if group.len() >= 2 {
                sims.push(m.similarity(ds.record(group[0]).unwrap(), ds.record(group[1]).unwrap()));
            }
        }
        let avg: f64 = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(avg > 0.7, "avg trigram similarity {avg}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = CoraLikeGenerator {
            entities: 10,
            ..CoraLikeGenerator::default()
        };
        let a = gen.generate();
        let b = gen.generate();
        assert_eq!(a.len(), b.len());
        for (ida, idb) in a.ids().into_iter().zip(b.ids()) {
            assert_eq!(a.record(ida), b.record(idb));
        }
    }

    #[test]
    fn corrupt_string_changes_but_preserves_length_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let original = "abcdefghijklmnop";
        let corrupted = corrupt_string(original, 2, &mut rng);
        assert_ne!(corrupted, original);
        assert!((corrupted.len() as i64 - original.len() as i64).abs() <= 2);
        // Zero typos is the identity.
        assert_eq!(corrupt_string(original, 0, &mut rng), original);
    }

    #[test]
    fn corrupt_record_touches_exactly_one_text_field() {
        let mut rng = StdRng::seed_from_u64(9);
        let rec = RecordBuilder::new()
            .text("a", "hello world")
            .text("b", "unchanged text")
            .number("n", 5.0)
            .entity(3)
            .build();
        let out = corrupt_record(&rec, 3, &mut rng);
        assert_eq!(out.entity(), Some(3));
        let changed = ["a", "b"]
            .iter()
            .filter(|f| out.field(f) != rec.field(f))
            .count();
        assert_eq!(changed, 1);
    }
}
