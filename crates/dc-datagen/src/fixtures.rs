//! Small canned datasets and workloads, memoized per process.
//!
//! Integration tests (and docs) across the workspace repeatedly need "a
//! small, realistic dataset with a dynamic workload on top".  Generating one
//! is cheap, but every test binary used to regenerate (and every test
//! re-derive) its own copy.  The accessors here build each fixture exactly
//! once per process behind a [`OnceLock`] and hand out clones, so a test
//! binary with N tests pays the generation cost once.
//!
//! All fixtures use fixed seeds ([`FIXTURE_SEED`] and offsets of it), making
//! them — like everything else built on the workspace's seeded RNG
//! discipline — byte-for-byte identical on every run and machine.

use crate::numeric::AccessLikeGenerator;
use crate::textual::FebrlLikeGenerator;
use crate::workload::{DynamicWorkload, WorkloadConfig};
use dc_types::Dataset;
use std::sync::OnceLock;

/// The canonical seed for canned fixtures.
pub const FIXTURE_SEED: u64 = 3;

/// A second fixed seed, for tests that want an independent instance of the
/// same fixture family (diversity without unseeded randomness).
pub const FIXTURE_SEED_ALT: u64 = 11;

/// Uncached variant of [`small_febrl_dataset`] for an arbitrary seed.
pub fn febrl_dataset_with_seed(seed: u64) -> Dataset {
    FebrlLikeGenerator {
        originals: 70,
        duplicates_per_original: 1.8,
        seed,
        ..FebrlLikeGenerator::default()
    }
    .generate()
}

/// Uncached variant of [`small_febrl_workload`] for an arbitrary seed.
pub fn febrl_workload_with_seed(seed: u64) -> DynamicWorkload {
    DynamicWorkload::generate(
        &febrl_dataset_with_seed(seed),
        WorkloadConfig {
            initial_fraction: 0.35,
            snapshots: 5,
            seed: seed ^ 0xABCD,
            ..WorkloadConfig::default()
        },
    )
}

/// A small Febrl-like record-linkage dataset: 70 original entities with ~1.8
/// duplicates each (the scale the workspace's end-to-end tests train on).
pub fn small_febrl_dataset() -> Dataset {
    static CACHE: OnceLock<Dataset> = OnceLock::new();
    CACHE
        .get_or_init(|| febrl_dataset_with_seed(FIXTURE_SEED))
        .clone()
}

/// A 5-snapshot dynamic workload over [`small_febrl_dataset`], starting from
/// 35% of the data.
pub fn small_febrl_workload() -> DynamicWorkload {
    static CACHE: OnceLock<DynamicWorkload> = OnceLock::new();
    CACHE
        .get_or_init(|| febrl_workload_with_seed(FIXTURE_SEED))
        .clone()
}

/// A small Amazon-Access-like Gaussian mixture: 8 clusters of 30 points.
pub fn small_access_dataset() -> Dataset {
    static CACHE: OnceLock<Dataset> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            AccessLikeGenerator {
                clusters: 8,
                points_per_cluster: 30,
                ..AccessLikeGenerator::default()
            }
            .generate()
        })
        .clone()
}

/// A 4-snapshot dynamic workload over [`small_access_dataset`], starting
/// from 40% of the data.
pub fn small_access_workload() -> DynamicWorkload {
    static CACHE: OnceLock<DynamicWorkload> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            DynamicWorkload::generate(
                &small_access_dataset(),
                WorkloadConfig {
                    initial_fraction: 0.4,
                    snapshots: 4,
                    ..WorkloadConfig::default()
                },
            )
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn febrl_fixture_is_stable_across_calls() {
        let a = small_febrl_dataset();
        let b = small_febrl_dataset();
        assert_eq!(a.len(), b.len());
        assert!(
            a.len() >= 70,
            "70 originals plus duplicates, got {}",
            a.len()
        );
        let wa = small_febrl_workload();
        let wb = small_febrl_workload();
        assert_eq!(wa.snapshots.len(), 5);
        assert_eq!(wa.initial.len(), wb.initial.len());
    }

    #[test]
    fn access_fixture_has_expected_shape() {
        let ds = small_access_dataset();
        assert_eq!(ds.len(), 8 * 30);
        let w = small_access_workload();
        assert_eq!(w.snapshots.len(), 4);
        assert!(w.initial.len() >= (ds.len() * 2) / 5);
    }
}
