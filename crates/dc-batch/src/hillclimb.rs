//! The general hill-climbing batch algorithm (§7.1, "Hill-climbing").
//!
//! This is the paper's stand-in for "any objective-based batch clustering
//! algorithm": it examines the immediate neighbours of the current
//! clustering — merges of adjacent clusters, splits that isolate the least
//! cohesive member of a cluster, and single-object moves — and greedily
//! applies the change with the largest improvement of the objective until no
//! improving change remains.  It is accurate but expensive, which is exactly
//! the trade-off DynamicC attacks.
//!
//! Two details matter for the rest of the system:
//!
//! * every applied change is recorded as an [`EvolutionStep`], producing the
//!   §4.2 "evolution from scratch" trace that DynamicC's trainer observes;
//! * with [`HillClimbingConfig::fixed_k`] set, the search first runs a
//!   Ward-style agglomeration down to exactly `k` clusters and then refines
//!   with objective-improving single-object moves, which is how the paper's
//!   k-means workload is driven by the same general algorithm.

use crate::traits::{align_clustering_with_graph, BatchClusterer, BatchOutcome};
use dc_evolution::{EvolutionStep, EvolutionTrace};
use dc_objective::{improves, ObjectiveFunction};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of the hill-climbing search.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbingConfig {
    /// Upper bound on the number of applied changes (safety valve; the
    /// search normally stops when no improving change exists).
    pub max_steps: usize,
    /// When set, enforce exactly `k` clusters (k-means-style clustering).
    pub fixed_k: Option<usize>,
    /// Whether to evaluate single-object moves in addition to merges and
    /// splits.
    pub consider_moves: bool,
    /// How many of a cluster's least-cohesive members are evaluated as split
    /// / move candidates per iteration.
    pub candidates_per_cluster: usize,
}

impl Default for HillClimbingConfig {
    fn default() -> Self {
        HillClimbingConfig {
            max_steps: 100_000,
            fixed_k: None,
            consider_moves: true,
            candidates_per_cluster: 1,
        }
    }
}

/// The general objective-based batch algorithm.
#[derive(Clone)]
pub struct HillClimbing {
    objective: Arc<dyn ObjectiveFunction>,
    config: HillClimbingConfig,
}

/// A candidate change considered by one search iteration.
#[derive(Debug, Clone)]
enum Change {
    Merge(ClusterId, ClusterId),
    Isolate(ClusterId, ObjectId),
    Move(ObjectId, ClusterId),
}

impl HillClimbing {
    /// Create a hill-climbing batch algorithm for the given objective.
    pub fn new(objective: Arc<dyn ObjectiveFunction>, config: HillClimbingConfig) -> Self {
        HillClimbing { objective, config }
    }

    /// Convenience constructor with the default configuration.
    pub fn with_objective(objective: Arc<dyn ObjectiveFunction>) -> Self {
        Self::new(objective, HillClimbingConfig::default())
    }

    /// The objective driving the search.
    pub fn objective(&self) -> &Arc<dyn ObjectiveFunction> {
        &self.objective
    }

    fn members_of(clustering: &Clustering, cid: ClusterId) -> BTreeSet<ObjectId> {
        clustering
            .cluster(cid)
            .map(|c| c.members().clone())
            .unwrap_or_default()
    }

    /// Find the best candidate change and its delta.  Returns `None` when no
    /// candidate exists at all.
    fn best_change(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        agg: &ClusterAggregates,
        work: &mut u64,
    ) -> Option<(Change, f64)> {
        let mut best: Option<(Change, f64)> = None;
        let consider = |change: Change, delta: f64, best: &mut Option<(Change, f64)>| {
            if best.as_ref().is_none_or(|(_, d)| delta < *d) {
                *best = Some((change, delta));
            }
        };

        for cid in clustering.cluster_ids() {
            // Merge candidates: neighbouring clusters (deduplicated a < b).
            for other in agg.neighbour_clusters(cid) {
                if other <= cid {
                    continue;
                }
                *work += 1;
                let delta = self
                    .objective
                    .merge_delta_with(agg, graph, clustering, cid, other);
                consider(Change::Merge(cid, other), delta, &mut best);
            }
            // Split / move candidates: the least cohesive members.
            if clustering.cluster_size(cid) >= 2 {
                let ranked = ClusterAggregates::members_by_split_weight(graph, clustering, cid);
                for (oid, _weight) in ranked.into_iter().take(self.config.candidates_per_cluster) {
                    let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
                    *work += 1;
                    let delta = self
                        .objective
                        .split_delta_with(agg, graph, clustering, cid, &part);
                    consider(Change::Isolate(cid, oid), delta, &mut best);

                    if self.config.consider_moves {
                        // Best neighbouring cluster for this object: the one
                        // attracting it with the largest total similarity.
                        let mut attraction: std::collections::BTreeMap<ClusterId, f64> =
                            std::collections::BTreeMap::new();
                        for (n, sim) in graph.neighbors(oid) {
                            if let Some(target) = clustering.cluster_of(n) {
                                if target != cid {
                                    *attraction.entry(target).or_insert(0.0) += sim;
                                }
                            }
                        }
                        let best_target = attraction.into_iter().max_by(|a, b| {
                            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
                        });
                        if let Some((target, _)) = best_target {
                            *work += 1;
                            let delta = self
                                .objective
                                .move_delta_with(agg, graph, clustering, oid, target);
                            consider(Change::Move(oid, target), delta, &mut best);
                        }
                    }
                }
            }
        }
        best
    }

    /// Apply a change, recording the equivalent evolution steps and folding
    /// the change into the maintained aggregate.
    fn apply_change(
        graph: &SimilarityGraph,
        clustering: &mut Clustering,
        agg: &mut ClusterAggregates,
        trace: &mut EvolutionTrace,
        change: Change,
    ) {
        match change {
            Change::Merge(a, b) => {
                let left = Self::members_of(clustering, a);
                let right = Self::members_of(clustering, b);
                trace.push(EvolutionStep::Merge { left, right });
                let merged = clustering.merge(a, b).expect("candidate clusters exist");
                agg.apply_merge(a, b, merged);
            }
            Change::Isolate(cid, oid) => {
                let original = Self::members_of(clustering, cid);
                let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
                trace.push(EvolutionStep::Split {
                    original,
                    part: part.clone(),
                });
                let (p, r) = clustering.split(cid, &part).expect("valid split candidate");
                agg.apply_split(graph, clustering, cid, p, r);
            }
            Change::Move(oid, target) => {
                // A move is a split followed by a merge (§4.1).
                let source = clustering.cluster_of(oid).expect("object is clustered");
                let source_members = Self::members_of(clustering, source);
                let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
                if source_members.len() > 1 {
                    trace.push(EvolutionStep::Split {
                        original: source_members,
                        part: part.clone(),
                    });
                }
                let target_members = Self::members_of(clustering, target);
                trace.push(EvolutionStep::Merge {
                    left: part,
                    right: target_members,
                });
                clustering
                    .move_object(oid, target)
                    .expect("object and target cluster exist");
                agg.apply_move(graph, clustering, oid, source, target);
            }
        }
    }

    /// Ward-style agglomeration: merge the cheapest pair until `k` clusters
    /// remain, regardless of whether the merge improves the objective (the
    /// k-means cost can only grow as clusters merge).
    #[allow(clippy::too_many_arguments)]
    fn agglomerate_to_k(
        &self,
        graph: &SimilarityGraph,
        clustering: &mut Clustering,
        agg: &mut ClusterAggregates,
        trace: &mut EvolutionTrace,
        k: usize,
        work: &mut u64,
    ) {
        while clustering.cluster_count() > k.max(1) {
            let mut best: Option<(ClusterId, ClusterId, f64)> = None;
            for cid in clustering.cluster_ids() {
                for other in agg.neighbour_clusters(cid) {
                    if other <= cid {
                        continue;
                    }
                    *work += 1;
                    let delta = self
                        .objective
                        .merge_delta_with(agg, graph, clustering, cid, other);
                    if best.is_none_or(|(_, _, d)| delta < d) {
                        best = Some((cid, other, delta));
                    }
                }
            }
            // If no pair of clusters shares an edge, fall back to merging the
            // two smallest clusters — deterministic and keeps progress.
            let (a, b) = match best {
                Some((a, b, _)) => (a, b),
                None => {
                    let mut ids = clustering.cluster_ids();
                    ids.sort_by_key(|&c| clustering.cluster_size(c));
                    if ids.len() < 2 {
                        break;
                    }
                    (ids[0], ids[1])
                }
            };
            Self::apply_change(graph, clustering, agg, trace, Change::Merge(a, b));
        }
    }

    /// Improving-only local search.
    #[allow(clippy::too_many_arguments)]
    fn improve(
        &self,
        graph: &SimilarityGraph,
        clustering: &mut Clustering,
        agg: &mut ClusterAggregates,
        trace: &mut EvolutionTrace,
        work: &mut u64,
        moves_only: bool,
    ) {
        for _ in 0..self.config.max_steps {
            let candidate = if moves_only {
                self.best_move_only(graph, clustering, agg, work)
            } else {
                self.best_change(graph, clustering, agg, work)
            };
            match candidate {
                Some((change, delta)) if improves(delta) => {
                    Self::apply_change(graph, clustering, agg, trace, change);
                }
                _ => break,
            }
        }
    }

    /// Best single-object move (used during fixed-k refinement, where merges
    /// and splits would change the number of clusters).
    fn best_move_only(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        agg: &ClusterAggregates,
        work: &mut u64,
    ) -> Option<(Change, f64)> {
        let mut best: Option<(Change, f64)> = None;
        for oid in clustering.object_ids() {
            let Some(source) = clustering.cluster_of(oid) else {
                continue;
            };
            if clustering.cluster_size(source) <= 1 {
                // Moving the last member away would drop a cluster and change k.
                continue;
            }
            let mut seen: BTreeSet<ClusterId> = BTreeSet::new();
            for (n, _) in graph.neighbors(oid) {
                if let Some(target) = clustering.cluster_of(n) {
                    if target != source && seen.insert(target) {
                        *work += 1;
                        let delta = self
                            .objective
                            .move_delta_with(agg, graph, clustering, oid, target);
                        if best.as_ref().is_none_or(|(_, d)| delta < *d) {
                            best = Some((Change::Move(oid, target), delta));
                        }
                    }
                }
            }
        }
        best
    }

    fn run(&self, graph: &SimilarityGraph, mut clustering: Clustering) -> BatchOutcome {
        let mut trace = EvolutionTrace::new();
        let mut work = 0u64;
        // One full aggregate build per batch run; the search maintains it
        // incrementally across every applied change.
        let mut agg = ClusterAggregates::new(graph, &clustering);
        match self.config.fixed_k {
            Some(k) => {
                self.agglomerate_to_k(graph, &mut clustering, &mut agg, &mut trace, k, &mut work);
                self.improve(
                    graph,
                    &mut clustering,
                    &mut agg,
                    &mut trace,
                    &mut work,
                    true,
                );
            }
            None => {
                self.improve(
                    graph,
                    &mut clustering,
                    &mut agg,
                    &mut trace,
                    &mut work,
                    false,
                );
            }
        }
        BatchOutcome {
            clustering,
            trace,
            work,
        }
    }
}

impl BatchClusterer for HillClimbing {
    fn name(&self) -> &'static str {
        "hill-climbing"
    }

    fn cluster(&self, graph: &SimilarityGraph) -> BatchOutcome {
        let singletons = Clustering::singletons(graph.object_ids());
        self.run(graph, singletons)
    }

    fn recluster(&self, graph: &SimilarityGraph, initial: &Clustering) -> BatchOutcome {
        let aligned = align_clustering_with_graph(graph, initial);
        self.run(graph, aligned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_objective::{CorrelationObjective, DbIndexObjective, KMeansObjective};
    use dc_similarity::fixtures::{figure2_graph, graph_from_edges};
    use dc_similarity::graph::GraphConfig;
    use dc_types::{Dataset, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn correlation_hc() -> HillClimbing {
        HillClimbing::with_objective(Arc::new(CorrelationObjective))
    }

    #[test]
    fn converges_to_a_local_optimum_on_the_paper_example() {
        let graph = figure2_graph();
        let hc = correlation_hc();
        let outcome = hc.cluster(&graph);
        outcome.clustering.check_invariants().unwrap();
        let obj = CorrelationObjective;
        let score = obj.evaluate(&graph, &outcome.clustering);
        // The optimum of the correlation objective on this graph is 2.2
        // ({r1,r2,r3}, {r4,r5}, {r6}, {r7}); the greedy search must reach it.
        assert!(score <= 2.2 + 1e-9, "score = {score}");
        assert!(outcome.work > 0);
        // r1, r2, r3 must end up together.
        let c1 = outcome.clustering.cluster_of(oid(1));
        assert_eq!(c1, outcome.clustering.cluster_of(oid(2)));
        assert_eq!(c1, outcome.clustering.cluster_of(oid(3)));
    }

    #[test]
    fn no_improving_change_remains_after_convergence() {
        let graph = figure2_graph();
        let hc = correlation_hc();
        let outcome = hc.cluster(&graph);
        let mut work = 0;
        let agg = ClusterAggregates::new(&graph, &outcome.clustering);
        if let Some((_, delta)) = hc.best_change(&graph, &outcome.clustering, &agg, &mut work) {
            assert!(!improves(delta), "an improving change remains: {delta}");
        }
    }

    #[test]
    fn trace_replays_from_singletons_to_the_final_clustering() {
        let graph = figure2_graph();
        let hc = correlation_hc();
        let outcome = hc.cluster(&graph);
        let mut replay = Clustering::singletons(graph.object_ids());
        for step in outcome.trace.iter() {
            step.apply_to(&mut replay)
                .expect("trace step must apply cleanly");
        }
        assert!(replay.delta(&outcome.clustering).is_unchanged());
    }

    #[test]
    fn recluster_from_a_warm_start_reaches_at_least_as_good_a_score() {
        let graph = figure2_graph();
        let hc = correlation_hc();
        let from_scratch = hc.cluster(&graph);
        // Warm start: the paper's Figure 1 old clustering (objects 6, 7 are
        // added as singletons by the alignment step).
        let warm = dc_similarity::fixtures::figure1_old_clustering();
        let reclustered = hc.recluster(&graph, &warm);
        reclustered.clustering.check_invariants().unwrap();
        let obj = CorrelationObjective;
        assert!(
            obj.evaluate(&graph, &reclustered.clustering)
                <= obj.evaluate(&graph, &from_scratch.clustering) + 1e-9
        );
    }

    #[test]
    fn db_index_objective_resolves_two_entities() {
        let graph = graph_from_edges(
            5,
            &[
                (1, 2, 0.95),
                (1, 3, 0.9),
                (2, 3, 0.92),
                (4, 5, 0.88),
                (3, 4, 0.1),
            ],
        );
        let hc = HillClimbing::with_objective(Arc::new(DbIndexObjective));
        let outcome = hc.cluster(&graph);
        outcome.clustering.check_invariants().unwrap();
        let c = &outcome.clustering;
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(2)));
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(3)));
        assert_eq!(c.cluster_of(oid(4)), c.cluster_of(oid(5)));
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(4)));
    }

    #[test]
    fn fixed_k_produces_exactly_k_clusters_matching_the_blobs() {
        // Two numeric blobs, k = 2.
        let mut ds = Dataset::new();
        let points = [
            (1u64, vec![0.0, 0.0]),
            (2, vec![0.5, 0.2]),
            (3, vec![0.1, 0.6]),
            (4, vec![9.0, 9.0]),
            (5, vec![9.5, 9.3]),
            (6, vec![9.2, 8.8]),
        ];
        for (id, v) in points {
            ds.insert_with_id(oid(id), RecordBuilder::new().vector(v).build())
                .unwrap();
        }
        let graph = SimilarityGraph::build(GraphConfig::numeric_euclidean(2.0, 4.0, 2, 0.05), &ds);
        let hc = HillClimbing::new(
            Arc::new(KMeansObjective),
            HillClimbingConfig {
                fixed_k: Some(2),
                ..HillClimbingConfig::default()
            },
        );
        let outcome = hc.cluster(&graph);
        assert_eq!(outcome.clustering.cluster_count(), 2);
        let c = &outcome.clustering;
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(2)));
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(3)));
        assert_eq!(c.cluster_of(oid(4)), c.cluster_of(oid(5)));
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(4)));
    }

    #[test]
    fn empty_graph_produces_empty_clustering() {
        let graph = graph_from_edges(0, &[]);
        let outcome = correlation_hc().cluster(&graph);
        assert!(outcome.clustering.is_empty());
        assert!(outcome.trace.is_empty());
    }

    #[test]
    fn disconnected_objects_stay_singletons() {
        let graph = graph_from_edges(4, &[]);
        let outcome = correlation_hc().cluster(&graph);
        assert_eq!(outcome.clustering.cluster_count(), 4);
    }

    #[test]
    fn max_steps_limits_the_number_of_changes() {
        let graph = figure2_graph();
        let hc = HillClimbing::new(
            Arc::new(CorrelationObjective),
            HillClimbingConfig {
                max_steps: 1,
                ..HillClimbingConfig::default()
            },
        );
        let outcome = hc.cluster(&graph);
        assert!(outcome.trace.len() <= 1);
        assert_eq!(hc.name(), "hill-climbing");
    }
}
