//! DBSCAN over the similarity graph.
//!
//! The paper's density-based workload (§7.2.1).  The similarity graph's edge
//! threshold plays the role of the `ε` radius — two objects are
//! "ε-neighbours" exactly when the graph stores an edge between them — and
//! `min_pts` controls which objects are core points.  The clustering rule is
//! standard DBSCAN:
//!
//! * an object with at least `min_pts` neighbours is a **core point**;
//! * core points that are density-connected (reachable through a chain of
//!   core points) belong to the same cluster;
//! * a non-core object adjacent to a core point is a **border point** and
//!   joins one of its core neighbours' clusters (the one with the most
//!   similar core neighbour, for determinism);
//! * all remaining objects are **noise**; since the rest of the system
//!   represents a clustering as a partition, each noise object is placed in
//!   its own singleton cluster.

use crate::traits::{BatchClusterer, BatchOutcome};
use dc_similarity::SimilarityGraph;
use dc_types::{Clustering, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for [`Dbscan`].
#[derive(Debug, Clone, Copy)]
pub struct DbscanConfig {
    /// Minimum number of stored neighbours for an object to be a core point.
    pub min_pts: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        DbscanConfig { min_pts: 3 }
    }
}

/// Density-based batch clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dbscan {
    config: DbscanConfig,
}

impl Dbscan {
    /// Create a DBSCAN instance.
    pub fn new(config: DbscanConfig) -> Self {
        Dbscan { config }
    }

    /// The configured `min_pts`.
    pub fn min_pts(&self) -> usize {
        self.config.min_pts
    }

    /// Whether an object is a core point under this configuration.
    pub fn is_core(&self, graph: &SimilarityGraph, oid: ObjectId) -> bool {
        graph.degree(oid) >= self.config.min_pts
    }

    /// Partition the graph's objects into `(core clusters, border assignment,
    /// noise)`; exposed for the tests and for DynamicC's DBSCAN verification.
    fn assign(&self, graph: &SimilarityGraph) -> (Vec<BTreeSet<ObjectId>>, Vec<ObjectId>) {
        let mut core: BTreeSet<ObjectId> = BTreeSet::new();
        for o in graph.object_ids() {
            if self.is_core(graph, o) {
                core.insert(o);
            }
        }

        // Connected components of the core-point subgraph.
        let mut visited: BTreeSet<ObjectId> = BTreeSet::new();
        let mut clusters: Vec<BTreeSet<ObjectId>> = Vec::new();
        for &start in &core {
            if visited.contains(&start) {
                continue;
            }
            let mut component = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(node) = stack.pop() {
                if !visited.insert(node) {
                    continue;
                }
                component.insert(node);
                for (n, _) in graph.neighbors(node) {
                    if core.contains(&n) && !visited.contains(&n) {
                        stack.push(n);
                    }
                }
            }
            clusters.push(component);
        }

        // Border points: non-core objects adjacent to a core point join the
        // cluster of their most similar core neighbour.
        let mut core_cluster_of: BTreeMap<ObjectId, usize> = BTreeMap::new();
        for (i, members) in clusters.iter().enumerate() {
            for &m in members {
                core_cluster_of.insert(m, i);
            }
        }
        let mut noise = Vec::new();
        for o in graph.object_ids() {
            if core.contains(&o) {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (n, sim) in graph.neighbors(o) {
                if let Some(&ci) = core_cluster_of.get(&n) {
                    if best.is_none_or(|(_, s)| sim > s) {
                        best = Some((ci, sim));
                    }
                }
            }
            match best {
                Some((ci, _)) => {
                    clusters[ci].insert(o);
                }
                None => noise.push(o),
            }
        }
        (clusters, noise)
    }
}

impl BatchClusterer for Dbscan {
    fn name(&self) -> &'static str {
        "dbscan"
    }

    fn cluster(&self, graph: &SimilarityGraph) -> BatchOutcome {
        let (clusters, noise) = self.assign(graph);
        let mut clustering = Clustering::new();
        for members in clusters {
            if !members.is_empty() {
                clustering
                    .create_cluster(members)
                    .expect("assignment produces disjoint clusters");
            }
        }
        for o in noise {
            clustering
                .create_cluster([o])
                .expect("noise objects are unclustered");
        }
        // DBSCAN is not constructed by merge/split steps, so its trace is
        // empty; DynamicC derives cross-round evolution from the clusterings
        // themselves (§4.3).
        let work = graph.object_count() as u64 + graph.edge_count() as u64;
        BatchOutcome::without_trace(clustering, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::fixtures::graph_from_edges;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// Two dense cliques (1–4 and 5–8) plus a bridge-free noise point 9 and a
    /// border point 10 hanging off the first clique.
    fn density_graph() -> SimilarityGraph {
        let mut edges = Vec::new();
        for a in 1..=4u64 {
            for b in (a + 1)..=4 {
                edges.push((a, b, 0.9));
            }
        }
        for a in 5..=8u64 {
            for b in (a + 1)..=8 {
                edges.push((a, b, 0.85));
            }
        }
        edges.push((4, 10, 0.6)); // border point
        graph_from_edges(10, &edges)
    }

    #[test]
    fn clusters_two_dense_regions() {
        let graph = density_graph();
        let dbscan = Dbscan::new(DbscanConfig { min_pts: 3 });
        let outcome = dbscan.cluster(&graph);
        let c = &outcome.clustering;
        c.check_invariants().unwrap();
        assert_eq!(c.object_count(), 10);
        // The two cliques are separate clusters.
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(4)));
        assert_eq!(c.cluster_of(oid(5)), c.cluster_of(oid(8)));
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(5)));
    }

    #[test]
    fn border_point_joins_its_core_neighbours_cluster() {
        let graph = density_graph();
        let dbscan = Dbscan::new(DbscanConfig { min_pts: 3 });
        let outcome = dbscan.cluster(&graph);
        let c = &outcome.clustering;
        assert!(!dbscan.is_core(&graph, oid(10)));
        assert_eq!(c.cluster_of(oid(10)), c.cluster_of(oid(4)));
    }

    #[test]
    fn noise_points_become_singletons() {
        let graph = density_graph();
        let dbscan = Dbscan::new(DbscanConfig { min_pts: 3 });
        let outcome = dbscan.cluster(&graph);
        let c = &outcome.clustering;
        let c9 = c.cluster_of(oid(9)).unwrap();
        assert!(c.cluster(c9).unwrap().is_singleton());
    }

    #[test]
    fn min_pts_controls_core_points() {
        let graph = density_graph();
        let strict = Dbscan::new(DbscanConfig { min_pts: 5 });
        // No object has 5 neighbours, so everything is noise (singletons).
        let outcome = strict.cluster(&graph);
        assert_eq!(outcome.clustering.cluster_count(), 10);
        assert_eq!(strict.min_pts(), 5);

        let lenient = Dbscan::new(DbscanConfig { min_pts: 1 });
        let outcome = lenient.cluster(&graph);
        // Everything with an edge clusters; only object 9 stays alone.
        assert!(outcome.clustering.cluster_count() <= 3);
    }

    #[test]
    fn default_configuration_is_reasonable() {
        let d = Dbscan::default();
        assert_eq!(d.min_pts(), 3);
        assert_eq!(d.name(), "dbscan");
    }

    #[test]
    fn empty_graph() {
        let graph = graph_from_edges(0, &[]);
        let outcome = Dbscan::default().cluster(&graph);
        assert!(outcome.clustering.is_empty());
        assert!(outcome.trace.is_empty());
    }

    #[test]
    fn recluster_defaults_to_from_scratch() {
        let graph = density_graph();
        let dbscan = Dbscan::default();
        let warm = Clustering::singletons(graph.object_ids());
        let a = dbscan.cluster(&graph);
        let b = dbscan.recluster(&graph, &warm);
        assert!(a.clustering.delta(&b.clustering).is_unchanged());
    }
}
