//! # dc-batch
//!
//! Batch clustering algorithms — the substrates DynamicC is trained on and
//! compared against.
//!
//! The paper evaluates three clustering problems of increasing difficulty
//! (§7.1): density-based clustering (DBSCAN), k-means, and DB-index
//! clustering.  DBSCAN has its own specialized batch algorithm; the latter
//! two are solved with a *general* hill-climbing batch algorithm that only
//! needs an objective function, which is exactly the property DynamicC
//! relies on (no assumptions about the objective beyond being able to
//! evaluate it).
//!
//! * [`hillclimb`] — the general objective-based batch algorithm.  It starts
//!   from singletons (or warm-starts from an existing clustering), evaluates
//!   candidate merges / splits / moves through the objective's delta
//!   methods, always applies the best improving change, and records every
//!   applied change as an [`dc_evolution::EvolutionStep`] — the §4.2
//!   "cluster evolution from scratch" trace.
//! * [`dbscan`] — density-based clustering over the similarity graph (the
//!   graph's edge threshold plays the role of `ε`, a configurable `min_pts`
//!   defines core points).
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding over the records'
//!   numeric feature vectors, used to cross-check the hill-climbing k-means
//!   results and to provide the fixed-`k` seeds.
//! * [`traits`] — the [`BatchClusterer`] abstraction shared by all of the
//!   above and consumed by DynamicC's trainer.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod dbscan;
pub mod hillclimb;
pub mod kmeans;
pub mod traits;

pub use dbscan::{Dbscan, DbscanConfig};
pub use hillclimb::{HillClimbing, HillClimbingConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use traits::{BatchClusterer, BatchOutcome};
