//! The [`BatchClusterer`] abstraction.

use dc_evolution::EvolutionTrace;
use dc_similarity::SimilarityGraph;
use dc_types::Clustering;

/// The result of one batch clustering run.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The clustering the algorithm converged to.
    pub clustering: Clustering,
    /// The evolution steps the algorithm applied to reach it (empty for
    /// algorithms that do not construct their result step-by-step, such as
    /// DBSCAN and Lloyd's k-means).
    pub trace: EvolutionTrace,
    /// Number of candidate evaluations / iterations performed — a coarse,
    /// machine-independent work measure reported by the benchmark harness
    /// alongside wall-clock time.
    pub work: u64,
}

impl BatchOutcome {
    /// Create an outcome without a trace.
    pub fn without_trace(clustering: Clustering, work: u64) -> Self {
        BatchOutcome {
            clustering,
            trace: EvolutionTrace::new(),
            work,
        }
    }
}

/// A batch clustering algorithm over a similarity graph.
pub trait BatchClusterer: Send + Sync {
    /// Human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Cluster every object of the graph from scratch.
    fn cluster(&self, graph: &SimilarityGraph) -> BatchOutcome;

    /// Re-cluster starting from an existing clustering.
    ///
    /// Objects present in the graph but missing from `initial` are added as
    /// singleton clusters before the search starts; objects present in
    /// `initial` but no longer in the graph are dropped.  The default
    /// implementation ignores the warm start and clusters from scratch,
    /// which is always correct for algorithms whose result does not depend
    /// on the starting point (DBSCAN, Lloyd's k-means).
    fn recluster(&self, graph: &SimilarityGraph, _initial: &Clustering) -> BatchOutcome {
        self.cluster(graph)
    }
}

/// Align a warm-start clustering with the current graph contents: drop
/// vanished objects, add missing ones as singletons.
pub fn align_clustering_with_graph(graph: &SimilarityGraph, initial: &Clustering) -> Clustering {
    let mut aligned = initial.clone();
    for o in aligned.object_ids() {
        if !graph.contains(o) {
            aligned
                .remove_object(o)
                .expect("object listed by clustering");
        }
    }
    for o in graph.object_ids() {
        if !aligned.contains_object(o) {
            aligned
                .create_cluster([o])
                .expect("object not yet clustered");
        }
    }
    aligned
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::fixtures::{figure1_old_clustering, figure2_graph, graph_from_edges};
    use dc_types::ObjectId;

    #[test]
    fn outcome_without_trace_is_empty_trace() {
        let outcome = BatchOutcome::without_trace(Clustering::new(), 7);
        assert!(outcome.trace.is_empty());
        assert_eq!(outcome.work, 7);
    }

    #[test]
    fn align_adds_missing_objects_and_drops_vanished_ones() {
        // Graph has objects 1..=7; the old clustering only knows 1..=5.
        let graph = figure2_graph();
        let old = figure1_old_clustering();
        let aligned = align_clustering_with_graph(&graph, &old);
        assert_eq!(aligned.object_count(), 7);
        assert!(aligned.contains_object(ObjectId::new(6)));
        assert!(aligned
            .cluster(aligned.cluster_of(ObjectId::new(6)).unwrap())
            .unwrap()
            .is_singleton());
        aligned.check_invariants().unwrap();

        // Now the reverse: the clustering knows an object the graph lost.
        let small_graph = graph_from_edges(3, &[(1, 2, 0.9)]);
        let aligned = align_clustering_with_graph(&small_graph, &old);
        assert_eq!(aligned.object_count(), 3);
        assert!(!aligned.contains_object(ObjectId::new(4)));
        aligned.check_invariants().unwrap();
    }
}
