//! Lloyd's k-means with k-means++ seeding.
//!
//! The paper drives its k-means workload through the general hill-climbing
//! algorithm (so that DynamicC's "no assumptions about the batch algorithm"
//! claim is exercised), but a conventional Lloyd's implementation is still
//! needed: it cross-checks the hill-climbing results in the tests, provides
//! fast fixed-`k` seeds for the larger numeric datasets, and serves as the
//! reference point for the k-means quality plots (Figure 5(d)).

use crate::traits::{BatchClusterer, BatchOutcome};
use dc_similarity::SimilarityGraph;
use dc_types::{Clustering, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`KMeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iterations: 50,
            seed: 0xC1_05_7E,
        }
    }
}

/// Lloyd's k-means over the records' numeric feature vectors.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Create a k-means instance.
    pub fn new(config: KMeansConfig) -> Self {
        assert!(config.k >= 1, "k must be at least 1");
        KMeans { config }
    }

    /// Convenience constructor.
    pub fn with_k(k: usize) -> Self {
        KMeans::new(KMeansConfig {
            k,
            ..KMeansConfig::default()
        })
    }

    fn vector_of(graph: &SimilarityGraph, o: ObjectId) -> Vec<f64> {
        graph
            .record(o)
            .map(|r| r.vector().to_vec())
            .unwrap_or_default()
    }

    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        let dims = a.len().max(b.len());
        let mut d = 0.0;
        for i in 0..dims {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            d += (x - y) * (x - y);
        }
        d
    }

    /// k-means++ initial centroids.
    fn seed_centroids(&self, points: &[Vec<f64>], rng: &mut StdRng) -> Vec<Vec<f64>> {
        let k = self.config.k.min(points.len());
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        if points.is_empty() || k == 0 {
            return centroids;
        }
        centroids.push(points[rng.gen_range(0..points.len())].clone());
        while centroids.len() < k {
            // Distance of each point to the nearest chosen centroid.
            let d2: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| Self::squared_distance(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All remaining points coincide with existing centroids.
                centroids.push(points[rng.gen_range(0..points.len())].clone());
                continue;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target <= w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            centroids.push(points[chosen].clone());
        }
        centroids
    }
}

impl BatchClusterer for KMeans {
    fn name(&self) -> &'static str {
        "kmeans-lloyd"
    }

    fn cluster(&self, graph: &SimilarityGraph) -> BatchOutcome {
        let ids = graph.object_ids();
        if ids.is_empty() {
            return BatchOutcome::without_trace(Clustering::new(), 0);
        }
        let points: Vec<Vec<f64>> = ids.iter().map(|&o| Self::vector_of(graph, o)).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centroids = self.seed_centroids(&points, &mut rng);
        let k = centroids.len();
        let mut assignment: Vec<usize> = vec![0; points.len()];
        let mut work = 0u64;

        for _ in 0..self.config.max_iterations {
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (ci, c) in centroids.iter().enumerate() {
                    work += 1;
                    let d = Self::squared_distance(p, c);
                    if d < best_d {
                        best_d = d;
                        best = ci;
                    }
                }
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Update step.
            let dims = points.iter().map(Vec::len).max().unwrap_or(0);
            let mut sums = vec![vec![0.0; dims]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (d, &x) in p.iter().enumerate() {
                    sums[c][d] += x;
                }
            }
            for (c, sum) in sums.iter_mut().enumerate() {
                if counts[c] > 0 {
                    for x in sum.iter_mut() {
                        *x /= counts[c] as f64;
                    }
                    centroids[c] = sum.clone();
                }
                // Empty clusters keep their previous centroid.
            }
            if !changed {
                break;
            }
        }

        // Build the clustering (skip empty centroids).
        let mut groups: Vec<Vec<ObjectId>> = vec![Vec::new(); k];
        for (i, &c) in assignment.iter().enumerate() {
            groups[c].push(ids[i]);
        }
        let clustering = Clustering::from_groups(groups.into_iter().filter(|g| !g.is_empty()))
            .expect("non-empty groups form a valid partition");
        BatchOutcome::without_trace(clustering, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::graph::GraphConfig;
    use dc_types::{Dataset, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn blob_graph() -> SimilarityGraph {
        let mut ds = Dataset::new();
        let mut id = 1u64;
        for center in [[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]] {
            for i in 0..5 {
                let jitter = i as f64 * 0.1;
                ds.insert_with_id(
                    oid(id),
                    RecordBuilder::new()
                        .vector(vec![center[0] + jitter, center[1] - jitter])
                        .build(),
                )
                .unwrap();
                id += 1;
            }
        }
        SimilarityGraph::build(GraphConfig::numeric_euclidean(2.0, 4.0, 2, 0.1), &ds)
    }

    #[test]
    fn recovers_three_well_separated_blobs() {
        let graph = blob_graph();
        let km = KMeans::with_k(3);
        let outcome = km.cluster(&graph);
        let c = &outcome.clustering;
        c.check_invariants().unwrap();
        assert_eq!(c.cluster_count(), 3);
        // Points of the same blob share a cluster.
        for base in [1u64, 6, 11] {
            for offset in 1..5 {
                assert_eq!(c.cluster_of(oid(base)), c.cluster_of(oid(base + offset)));
            }
        }
        // Different blobs are in different clusters.
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(6)));
        assert_ne!(c.cluster_of(oid(6)), c.cluster_of(oid(11)));
    }

    #[test]
    fn k_larger_than_point_count_is_capped() {
        let graph = blob_graph();
        let km = KMeans::with_k(100);
        let outcome = km.cluster(&graph);
        assert!(outcome.clustering.cluster_count() <= 15);
        assert_eq!(outcome.clustering.object_count(), 15);
    }

    #[test]
    fn k_equals_one_groups_everything() {
        let graph = blob_graph();
        let km = KMeans::with_k(1);
        let outcome = km.cluster(&graph);
        assert_eq!(outcome.clustering.cluster_count(), 1);
    }

    #[test]
    fn empty_graph_produces_empty_clustering() {
        let ds = Dataset::new();
        let graph = SimilarityGraph::build(GraphConfig::numeric_euclidean(1.0, 1.0, 2, 0.1), &ds);
        let outcome = KMeans::with_k(3).cluster(&graph);
        assert!(outcome.clustering.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let graph = blob_graph();
        let a = KMeans::new(KMeansConfig {
            k: 3,
            max_iterations: 50,
            seed: 11,
        })
        .cluster(&graph);
        let b = KMeans::new(KMeansConfig {
            k: 3,
            max_iterations: 50,
            seed: 11,
        })
        .cluster(&graph);
        assert!(a.clustering.delta(&b.clustering).is_unchanged());
        assert_eq!(KMeans::with_k(3).name(), "kmeans-lloyd");
    }

    #[test]
    #[should_panic]
    fn zero_k_is_rejected() {
        KMeans::new(KMeansConfig {
            k: 0,
            max_iterations: 1,
            seed: 0,
        });
    }
}
